"""Runtime theorem-bound monitors.

Every claim this reproduction makes is an I/O-count claim; these monitors
evaluate the paper's closed forms (:mod:`repro.bounds`) against *live*
span costs, so any instrumented run is also a theorem check:

* **Theorem 6** — a ``basic_dict.lookup`` span must finish within the
  one-probe budget (``blocks_per_bucket`` parallel I/Os; 1 in the
  one-probe regime), and updates within the read+write budget.
* **Theorem 7** — ``dynamic_dict`` lookups are at most one level read
  beyond the parallel phase-1 probe; worst-case updates are bounded by the
  level count plus the membership and chain-clearing writes.
* **Lemma 3** — after every ``basic_dict.upsert``, the maximum bucket load
  ever reached must sit below ``kn/((1-delta)v) + log_{(1-eps)d/k} v``.

Monitors consume the *effective* span cost
(:attr:`repro.pdm.spans.Span.effective_cost`) — the sequential/parallel
composition the theorems are stated in — and never mutate anything: a
violation is recorded (and optionally raised) with the span attributes
needed to reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.bounds import lemma3_max_load
from repro.pdm.spans import Span, SpanRecorder


@dataclass(frozen=True)
class Violation:
    """One observed-cost-exceeds-bound event."""

    monitor: str
    span_name: str
    span_index: int
    observed: float
    budget: float
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "violation",
            "monitor": self.monitor,
            "span": self.span_name,
            "span_index": self.span_index,
            "observed": self.observed,
            "budget": self.budget,
            "detail": self.detail,
        }


class BoundViolationError(AssertionError):
    """Raised in strict mode when an operation exceeds its theorem budget."""

    def __init__(self, violation: Violation):
        self.violation = violation
        super().__init__(
            f"[{violation.monitor}] {violation.span_name} "
            f"(span #{violation.span_index}): observed {violation.observed:g} "
            f"exceeds budget {violation.budget:g} — {violation.detail}"
        )


class BoundMonitor:
    """Base class: inspect one span, return a violation or ``None``.

    Subclasses carry a ``name`` identifying the bound they enforce.
    """

    name: str

    def check(self, span: Span) -> Optional[Violation]:
        raise NotImplementedError


@dataclass
class SpanBudgetMonitor(BoundMonitor):
    """Checks ``observe(span) <= budget(span)`` for spans named
    ``span_name``.  ``budget`` receives the span's attrs and returns the
    closed-form bound, or ``None`` to skip (missing telemetry)."""

    name: str
    span_name: str
    budget: Callable[[Dict[str, Any]], Optional[float]]
    observe: Callable[[Span], float] = lambda s: s.effective_cost.total_ios
    detail: str = ""
    #: Theorem budgets are stated for fault-free machines; a span marked
    #: ``degraded`` legitimately paid for retries/repair, so it is judged
    #: by :class:`DegradationMonitor` instead.
    skip_degraded: bool = True

    def check(self, span: Span) -> Optional[Violation]:
        if span.name != self.span_name:
            return None
        if self.skip_degraded and span.attrs.get("degraded"):
            return None
        limit = self.budget(span.attrs)
        if limit is None:
            return None
        observed = self.observe(span)
        if observed <= limit:
            return None
        return Violation(
            monitor=self.name,
            span_name=span.name,
            span_index=span.index,
            observed=observed,
            budget=limit,
            detail=self.detail or f"attrs={span.attrs}",
        )


def _require(attrs: Dict[str, Any], *keys: str) -> Optional[List[Any]]:
    out = []
    for key in keys:
        if key not in attrs:
            return None
        out.append(attrs[key])
    return out


# -- the paper's budgets ------------------------------------------------------


def theorem6_lookup_monitor() -> SpanBudgetMonitor:
    """Theorem 6 / §4.1: a lookup reads each of the key's ``d`` buckets in
    one parallel I/O per bucket block — ``blocks_per_bucket`` rounds, 1 in
    the one-probe regime."""

    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        got = _require(attrs, "blocks_per_bucket")
        return float(got[0]) if got else None

    return SpanBudgetMonitor(
        name="theorem6.lookup",
        span_name="basic_dict.lookup",
        budget=budget,
        detail="Theorem 6 one-probe lookup budget (blocks_per_bucket rounds)",
    )


def basic_update_monitor() -> SpanBudgetMonitor:
    """§4.1: insert/upsert/delete read the candidate buckets once and write
    the dirty ones once — ``2 * blocks_per_bucket`` rounds (2 in the
    one-probe regime, "the best possible")."""

    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        got = _require(attrs, "blocks_per_bucket")
        return 2.0 * got[0] if got else None

    return SpanBudgetMonitor(
        name="basic_dict.update",
        span_name="basic_dict.upsert",
        budget=budget,
        detail="§4.1 update budget: one bucket read + one bucket write",
    )


def basic_delete_monitor() -> SpanBudgetMonitor:
    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        got = _require(attrs, "blocks_per_bucket")
        return 2.0 * got[0] if got else None

    return SpanBudgetMonitor(
        name="basic_dict.delete",
        span_name="basic_dict.delete",
        budget=budget,
        detail="§4.1 delete budget: one bucket read + one bucket write-back",
    )


def theorem7_lookup_monitor() -> SpanBudgetMonitor:
    """Theorem 7: membership probe and speculative level-1 read share one
    parallel I/O; a key on a deeper level pays exactly one more read —
    worst case ``membership_bpb + 1`` effective rounds."""

    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        got = _require(attrs, "membership_bpb")
        return got[0] + 1.0 if got else None

    return SpanBudgetMonitor(
        name="theorem7.lookup",
        span_name="dynamic_dict.lookup",
        budget=budget,
        detail="Theorem 7 lookup budget: parallel phase-1 + one level read",
    )


def theorem7_update_monitor() -> SpanBudgetMonitor:
    """Theorem 7 worst-case update: first-fit probes at most ``l`` levels
    (reads), writes one chain, the membership upsert runs in parallel on
    its own disk group, and superseding an old chain adds one read+write —
    ``max(l, membership_bpb) + 3`` effective rounds (the paper's
    ``O(log N)`` with the constant made explicit)."""

    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        got = _require(attrs, "num_levels", "membership_bpb")
        if got is None:
            return None
        num_levels, bpb = got
        return float(max(num_levels, bpb)) + 3.0

    return SpanBudgetMonitor(
        name="theorem7.update",
        span_name="dynamic_dict.insert",
        budget=budget,
        detail="Theorem 7 worst-case update budget: l level probes + chain "
        "write + parallel membership update + old-chain clear",
    )


def theorem7_delete_monitor() -> SpanBudgetMonitor:
    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        # membership probe (bpb) + parallel(chain clear, membership delete)
        # = bpb + max(1, bpb) reads + max(1, bpb) writes = 3 * bpb rounds.
        got = _require(attrs, "membership_bpb")
        return 3.0 * got[0] if got else None

    return SpanBudgetMonitor(
        name="theorem7.delete",
        span_name="dynamic_dict.delete",
        budget=budget,
        detail="Theorem 7 delete budget: membership probe + parallel "
        "chain-clear / membership-delete",
    )


def lemma3_load_monitor(
    *, eps: float = 1 / 12, delta: float = 0.5
) -> SpanBudgetMonitor:
    """Lemma 3: after an upsert the maximum load ever reached must sit
    below ``kn/((1-delta)v) + log_{(1-eps)d/k} v`` for the current ``n``.
    ``eps``/``delta`` default to the expansion parameters the benchmark
    suite certifies for :class:`SeededRandomExpander` instances."""

    def budget(attrs: Dict[str, Any]) -> Optional[float]:
        got = _require(attrs, "size", "num_buckets", "degree", "k")
        if got is None:
            return None
        n, v, d, k = got
        if n <= 0 or (1 - eps) * d / k <= 1:
            return None
        return lemma3_max_load(n=n, v=v, k=k, d=d, eps=eps, delta=delta)

    return SpanBudgetMonitor(
        name="lemma3.max_load",
        span_name="basic_dict.upsert",
        budget=budget,
        observe=lambda s: float(s.attrs.get("max_load", 0)),
        detail="Lemma 3 max-load bound kn/((1-delta)v) + log_{(1-eps)d/k} v",
    )


def _degraded_base_budget(span: Span) -> Optional[float]:
    """The healthy-budget part of a degraded span's allowance."""
    attrs = span.attrs
    if span.name == "basic_dict.lookup":
        got = _require(attrs, "blocks_per_bucket")
        return float(got[0]) if got else None
    if span.name == "static_dict.lookup" and attrs.get("case") == "b":
        return 1.0  # Theorem 6(b): one parallel probe of the d field disks
    if span.name == "dynamic_dict.lookup":
        got = _require(attrs, "membership_bpb")
        return got[0] + 1.0 if got else None
    return None


@dataclass
class DegradationMonitor(BoundMonitor):
    """Bounds the *overhead* of surviving faults.

    A degraded lookup may exceed its theorem budget only by the I/O it
    verifiably spent on recovery: retried rounds (``retry_ios``) and
    read-repair writes (``repair_ios``).  Anything beyond
    ``healthy_budget + recovery`` means degraded mode is leaking
    unaccounted I/O — exactly the regression this monitor exists to
    catch.  Spans without the ``degraded`` attribute are ignored (the
    theorem monitors own them).
    """

    name: str = "degradation.recovery"

    def check(self, span: Span) -> Optional[Violation]:
        if not span.attrs.get("degraded"):
            return None
        base = _degraded_base_budget(span)
        if base is None:
            return None
        eff = span.effective_cost
        limit = base + eff.retry_ios + eff.repair_ios
        observed = eff.total_ios
        if observed <= limit:
            return None
        return Violation(
            monitor=self.name,
            span_name=span.name,
            span_index=span.index,
            observed=observed,
            budget=limit,
            detail=(
                f"degraded op exceeds healthy budget {base:g} + "
                f"retry {eff.retry_ios} + repair {eff.repair_ios}"
            ),
        )


@dataclass
class RecoveryMonitor(BoundMonitor):
    """Bounds online rebuild work against its declared budget.

    Every completed rebuild emits a zero-cost ``recovery.rebuild``
    summary span carrying ``rounds_used`` (repair rounds actually spent)
    and ``budget_rounds`` (the closed form
    :func:`~repro.recovery.manager.rebuild_budget_rounds` — one write
    plus at most ``read_bound`` reconstruction reads per block, plus
    constant slack).  A rebuild that overruns its budget means repair
    work is leaking I/O somewhere the per-block accounting cannot see —
    the recovery-layer analogue of a theorem-bound violation.
    """

    name: str = "recovery.rebuild_budget"

    def check(self, span: Span) -> Optional[Violation]:
        if span.name != "recovery.rebuild":
            return None
        attrs = span.attrs
        if "rounds_used" not in attrs or "budget_rounds" not in attrs:
            return None
        observed = float(attrs["rounds_used"])
        limit = float(attrs["budget_rounds"])
        if observed <= limit:
            return None
        return Violation(
            monitor=self.name,
            span_name=span.name,
            span_index=span.index,
            observed=observed,
            budget=limit,
            detail=(
                f"rebuild of disk {attrs.get('disk')} "
                f"({attrs.get('mode')}, {attrs.get('blocks')} blocks) "
                f"overran its repair-round budget"
            ),
        )


def default_monitors(
    *, eps: float = 1 / 12, delta: float = 0.5
) -> List[BoundMonitor]:
    """The full panel: Lemma 3, Theorem 6, Theorem 7, degraded-mode
    recovery overhead, rebuild budgets."""
    return [
        theorem6_lookup_monitor(),
        basic_update_monitor(),
        basic_delete_monitor(),
        theorem7_lookup_monitor(),
        theorem7_update_monitor(),
        theorem7_delete_monitor(),
        lemma3_load_monitor(eps=eps, delta=delta),
        DegradationMonitor(),
        RecoveryMonitor(),
    ]


@dataclass
class MonitorSet:
    """Runs a panel of monitors over recorded spans.

    ``strict=True`` raises :class:`BoundViolationError` at the first
    violation; otherwise violations accumulate in :attr:`violations` and
    the run continues (record-and-report mode).
    """

    monitors: List[BoundMonitor] = field(default_factory=default_monitors)
    strict: bool = False
    violations: List[Violation] = field(default_factory=list)
    checks: int = 0

    def check_span(self, span: Span) -> None:
        for monitor in self.monitors:
            result = monitor.check(span)
            self.checks += 1
            if result is not None:
                self.violations.append(result)
                if self.strict:
                    raise BoundViolationError(result)

    def check_recorder(self, recorder: SpanRecorder) -> List[Violation]:
        """Evaluate every recorded span (the whole tree, pre-order);
        returns the violations found in this pass."""
        before = len(self.violations)
        for s in recorder.iter_spans():
            self.check_span(s)
        return self.violations[before:]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        return {
            "checks": self.checks,
            "violations": [v.to_dict() for v in self.violations],
            "ok": self.ok,
        }
