"""The bench trajectory: every ``BENCH_*.json`` artifact, accumulated.

Each PR's CI run produces machine-readable benchmark artifacts
(``BENCH_throughput.json``, ``BENCH_batch.json``, ``BENCH_chaos.json``,
``BENCH_smoke.json``, ``BENCH_latency.json``) — but until now they were
only uploaded and forgotten, so the repository had no memory of *which
change moved which number*.  This module ingests every artifact in a
results directory into a flat ``metric name -> value`` map, merges it as
one labelled entry of ``benchmarks/results/trajectory.json`` (committed;
the seed entry comes from ``benchmarks/baselines/throughput.json``), and
recomputes per-metric **regression attribution**: for every consecutive
pair of entries that both report a metric, which entry moved it, in which
direction, and whether that direction is an improvement or a regression
for that metric.

Wall-clock metrics (ops/sec, latency percentiles, overhead) are honest
measurements of whatever machine ran them; they get a noise deadband
before attribution so scheduler jitter does not read as a regression.
Deterministic PDM metrics (rounds/op, hit rates, I/O totals) attribute
exactly.

CLI (also reachable as ``scripts/bench_history.py``)::

    python -m repro.obs.history --results benchmarks/results \\
        --out benchmarks/results/trajectory.json --label pr7 \\
        --seed-baseline benchmarks/baselines/throughput.json

Exit codes: ``0`` — trajectory written; ``2`` — operational error
(unreadable artifacts, bad parameters).  The tracker records; it never
gates (gating lives in ``scripts/check_throughput_regression.py`` and
``scripts/check_obs_overhead.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Callable, Dict, List, Optional

TRAJECTORY_VERSION = 1

#: Relative deadband per metric class before a change is attributed:
#: wall measurements jitter, charged counts do not.
WALL_DEADBAND = 0.05
EXACT_DEADBAND = 1e-9

#: Metric-name fragments marking wall-clock (machine-dependent) metrics.
#: The ``*_vs_*`` ops ratios are quotients of two wall timings — same
#: machine, but still scheduler-noisy — so they take the wide band too.
_WALL_MARKERS = (
    "ops_per_sec", "_us", "overhead", "elapsed", "batched_vs", "cached_vs_",
    "speedup_vs",
)

#: Metric-name fragments whose *increase* is an improvement.  Anything
#: matching neither table attributes with direction "changed".
_HIGHER_IS_BETTER = (
    "ops_per_sec", "hit_rate", "round_reduction", "speedup",
    "survived_fraction", "utilization", "batched_vs", "cached_vs",
)
_LOWER_IS_BETTER = (
    "rounds_per_op", "_us", "overhead", "total_ios", "avg_ios",
    "worst_ios", "wrong_answers", "violations", "errors", "_rounds",
    "degraded_read_fraction", "blocks_lost",
)


def _slug(text: str) -> str:
    """Stable metric-name fragment from a free-form label
    (``"zipf s=1.1"`` → ``"zipf_s1.1"``)."""
    return (
        str(text).strip().replace("=", "").replace(" ", "_").replace("/", "_")
    )


def metric_sense(name: str) -> Optional[bool]:
    """``True`` if higher is better, ``False`` if lower is better,
    ``None`` when the metric has no known direction."""
    for marker in _HIGHER_IS_BETTER:
        if marker in name:
            return True
    for marker in _LOWER_IS_BETTER:
        if marker in name:
            return False
    return None


def is_wall_metric(name: str) -> bool:
    return any(marker in name for marker in _WALL_MARKERS)


# -- per-artifact extractors --------------------------------------------------


def extract_throughput(payload: Dict[str, Any]) -> Dict[str, float]:
    """``BENCH_throughput.json`` (and the committed baseline, which shares
    its schema)."""
    out: Dict[str, float] = {}
    seq = payload.get("sequential", {}).get("ops_per_sec")
    if seq is not None:
        out["throughput.sequential_ops_per_sec"] = seq
    for sc in payload.get("scenarios", ()):
        skew = _slug(sc.get("skew", "?"))
        for mode in ("uncached", "cached"):
            block = sc.get(mode, {})
            for key in ("rounds_per_op", "ops_per_sec", "hit_rate"):
                if key in block:
                    out[f"throughput.{skew}.{mode}.{key}"] = block[key]
        if sc.get("round_reduction") is not None:
            out[f"throughput.{skew}.round_reduction"] = sc["round_reduction"]
    for name, value in payload.get("ratios", {}).items():
        if value is not None:
            out[f"throughput.ratios.{name}"] = value
    batched = payload.get("batched", {})
    for key in (
        "ops_per_sec",
        "scalar_ops_per_sec",
        "speedup_vs_sequential",
        "speedup_vs_scalar_batched",
        "rounds_per_op",
    ):
        if batched.get(key) is not None:
            out[f"throughput.batched.{key}"] = batched[key]
    return out


def extract_batch(payload: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for sc in payload.get("scenarios", ()):
        label = _slug(sc.get("dictionary", "?"))
        for key in ("rounds_sequential", "rounds_batched", "speedup"):
            if key in sc:
                out[f"batch.{label}.{key}"] = sc[key]
    return out


def extract_chaos(payload: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for run in payload.get("runs", ()):
        label = _slug(run.get("structure", "?"))
        ops = run.get("operations") or 0
        if ops:
            out[f"chaos.{label}.survived_fraction"] = round(
                run.get("survived", 0) / ops, 4
            )
        for key in ("wrong_answers", "overhead", "retry_ios", "repair_ios"):
            if key in run:
                out[f"chaos.{label}.{key}"] = run[key]
    return out


def extract_smoke(payload: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for run in payload.get("runs", ()):
        label = _slug(run.get("structure", "?"))
        if "total_ios" in run:
            out[f"smoke.{label}.total_ios"] = run["total_ios"]
        monitors = run.get("monitors", {})
        if "violations" in monitors:
            out[f"smoke.{label}.monitor_violations"] = len(
                monitors["violations"]
            )
        for kind, stats in run.get("per_kind", {}).items():
            if "avg_ios" in stats:
                out[f"smoke.{label}.avg_ios.{_slug(kind)}"] = stats["avg_ios"]
    return out


def extract_latency(payload: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for section in ("op_classes", "layers"):
        prefix = "latency.op" if section == "op_classes" else "latency.layer"
        for label, stats in payload.get(section, {}).items():
            for key in ("p50", "p95", "p99"):
                if key in stats:
                    out[f"{prefix}.{_slug(label)}.{key}_us"] = stats[key]
    disks = payload.get("disks", {})
    if "mean_utilization" in disks:
        out["latency.mean_disk_utilization"] = disks["mean_utilization"]
    overhead = payload.get("overhead", {})
    if "overhead_fraction" in overhead:
        out["latency.overhead_fraction"] = overhead["overhead_fraction"]
    if "instrumented_ops_per_sec" in overhead:
        out["latency.instrumented_ops_per_sec"] = overhead[
            "instrumented_ops_per_sec"
        ]
    return out


def extract_recovery(payload: Dict[str, Any]) -> Dict[str, float]:
    """``BENCH_recovery.json``: self-healing under rolling failures."""
    out: Dict[str, float] = {}
    for sc in payload.get("scenarios", ()):
        label = _slug(sc.get("structure", "?"))
        for key in (
            "time_to_heal_rounds",
            "degraded_read_fraction",
            "foreground_p99_overhead",
            "wrong_answers",
            "blocks_lost",
        ):
            if key in sc and sc[key] is not None:
                out[f"recovery.{label}.{key}"] = sc[key]
    return out


def extract_executors(payload: Dict[str, Any]) -> Dict[str, float]:
    """``BENCH_executors.json``: wall-clock round time per backend and the
    file backend's parallel-over-sequential speedup (charged rounds are
    asserted identical by the benchmark itself)."""
    out: Dict[str, float] = {}
    for sc in payload.get("scenarios", ()):
        label = f"{_slug(sc.get('executor', '?'))}.d{sc.get('disks', 0)}"
        for key in ("elapsed_ms", "round_us"):
            if key in sc and sc[key] is not None:
                out[f"executors.{label}.{key}"] = sc[key]
    for key, value in payload.get("speedups", {}).items():
        out[f"executors.speedup.{_slug(key)}"] = value
    return out


#: artifact stem -> extractor; ``ingest_results`` globs ``BENCH_*.json``
#: and dispatches here (unknown stems are reported, not silently dropped).
EXTRACTORS: Dict[str, Callable[[Dict[str, Any]], Dict[str, float]]] = {
    "BENCH_throughput": extract_throughput,
    "BENCH_batch": extract_batch,
    "BENCH_chaos": extract_chaos,
    "BENCH_smoke": extract_smoke,
    "BENCH_latency": extract_latency,
    "BENCH_recovery": extract_recovery,
    "BENCH_executors": extract_executors,
}


def ingest_results(results_dir) -> Dict[str, Any]:
    """Read every ``BENCH_*.json`` under ``results_dir``.

    Returns ``{"metrics": {...merged flat map...}, "sources": [stems],
    "skipped": [stems without an extractor]}``."""
    results_dir = pathlib.Path(results_dir)
    metrics: Dict[str, float] = {}
    sources: List[str] = []
    skipped: List[str] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        extractor = EXTRACTORS.get(path.stem)
        if extractor is None:
            skipped.append(path.stem)
            continue
        payload = json.loads(path.read_text())
        metrics.update(extractor(payload))
        sources.append(path.stem)
    return {"metrics": metrics, "sources": sources, "skipped": skipped}


# -- the trajectory file ------------------------------------------------------


def load_trajectory(path) -> Dict[str, Any]:
    path = pathlib.Path(path)
    if not path.exists():
        return {"version": TRAJECTORY_VERSION, "entries": [], "attribution": []}
    data = json.loads(path.read_text())
    if data.get("version") != TRAJECTORY_VERSION:
        raise ValueError(
            f"trajectory version {data.get('version')!r} unsupported "
            f"(expected {TRAJECTORY_VERSION})"
        )
    return data


def update_trajectory(
    trajectory: Dict[str, Any],
    label: str,
    metrics: Dict[str, float],
    *,
    sources: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Merge one labelled entry (idempotent: re-running with the same
    label replaces that entry in place, keeping its position) and
    recompute attribution."""
    if not label:
        raise ValueError("an entry label is required (e.g. the PR name)")
    entry = {
        "label": label,
        "sources": sorted(sources or []),
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }
    entries = trajectory.setdefault("entries", [])
    position = next(
        (
            i
            for i, existing in enumerate(entries)
            if existing.get("label") == label
        ),
        None,
    )
    if position is None:
        entries.append(entry)
    else:
        entries[position] = entry
    trajectory["attribution"] = attribute_changes(entries)
    return trajectory


def attribute_changes(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-metric movement attribution across consecutive entries.

    For every metric and every consecutive pair of entries that both
    report it, emit a record when the relative change clears the metric's
    deadband: which entry moved it, from what to what, and whether that
    is an improvement, a regression, or just a change (unknown sense).
    """
    out: List[Dict[str, Any]] = []
    names: Dict[str, None] = {}
    for entry in entries:
        for name in entry.get("metrics", {}):
            names.setdefault(name)
    for name in sorted(names):
        reporting = [e for e in entries if name in e.get("metrics", {})]
        deadband = WALL_DEADBAND if is_wall_metric(name) else EXACT_DEADBAND
        sense = metric_sense(name)
        for prev, cur in zip(reporting, reporting[1:]):
            v0 = prev["metrics"][name]
            v1 = cur["metrics"][name]
            delta = v1 - v0
            scale = max(abs(v0), abs(v1), 1e-12)
            if abs(delta) / scale <= deadband:
                continue
            if sense is None:
                direction = "changed"
            elif (delta > 0) == sense:
                direction = "improved"
            else:
                direction = "regressed"
            out.append(
                {
                    "metric": name,
                    "label": cur["label"],
                    "prev_label": prev["label"],
                    "prev": v0,
                    "value": v1,
                    "delta": round(delta, 6),
                    "pct_change": round(100.0 * delta / scale, 2),
                    "direction": direction,
                }
            )
    return out


def seed_entry_from_baseline(baseline_path) -> Dict[str, Any]:
    """The trajectory's origin: the committed throughput baseline, read
    through the same extractor as a live ``BENCH_throughput.json``."""
    payload = json.loads(pathlib.Path(baseline_path).read_text())
    return {
        "label": "baseline",
        "metrics": extract_throughput(payload),
        "sources": ["baselines/throughput"],
    }


def write_trajectory(trajectory: Dict[str, Any], path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(trajectory, sort_keys=True, indent=1) + "\n"
    )
    return path


def render_attribution(trajectory: Dict[str, Any], limit: int = 40) -> str:
    rows = trajectory.get("attribution", [])
    if not rows:
        return "trajectory: no attributable metric movement yet"
    lines = [f"trajectory: {len(rows)} attributed movement(s)"]
    shown = rows[:limit]
    for rec in shown:
        lines.append(
            f"  [{rec['direction']:>9}] {rec['metric']}: "
            f"{rec['prev']:g} -> {rec['value']:g} "
            f"({rec['pct_change']:+.1f}%) by {rec['label']} "
            f"(vs {rec['prev_label']})"
        )
    if len(rows) > limit:
        lines.append(f"  ... {len(rows) - limit} more")
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="merge BENCH_*.json artifacts into the committed "
        "bench trajectory, with per-metric regression attribution",
    )
    parser.add_argument(
        "--results",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks/results"),
        help="directory holding the BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks/results/trajectory.json"),
        help="trajectory file to merge into (created if missing)",
    )
    parser.add_argument(
        "--label",
        required=True,
        help="entry label: the PR / commit this run belongs to",
    )
    parser.add_argument(
        "--seed-baseline",
        type=pathlib.Path,
        default=None,
        help="seed an initial 'baseline' entry from this committed "
        "throughput baseline when the trajectory has none",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the attribution table"
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    trajectory = load_trajectory(args.out)
    if args.seed_baseline is not None and not any(
        e.get("label") == "baseline" for e in trajectory["entries"]
    ):
        seed = seed_entry_from_baseline(args.seed_baseline)
        trajectory["entries"].insert(0, seed)
    ingested = ingest_results(args.results)
    if not ingested["metrics"]:
        print(
            f"error: no ingestible BENCH_*.json under {args.results}",
            file=sys.stderr,
        )
        return 2
    update_trajectory(
        trajectory,
        args.label,
        ingested["metrics"],
        sources=ingested["sources"],
    )
    path = write_trajectory(trajectory, args.out)
    for stem in ingested["skipped"]:
        print(f"note: no extractor for {stem}, skipped", file=sys.stderr)
    print(
        f"wrote {path} ({len(trajectory['entries'])} entries, "
        f"{len(ingested['metrics'])} metrics from "
        f"{', '.join(ingested['sources'])})",
        file=sys.stderr,
    )
    if not args.quiet:
        print(render_attribution(trajectory))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
        return _run(args)
    except SystemExit:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
