"""The wall-clock telemetry channel: real time and executor lanes.

The paper's guarantees are charged I/O rounds, and everything the
simulator *decides* is a function of those.  Wall time is the opposite
kind of number — it varies run to run, machine to machine — so it lives
in its own clearly-nondeterministic channel: this module is the only
place the observability stack reads a clock, and everything it stamps
(:attr:`Span.wall_start_ns` / :attr:`Span.wall_ns` / :attr:`Span.lane`,
:attr:`TraceRecorder.walls`) sits *beside* the deterministic record,
never inside it.  ``Span.to_dict``, ``IOStats``, ``OpCost`` and every
committed artifact stay bit-identical whether or not a clock is attached
(a tested property — see ``tests/obs/test_wall_separation.py``).

Lanes
-----

Spans are stamped with the *executor lane* that opened them, using the
``guarded()`` synchronization vocabulary the flow linter inventories
(see ``docs/static_analysis.md``): these are the units of concurrency
the executor split will schedule, so a wall-clock trace grouped by lane
is directly the future thread timeline.

==============  =====================================================
lane            who runs on it
==============  =====================================================
``import-time``  module-load work (registries sealed before workers)
``owner-lane``   a structure's owning thread — the default lane
``pool-lock``    buffer-pool maintenance (LRU order, flushes)
``disk-lane``    a per-disk executor thread (``disk-lane:<id>``)
``machine-op``   machine-serialized bookkeeping (span stack, faults)
==============  =====================================================

Declare the current thread's lane with the :func:`lane` context manager
(lanes nest; the innermost wins).  Threads that never declare one run on
``owner-lane``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

#: The lane taxonomy — the ``guarded()`` inventory of
#: ``repro.lint.flow`` (RACE2xx), in documentation order.
LANES: Tuple[str, ...] = (
    "import-time",
    "owner-lane",
    "pool-lock",
    "disk-lane",
    "machine-op",
)

#: Lane assumed for threads that never declared one.
DEFAULT_LANE = "owner-lane"

#: The monotonic nanosecond clock backing the channel.  Monotonic so
#: durations survive NTP slews; nanoseconds so sub-microsecond spans
#: (cache hits) stay resolvable.
DEFAULT_CLOCK: Callable[[], int] = time.perf_counter_ns


class _LaneState(threading.local):
    """Per-thread lane stack (thread-local: each executor thread declares
    its own lane without sharing)."""

    def __init__(self) -> None:
        self.stack = []


_lane_state = _LaneState()  # detlint: guarded(import-time) -- thread-local container; each thread mutates only its own .stack


def current_lane() -> str:
    """The innermost declared lane of the calling thread (or
    :data:`DEFAULT_LANE`)."""
    stack = _lane_state.stack
    return stack[-1] if stack else DEFAULT_LANE


class lane:
    """Declare the calling thread's executor lane for a block.

    ``name`` must come from :data:`LANES`; an optional ``tag`` suffixes
    it (``lane("disk-lane", tag=3)`` → ``"disk-lane:3"``) so per-disk
    executor threads stay distinguishable in the trace.

    >>> with lane("disk-lane", tag=2):
    ...     machine.read_blocks(addrs)   # spans stamp lane="disk-lane:2"
    """

    __slots__ = ("_label",)

    def __init__(self, name: str, *, tag: object = None) -> None:
        if name not in LANES:
            raise ValueError(
                f"unknown lane {name!r}; the inventory is {LANES}"
            )
        self._label = name if tag is None else f"{name}:{tag}"

    def __enter__(self) -> str:
        _lane_state.stack.append(self._label)
        return self._label

    def __exit__(self, exc_type, exc, tb) -> bool:
        _lane_state.stack.pop()
        return False


# -- enabling the channel -----------------------------------------------------


def enable_wall_clock(recorder, clock: Optional[Callable[[], int]] = None):
    """Attach the wall channel to a :class:`~repro.pdm.spans.SpanRecorder`
    or a :class:`~repro.pdm.trace.TraceRecorder`.

    The recorder keeps producing its deterministic record exactly as
    before; it additionally stamps real start/duration (and, for spans,
    the executor lane) on everything recorded from now on.  ``clock``
    defaults to :data:`DEFAULT_CLOCK` — inject a fake for tests.
    Returns the recorder.
    """
    if clock is None:
        clock = DEFAULT_CLOCK
    recorder.clock = clock
    if hasattr(recorder, "lane_of"):  # span recorders also take a lane
        recorder.lane_of = current_lane
        recorder.wall_origin_ns = clock()
    return recorder


def disable_wall_clock(recorder) -> None:
    """Detach the wall channel; already-stamped values are kept (they are
    data, not state), new records go back to deterministic-only."""
    recorder.clock = None
    if hasattr(recorder, "lane_of"):
        recorder.lane_of = None


def wall_enabled(recorder) -> bool:
    return getattr(recorder, "clock", None) is not None


# -- self-measured instrumentation overhead -----------------------------------


@dataclass(frozen=True)
class OverheadReport:
    """Wall cost of the always-on telemetry, measured on this machine.

    ``overhead_fraction`` is the fraction of per-op wall time the
    instrumented run spends on instrumentation (0.03 = 3%); CI gates it
    via ``scripts/check_obs_overhead.py``.  Both throughputs are
    best-of-``repeats`` over interleaved passes, so a background stall
    hits both sides rather than masquerading as overhead.
    """

    plain_ops_per_sec: float
    instrumented_ops_per_sec: float
    operations: int
    repeats: int

    @property
    def overhead_fraction(self) -> float:
        if self.plain_ops_per_sec <= 0:
            return 0.0
        frac = 1.0 - self.instrumented_ops_per_sec / self.plain_ops_per_sec
        return max(0.0, frac)

    def to_dict(self) -> dict:
        return {
            "plain_ops_per_sec": round(self.plain_ops_per_sec, 1),
            "instrumented_ops_per_sec": round(
                self.instrumented_ops_per_sec, 1
            ),
            "overhead_fraction": round(self.overhead_fraction, 4),
            "operations": self.operations,
            "repeats": self.repeats,
        }


def measure_overhead(
    plain: Callable[[], object],
    instrumented: Callable[[], object],
    *,
    operations: int,
    repeats: int = 5,
    clock: Optional[Callable[[], int]] = None,
) -> OverheadReport:
    """Best-of-``repeats`` interleaved A/B timing of one pass of
    ``plain`` vs one pass of ``instrumented`` (each covering
    ``operations`` operations).

    The self-measurement half of the "always-on, low-overhead" claim:
    the benchmark harness passes the same replay with telemetry off and
    on, and the resulting :attr:`~OverheadReport.overhead_fraction` is
    itself reported as a metric (``BENCH_latency.json``) and gated in CI.
    """
    if clock is None:
        clock = DEFAULT_CLOCK
    best_plain = None
    best_inst = None
    for _ in range(repeats):
        t0 = clock()
        plain()
        dt = clock() - t0
        if best_plain is None or dt < best_plain:
            best_plain = dt
        t0 = clock()
        instrumented()
        dt = clock() - t0
        if best_inst is None or dt < best_inst:
            best_inst = dt
    scale = 1e9 * operations
    return OverheadReport(
        plain_ops_per_sec=scale / best_plain if best_plain else 0.0,
        instrumented_ops_per_sec=scale / best_inst if best_inst else 0.0,
        operations=operations,
        repeats=repeats,
    )
