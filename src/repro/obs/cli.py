"""``python -m repro.obs`` — replay a workload under full instrumentation.

Runs a generated :mod:`repro.workloads` workload against the basic and/or
dynamic dictionary with span tracing, metrics collection and the theorem
bound monitors enabled, then prints a text report and (optionally) writes
JSON Lines span events, a Perfetto-loadable Chrome trace, and a
machine-readable JSON report.

Examples::

    python -m repro.obs --structure basic --operations 512
    python -m repro.obs --structure both --chrome-trace trace.json
    python -m repro.obs --structure dynamic --strict --json report.json
    python -m repro.obs --percentiles --cache 64

Exit codes:

* ``0`` — run completed, every bound monitor satisfied.
* ``1`` — run completed but a theorem budget was violated (in ``--strict``
  mode the first violation aborts the run, still exit 1 — it is the same
  verdict, delivered earlier).
* ``2`` — operational error: bad parameters, unwritable output paths —
  the run itself is no verdict on the bounds.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.harness import STRUCTURES, report_events, run_instrumented
from repro.obs.monitors import BoundViolationError
from repro.pdm.executors import EXECUTOR_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="replay a workload under span tracing, metrics, and "
        "theorem-bound monitors",
    )
    parser.add_argument(
        "--structure",
        choices=STRUCTURES + ("both",),
        default="basic",
        help="dictionary to instrument (default: basic)",
    )
    parser.add_argument("--disks", type=int, default=16, help="number of disks D")
    parser.add_argument(
        "--block", type=int, default=32, help="items per block B"
    )
    parser.add_argument(
        "--universe", type=int, default=1 << 20, help="key universe size"
    )
    parser.add_argument(
        "--capacity", type=int, default=512, help="dictionary capacity n"
    )
    parser.add_argument(
        "--operations", type=int, default=512, help="workload length"
    )
    parser.add_argument(
        "--sigma", type=int, default=32, help="satellite value bits"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="N",
        help="replay runs of same-kind operations through the round-packed "
        "batch_* methods, up to N operations per batch; the report gains "
        "batch.* metrics (rounds_saved et al.)",
    )
    parser.add_argument(
        "--cache",
        type=int,
        default=None,
        metavar="N",
        help="run the machine with an N-block buffer pool "
        "(repro.pdm.cache); the report gains cache.* metrics",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default="simulated",
        help="physical backend (repro.pdm.executors): the in-memory "
        "simulator, thread-per-disk real files, or a process pool. Every "
        "deterministic output is identical across backends; with --wall "
        "the file backends add executor.* transfer metrics",
    )
    parser.add_argument(
        "--executor-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="directory for the file backends' per-disk block logs "
        "(default: a temporary directory removed after the run)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="raise on the first theorem-budget violation",
    )
    parser.add_argument(
        "--wall",
        action="store_true",
        help="also record the wall-clock channel (real time + lanes); "
        "prints the latency/utilization addendum and adds the real-time "
        "track group to --chrome-trace. Charged costs are unaffected.",
    )
    parser.add_argument(
        "--percentiles",
        action="store_true",
        help="print the p50/p95/p99 wall-latency table and per-disk "
        "utilization summary (implies --wall and I/O tracing)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the replay under cProfile; writes a pstats dump and "
        "prints the top-20 cumulative-time table",
    )
    parser.add_argument(
        "--profile-out",
        type=pathlib.Path,
        default=pathlib.Path("obs_profile.pstats"),
        help="where --profile writes the pstats dump "
        "(default: obs_profile.pstats)",
    )
    parser.add_argument(
        "--jsonl",
        type=pathlib.Path,
        default=None,
        help="write span/metric/violation events as JSON Lines",
    )
    parser.add_argument(
        "--chrome-trace",
        type=pathlib.Path,
        default=None,
        help="write a Chrome trace-event JSON (open in Perfetto); "
        "per-disk tracks are included automatically",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable report (BENCH_smoke.json shape)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the text report"
    )
    return parser


def _suffixed(path: pathlib.Path, tag: str, multi: bool) -> pathlib.Path:
    if not multi:
        return path
    return path.with_name(f"{path.stem}-{tag}{path.suffix}")


def _run(args: argparse.Namespace) -> int:
    structures = list(STRUCTURES) if args.structure == "both" else [args.structure]
    multi = len(structures) > 1
    wall = args.wall or args.percentiles

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    reports = []
    for structure in structures:
        try:
            if profiler is not None:
                profiler.enable()
            report = run_instrumented(
                structure,
                num_disks=args.disks,
                block_items=args.block,
                universe_size=args.universe,
                capacity=args.capacity,
                operations=args.operations,
                sigma=args.sigma,
                seed=args.seed,
                trace=args.chrome_trace is not None or args.percentiles,
                strict=args.strict,
                batch=args.batch,
                cache_blocks=args.cache,
                wall=wall,
                executor=args.executor,
                executor_dir=(
                    None if args.executor_dir is None
                    else str(args.executor_dir)
                ),
            )
        except BoundViolationError as exc:
            # A strict-mode abort is still a *violation* verdict (exit 1);
            # exit 2 is reserved for runs that produced no verdict at all.
            print(f"BOUND VIOLATION ({structure}): {exc}", file=sys.stderr)
            return 1
        finally:
            if profiler is not None:
                profiler.disable()
        reports.append(report)

        if not args.quiet:
            print(report.render_text())
            if wall:
                print()
                print(report.render_wall_text())
            print()
        if args.jsonl is not None:
            path = _suffixed(args.jsonl, structure, multi)
            count = write_jsonl(path, report_events(report))
            print(f"wrote {count} events to {path}", file=sys.stderr)
        if args.chrome_trace is not None:
            path = _suffixed(args.chrome_trace, structure, multi)
            write_chrome_trace(
                path,
                report.recorder,
                report.tracer,
                num_disks=args.disks,
                wall=wall,
            )
            print(f"wrote Chrome trace to {path}", file=sys.stderr)
        # Releases executor-held threads/descriptors (and the throwaway
        # image when --executor ran without --executor-dir); a no-op for
        # the default simulated backend.
        report.machine.close()

    if profiler is not None:
        import io
        import pstats

        profiler.dump_stats(args.profile_out)
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        print(f"wrote profile to {args.profile_out}", file=sys.stderr)
        print(stream.getvalue())

    if args.json is not None:
        payload = {
            "tool": "repro.obs",
            "runs": [r.to_dict() for r in reports],
            "ok": all(r.ok for r in reports),
        }
        args.json.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
        print(f"wrote report to {args.json}", file=sys.stderr)

    return 0 if all(r.ok for r in reports) else 1


def main(argv: Optional[List[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
        return _run(args)
    except SystemExit:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
