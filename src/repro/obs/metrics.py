"""Deterministic metrics: counters, gauges and fixed-bucket histograms.

No wall clock anywhere — every number is a function of the simulated run
(I/O rounds, block counts, bucket loads, memory words), so two identical
runs render byte-identical metric reports.  Metrics are identified by a
name plus an optional label set; the registry keeps them in registration
order, and label sets are canonicalised by sorting label *names* (label
values never drive ordering).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds for per-operation I/O rounds.
DEFAULT_IO_BUCKETS: Tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32)

#: Default bucket upper bounds for per-operation wall latency, in
#: microseconds.  Roughly 1-2-5 per decade from 1 us to 100 ms: wide
#: enough that a cache hit (sub-us) and a fault-retry storm (tens of ms)
#: land inside the range, fixed so histograms from different runs and
#: different PRs always merge bucket-for-bucket.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)

#: The percentile panel every latency table reports.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _canon_labels(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple((k, str(labels[k])) for k in sorted(labels))


class Counter:
    """Monotonically increasing integer."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time number (utilization, peak memory, occupancy)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-style).

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket.  Bucket bounds are fixed at
    construction, so merged/diffed reports always line up.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_IO_BUCKETS) -> None:
        bounds = list(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds:
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.bounds: List[float] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 for overflow
        self.total = 0
        self.sum: float = 0.0
        self.max: float = 0.0

    def observe(self, value: float, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"observation count must be >= 0, got {count}")
        if count == 0:
            return
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += count
        self.total += count
        self.sum += value * count
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the fixed buckets.

        Standard cumulative-bucket estimation with linear interpolation
        inside the bucket holding the target rank (the Prometheus
        ``histogram_quantile`` rule), clamped to the observed maximum.
        Observations in the overflow bucket report :attr:`max` — the
        tightest statement the histogram can make above its last bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        target = q * self.total
        cum = 0
        for i, count in enumerate(self.counts[:-1]):
            cum += count
            if count and cum >= target:
                hi = self.bounds[i]
                lo = self.bounds[i - 1] if i else 0.0
                frac = (target - (cum - count)) / count
                return min(lo + (hi - lo) * frac, self.max)
        return self.max

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` via :meth:`quantile`."""
        return {f"p{q * 100:g}": self.quantile(q) for q in qs}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Insertion-ordered collection of named, labelled metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Any] = {}

    def _get(self, name: str, labels: Mapping[str, Any], factory) -> Any:
        key = (name, _canon_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        metric = self._get(name, labels, Counter)
        if not isinstance(metric, Counter):
            raise TypeError(f"{name} is registered as a {metric.kind}")
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        metric = self._get(name, labels, Gauge)
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name} is registered as a {metric.kind}")
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_IO_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        metric = self._get(name, labels, lambda: Histogram(buckets))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name} is registered as a {metric.kind}")
        if list(metric.bounds) != list(buckets):
            raise ValueError(
                f"{name} already registered with bounds {metric.bounds}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> Iterator[Tuple[str, Dict[str, str], Any]]:
        """Yield ``(name, labels, metric)`` in registration order."""
        for (name, labels), metric in self._metrics.items():
            yield name, dict(labels), metric

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dump; label sets collapse into the key as
        ``name{k=v,...}`` (deterministic: labels are pre-sorted)."""
        out: Dict[str, Any] = {}
        for name, labels, metric in self.items():
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels.items())
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            out[key] = metric.as_dict()
        return out

    def render_text(self) -> str:
        """Human-readable report, one metric per line (histograms get a
        summary line plus their bucket counts)."""
        lines: List[str] = []
        for key, data in self.as_dict().items():
            if data["kind"] == "histogram":
                lines.append(
                    f"{key}: total={data['total']} mean={data['mean']:.3f} "
                    f"max={data['max']:g}"
                )
                pairs = []
                for bound, count in zip(data["bounds"], data["counts"]):
                    pairs.append(f"<={bound:g}:{count}")
                pairs.append(f">{data['bounds'][-1]:g}:{data['counts'][-1]}")
                lines.append(f"  buckets {' '.join(pairs)}")
            elif isinstance(data["value"], float) and not data["value"].is_integer():
                lines.append(f"{key}: {data['value']:.4f}")
            else:
                lines.append(f"{key}: {data['value']:g}")
        return "\n".join(lines)


# -- collectors ---------------------------------------------------------------


def collect_machine(
    registry: MetricsRegistry, machine, prefix: str = "pdm"
) -> None:
    """Snapshot a machine's cumulative counters into ``registry``:
    I/O rounds, blocks moved, bandwidth utilization, memory peaks, space."""
    stats = machine.stats
    registry.gauge(f"{prefix}.read_ios").set(stats.read_ios)
    registry.gauge(f"{prefix}.write_ios").set(stats.write_ios)
    registry.gauge(f"{prefix}.total_ios").set(stats.total_ios)
    registry.gauge(f"{prefix}.blocks_read").set(stats.blocks_read)
    registry.gauge(f"{prefix}.blocks_written").set(stats.blocks_written)
    registry.gauge(f"{prefix}.utilization").set(
        stats.utilization(machine.num_disks)
    )
    registry.gauge(f"{prefix}.num_disks").set(machine.num_disks)
    registry.gauge(f"{prefix}.block_items").set(machine.block_items)
    registry.gauge(f"{prefix}.memory_used_words").set(machine.memory.used_words)
    registry.gauge(f"{prefix}.memory_peak_words").set(machine.memory.peak_words)
    registry.gauge(f"{prefix}.touched_blocks").set(machine.touched_blocks)
    registry.gauge(f"{prefix}.footprint_bits").set(machine.footprint_bits)
    if getattr(machine, "cache", None) is not None:
        collect_cache(registry, machine)


def collect_cache(
    registry: MetricsRegistry, machine, prefix: str = "cache"
) -> None:
    """Snapshot the machine's buffer-pool counters (:mod:`repro.pdm.cache`)
    into the registry.  No-op on an uncached machine."""
    pool = getattr(machine, "cache", None)
    if pool is None:
        return
    s = pool.stats
    registry.gauge(f"{prefix}.capacity_blocks").set(pool.capacity_blocks)
    registry.gauge(f"{prefix}.occupancy_blocks").set(len(pool))
    registry.gauge(f"{prefix}.hits").set(s.hits)
    registry.gauge(f"{prefix}.misses").set(s.misses)
    registry.gauge(f"{prefix}.fills").set(s.fills)
    registry.gauge(f"{prefix}.evictions").set(s.evictions)
    registry.gauge(f"{prefix}.flushed_blocks").set(s.flushed_blocks)
    registry.gauge(f"{prefix}.invalidations").set(s.invalidations)
    registry.gauge(f"{prefix}.absorbed_writes").set(s.absorbed_writes)
    registry.gauge(f"{prefix}.write_through_writes").set(
        s.write_through_writes
    )
    registry.gauge(f"{prefix}.hit_rate").set(s.hit_rate())
    registry.gauge(f"{prefix}.write_through").set(int(pool.write_through))


def collect_spans(
    registry: MetricsRegistry,
    recorder,
    *,
    buckets: Sequence[float] = DEFAULT_IO_BUCKETS,
    roots_only: bool = True,
) -> None:
    """Aggregate a :class:`~repro.pdm.spans.SpanRecorder` into the
    registry: operation counts, raw and effective round totals per span
    name, plus a per-name histogram of per-operation rounds.

    With ``roots_only`` (the default) only top-level operations feed the
    histograms — nested helper spans still appear in the totals counters.
    """
    for s in recorder.iter_spans():
        registry.counter("span.count", span=s.name).inc()
        registry.counter("span.read_ios", span=s.name).inc(s.cost.read_ios)
        registry.counter("span.write_ios", span=s.name).inc(s.cost.write_ios)
        registry.counter("span.blocks_read", span=s.name).inc(s.cost.blocks_read)
        registry.counter("span.blocks_written", span=s.name).inc(
            s.cost.blocks_written
        )
        registry.counter("span.effective_ios", span=s.name).inc(
            s.effective_cost.total_ios
        )
    roots = recorder.roots if roots_only else list(recorder.iter_spans())
    for s in roots:
        registry.histogram("span.op_ios", buckets, span=s.name).observe(
            s.effective_cost.total_ios
        )


def collect_faults(
    registry: MetricsRegistry,
    machine,
    recorder=None,
    prefix: str = "faults",
) -> None:
    """Fault-injection and recovery telemetry.

    Injected-event counters come from the machine's attached
    :class:`~repro.pdm.faults.FaultInjector` (no-op when no faults are
    attached — the gauges still report the stats counters, which are then
    zero).  With a span ``recorder``, also counts the spans that ran
    degraded (``attrs["degraded"]``).
    """
    injector = getattr(machine, "faults", None)
    if injector is not None:
        for kind in sorted(injector.injected):
            registry.counter(f"{prefix}.injected", kind=kind).inc(
                injector.injected[kind]
            )
        registry.gauge(f"{prefix}.pending_corruptions").set(
            injector.pending_corruptions
        )
    stats = machine.stats
    registry.gauge(f"{prefix}.retry_ios").set(stats.retry_ios)
    registry.gauge(f"{prefix}.repair_ios").set(stats.repair_ios)
    if recorder is not None:
        degraded = sum(
            1 for s in recorder.iter_spans() if s.attrs.get("degraded")
        )
        registry.gauge(f"{prefix}.degraded_spans").set(degraded)


def collect_recovery(
    registry: MetricsRegistry,
    machine,
    manager=None,
    prefix: str = "recovery",
) -> None:
    """Self-healing telemetry: health states and rebuild progress.

    With a health tracker attached (``machine.health``), exports one
    gauge per state (``recovery.disks{state=...}``) plus the transition
    count.  With a :class:`~repro.recovery.manager.RecoveryManager`,
    exports its counters (rebuilds started/completed/aborted, blocks
    rebuilt/verified/lost, spare starvation, idle-wait rounds) and the
    journal length.  No-op gauges are still emitted for attached
    components so dashboards see explicit zeros, matching
    :func:`collect_faults`.
    """
    tracker = getattr(machine, "health", None)
    if tracker is not None:
        for state, count in sorted(tracker.counts().items()):
            registry.gauge(f"{prefix}.disks", state=state).set(count)
        registry.gauge(f"{prefix}.transitions").set(tracker.transitions)
    if manager is not None:
        for key, value in sorted(manager.stats.items()):
            registry.counter(f"{prefix}.{key}").inc(value)
        registry.gauge(f"{prefix}.active_rebuilds").set(
            manager.active_rebuilds
        )
        registry.gauge(f"{prefix}.journal_entries").set(len(manager.journal))
        registry.gauge(f"{prefix}.spares_available").set(
            manager.spares.available
        )


def collect_load_distribution(
    registry: MetricsRegistry,
    histogram: Mapping[int, int],
    *,
    name: str = "bucket_load",
    buckets: Optional[Sequence[float]] = None,
    **labels: Any,
) -> None:
    """Fold a ``load -> bucket count`` map (from
    :meth:`~repro.core.load_balancer.DChoiceLoadBalancer.load_histogram` or
    :meth:`~repro.core.basic_dict.BasicDictionary.load_histogram`) into a
    registry histogram."""
    if buckets is None:
        buckets = DEFAULT_IO_BUCKETS
    metric = registry.histogram(name, buckets, **labels)
    for load in sorted(histogram):
        metric.observe(load, count=histogram[load])


def collect_batches(registry: MetricsRegistry, recorder) -> None:
    """Aggregate round-packing telemetry from batch spans.

    Every batched dictionary operation annotates its span with
    ``rounds_batched`` / ``rounds_sequential`` / ``rounds_saved`` /
    ``blocks_deduplicated`` (see
    :func:`repro.core.interface.annotate_round_packing`); this folds them
    into per-span-name counters so one run's total round savings are a
    single registry read.
    """
    for s in recorder.iter_spans():
        if "rounds_saved" not in s.attrs:
            continue
        registry.counter("batch.count", span=s.name).inc()
        registry.counter("batch.ops", span=s.name).inc(
            s.attrs.get("batch_size", 0)
        )
        registry.counter("batch.rounds_batched", span=s.name).inc(
            s.attrs["rounds_batched"]
        )
        registry.counter("batch.rounds_sequential", span=s.name).inc(
            s.attrs["rounds_sequential"]
        )
        registry.counter("batch.rounds_saved", span=s.name).inc(
            s.attrs["rounds_saved"]
        )
        registry.counter("batch.blocks_deduplicated", span=s.name).inc(
            s.attrs["blocks_deduplicated"]
        )
