"""Exporters: JSON Lines events, Chrome trace-event JSON, plain-text tables.

All output is deterministic: timestamps are *logical* (parallel I/O
rounds, the model's own clock — never the wall clock), dict keys are
written sorted, and every traversal is insertion-ordered.

The Chrome trace uses the `trace event format`_ with ``"X"`` (complete)
events so it loads directly in Perfetto / ``chrome://tracing``:

* process ``1`` ("operation spans") renders the span trees — one slice per
  span, laid out so that a slice's width is its *effective* cost in
  rounds, sequential children follow each other and parallel children
  overlap;
* process ``2`` ("disks") renders the per-disk timeline from a
  :class:`~repro.pdm.trace.TraceRecorder` — one track per disk, one slice
  per batched I/O, so stripe discipline (all disks busy every round) is
  visible at a glance.

With ``wall=True`` (and a recorder that ran under
:func:`repro.obs.wallclock.enable_wall_clock`) a third track group is
added:

* process ``3`` ("wall clock") renders the *real-time* span timeline —
  one track per executor lane, slice positions and widths in measured
  microseconds relative to the recorder's wall origin.  This group is
  explicitly nondeterministic (it changes run to run); it exists to be
  eyeballed next to the logical groups, never to be committed or diffed.
  Without ``wall=True`` the output is byte-identical to what this module
  always produced.

.. _trace event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional

from repro.pdm.spans import Span, SpanRecorder

#: Chrome-trace microseconds per parallel I/O round.  Scaling up keeps
#: zero-cost bookkeeping spans visible (1 us) without distorting layout.
US_PER_ROUND = 1024


# -- JSON Lines ---------------------------------------------------------------


def span_events(
    recorder: SpanRecorder, *, wall: bool = False
) -> List[Dict[str, Any]]:
    """One flat event per span (pre-order), with tree structure encoded as
    ``parent`` indices — convenient for line-oriented diffing.

    With ``wall=True``, spans stamped by the wall channel additionally
    carry ``wall_ns`` / ``lane`` fields.  The default output never does —
    it must stay diffable run to run."""
    events: List[Dict[str, Any]] = []

    def emit(node: Span, parent: Optional[int], depth: int) -> None:
        record = node.to_dict()
        record.pop("children")
        record["type"] = "span"
        record["parent"] = parent
        record["depth"] = depth
        if wall and node.wall_ns is not None:
            record["wall_ns"] = node.wall_ns
            record["lane"] = node.lane
        events.append(record)
        for child in node.children:
            emit(child, node.index, depth + 1)

    for root in recorder.roots:
        emit(root, None, 0)
    return events


def write_jsonl(path, events: Iterable[Dict[str, Any]]) -> int:
    """Write events one JSON object per line; returns the event count."""
    path = pathlib.Path(path)
    count = 0
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True))
            fh.write("\n")
            count += 1
    return count


# -- Chrome trace-event format ------------------------------------------------


def _span_slices(
    node: Span, start: int, out: List[Dict[str, Any]]
) -> int:
    """Lay out ``node`` at logical time ``start``; returns its duration.

    Durations derive from effective costs (so parallel phases render as
    overlap); a parent is stretched to contain its children, and zero-cost
    spans get 1 us so they stay clickable."""
    cursor = start
    child_extent = 0
    if node.mode == "parallel":
        for child in node.children:
            child_extent = max(child_extent, _span_slices(child, start, out))
    else:
        for child in node.children:
            cursor += _span_slices(child, cursor, out)
        child_extent = cursor - start
    dur = max(
        node.effective_cost.total_ios * US_PER_ROUND, child_extent, 1
    )
    out.append(
        {
            "name": node.name,
            "cat": "span",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": start,
            "dur": dur,
            "args": {
                "attrs": {k: repr(v) for k, v in sorted(node.attrs.items())},
                "read_ios": node.cost.read_ios,
                "write_ios": node.cost.write_ios,
                "blocks_read": node.cost.blocks_read,
                "blocks_written": node.cost.blocks_written,
                "effective_ios": node.effective_cost.total_ios,
                "mode": node.mode,
            },
        }
    )
    return dur


def _wall_slices(
    recorder: SpanRecorder, out: List[Dict[str, Any]]
) -> None:
    """Process-3 lane tracks: every wall-stamped span at its measured
    real time (us since the recorder's wall origin), one Chrome tid per
    executor lane in first-seen order."""
    stamped: List[Span] = []

    def collect(node: Span) -> None:
        if node.wall_start_ns is not None and node.wall_ns is not None:
            stamped.append(node)
        for child in node.children:
            collect(child)

    for root in recorder.roots:
        collect(root)
    if not stamped:
        return
    origin = getattr(recorder, "wall_origin_ns", None)
    if origin is None:
        origin = min(node.wall_start_ns for node in stamped)
    out.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 3,
            "args": {"name": "wall clock (real us, one track per lane)"},
        }
    )
    lane_tids: Dict[str, int] = {}
    for node in stamped:
        lane = node.lane or "owner-lane"
        tid = lane_tids.get(lane)
        if tid is None:
            tid = lane_tids[lane] = len(lane_tids)
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 3,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        out.append(
            {
                "name": node.name,
                "cat": "wall",
                "ph": "X",
                "pid": 3,
                "tid": tid,
                "ts": (node.wall_start_ns - origin) / 1000.0,
                "dur": max(node.wall_ns / 1000.0, 0.001),
                "args": {
                    "lane": lane,
                    "wall_ns": node.wall_ns,
                    "charged_ios": node.cost.total_ios,
                },
            }
        )


def chrome_trace_events(
    recorder: Optional[SpanRecorder] = None,
    tracer=None,
    *,
    num_disks: Optional[int] = None,
    wall: bool = False,
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from a span recorder and/or an I/O
    trace recorder.  ``wall=True`` adds the real-time process-3 track
    group for wall-stamped spans (and changes nothing else)."""
    events: List[Dict[str, Any]] = []
    if recorder is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "operation spans (ts in I/O rounds)"},
            }
        )
        cursor = 0
        for root in recorder.roots:
            cursor += _span_slices(root, cursor, events)
    if tracer is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 2,
                "args": {"name": "disks (one track per disk)"},
            }
        )
        disks_seen: Dict[int, None] = {}
        clock = 0
        for ev in tracer.events:
            blocks_per_disk: Dict[int, int] = {}
            for disk_id, _idx in ev.addrs:
                blocks_per_disk[disk_id] = blocks_per_disk.get(disk_id, 0) + 1
                disks_seen.setdefault(disk_id, None)
            for disk_id, blocks in blocks_per_disk.items():
                events.append(
                    {
                        "name": ev.kind,
                        "cat": "io",
                        "ph": "X",
                        "pid": 2,
                        "tid": disk_id,
                        "ts": clock * US_PER_ROUND,
                        "dur": max(ev.rounds * US_PER_ROUND, 1),
                        "args": {"blocks": blocks, "rounds": ev.rounds},
                    }
                )
            clock += ev.rounds
        known = list(disks_seen) if num_disks is None else list(range(num_disks))
        for disk_id in known:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 2,
                    "tid": disk_id,
                    "args": {"name": f"disk {disk_id}"},
                }
            )
    if wall and recorder is not None:
        _wall_slices(recorder, events)
    return events


def chrome_trace(
    recorder: Optional[SpanRecorder] = None,
    tracer=None,
    *,
    num_disks: Optional[int] = None,
    wall: bool = False,
) -> Dict[str, Any]:
    """The full trace JSON object (``{"traceEvents": [...]}``)."""
    return {
        "traceEvents": chrome_trace_events(
            recorder, tracer, num_disks=num_disks, wall=wall
        ),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": f"logical: {US_PER_ROUND} us per parallel I/O round",
        },
    }


def write_chrome_trace(
    path,
    recorder: Optional[SpanRecorder] = None,
    tracer=None,
    *,
    num_disks: Optional[int] = None,
    wall: bool = False,
) -> pathlib.Path:
    path = pathlib.Path(path)
    with path.open("w") as fh:
        json.dump(
            chrome_trace(recorder, tracer, num_disks=num_disks, wall=wall),
            fh,
            sort_keys=True,
            indent=1,
        )
        fh.write("\n")
    return path


# -- plain-text tables (the legacy benchmark artefacts) -----------------------


def write_table_artifact(
    results_dir, name: str, text: str, *, sidecar: bool = True
) -> pathlib.Path:
    """Write a rendered benchmark table as ``<name>.txt`` plus (by default)
    a machine-readable ``<name>.json`` sidecar — the single path every
    benchmark table now flows through."""
    results_dir = pathlib.Path(results_dir)
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    if sidecar:
        record = {"name": name, "kind": "table", "lines": text.splitlines()}
        (results_dir / f"{name}.json").write_text(
            json.dumps(record, sort_keys=True, indent=1) + "\n"
        )
    return path
