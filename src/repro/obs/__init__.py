"""Observability for the PDM simulator: metrics, bound monitors, exporters.

The span *primitive* lives in :mod:`repro.pdm.spans` (the machine layer must
never import upward); this package consumes recorded spans and machine
counters and turns them into:

* :mod:`repro.obs.metrics` — deterministic counters / gauges / fixed-bucket
  histograms (I/O rounds per op kind, blocks moved, utilization, memory
  peaks, bucket-load distributions);
* :mod:`repro.obs.monitors` — runtime checks of the paper's closed-form
  budgets (Lemma 3, Theorem 6, Theorem 7) against live span costs;
* :mod:`repro.obs.export` — JSON Lines, Chrome trace-event JSON (Perfetto),
  and plain-text table artefacts;
* :mod:`repro.obs.harness` — instrumented workload replay behind the
  ``python -m repro.obs`` CLI.

Everything here is off the hot path: with no recorder attached, the
simulator pays a single ``is None`` check per operation.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    span_events,
    write_chrome_trace,
    write_jsonl,
    write_table_artifact,
)
from repro.obs.harness import ObsReport, report_events, run_instrumented
from repro.obs.metrics import (
    DEFAULT_IO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_load_distribution,
    collect_machine,
    collect_spans,
)
from repro.obs.monitors import (
    BoundMonitor,
    BoundViolationError,
    MonitorSet,
    SpanBudgetMonitor,
    Violation,
    default_monitors,
    lemma3_load_monitor,
    theorem6_lookup_monitor,
    theorem7_lookup_monitor,
    theorem7_update_monitor,
)

__all__ = [
    "BoundMonitor",
    "BoundViolationError",
    "Counter",
    "DEFAULT_IO_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MonitorSet",
    "ObsReport",
    "SpanBudgetMonitor",
    "Violation",
    "chrome_trace",
    "chrome_trace_events",
    "collect_load_distribution",
    "collect_machine",
    "collect_spans",
    "default_monitors",
    "lemma3_load_monitor",
    "report_events",
    "run_instrumented",
    "span_events",
    "theorem6_lookup_monitor",
    "theorem7_lookup_monitor",
    "theorem7_update_monitor",
    "write_chrome_trace",
    "write_jsonl",
    "write_table_artifact",
]
