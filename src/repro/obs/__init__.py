"""Observability for the PDM simulator: metrics, bound monitors, exporters.

The span *primitive* lives in :mod:`repro.pdm.spans` (the machine layer must
never import upward); this package consumes recorded spans and machine
counters and turns them into:

* :mod:`repro.obs.metrics` — deterministic counters / gauges / fixed-bucket
  histograms (I/O rounds per op kind, blocks moved, utilization, memory
  peaks, bucket-load distributions);
* :mod:`repro.obs.monitors` — runtime checks of the paper's closed-form
  budgets (Lemma 3, Theorem 6, Theorem 7) against live span costs;
* :mod:`repro.obs.export` — JSON Lines, Chrome trace-event JSON (Perfetto),
  and plain-text table artefacts;
* :mod:`repro.obs.harness` — instrumented workload replay behind the
  ``python -m repro.obs`` CLI;
* :mod:`repro.obs.wallclock` — the *nondeterministic* wall channel: real
  time and executor lanes, kept strictly beside (never inside) the
  deterministic record;
* :mod:`repro.obs.latency` — wall-latency histograms with p50/p95/p99,
  per-layer attribution, per-disk utilization timelines, and the
  always-on :class:`~repro.obs.latency.LatencyTracker`;
* :mod:`repro.obs.history` — the bench trajectory: every ``BENCH_*.json``
  merged into ``benchmarks/results/trajectory.json`` with per-metric
  regression attribution (``python -m repro.obs.history``).

Everything here is off the hot path: with no recorder attached, the
simulator pays a single ``is None`` check per operation.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    span_events,
    write_chrome_trace,
    write_jsonl,
    write_table_artifact,
)
from repro.obs.harness import ObsReport, report_events, run_instrumented
from repro.obs.latency import (
    KERNEL_PREFIX,
    LAYERS,
    DiskTimeline,
    LatencyTracker,
    classify_layer,
    collect_latency,
    percentile_rows,
)
from repro.obs.metrics import (
    DEFAULT_IO_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_load_distribution,
    collect_machine,
    collect_recovery,
    collect_spans,
)
from repro.obs.monitors import (
    BoundMonitor,
    BoundViolationError,
    MonitorSet,
    RecoveryMonitor,
    SpanBudgetMonitor,
    Violation,
    default_monitors,
    lemma3_load_monitor,
    theorem6_lookup_monitor,
    theorem7_lookup_monitor,
    theorem7_update_monitor,
)
from repro.obs.wallclock import (
    LANES,
    OverheadReport,
    current_lane,
    disable_wall_clock,
    enable_wall_clock,
    lane,
    measure_overhead,
    wall_enabled,
)

__all__ = [
    "BoundMonitor",
    "BoundViolationError",
    "Counter",
    "DEFAULT_IO_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_US",
    "DEFAULT_QUANTILES",
    "DiskTimeline",
    "Gauge",
    "Histogram",
    "KERNEL_PREFIX",
    "LANES",
    "LAYERS",
    "LatencyTracker",
    "MetricsRegistry",
    "MonitorSet",
    "ObsReport",
    "OverheadReport",
    "RecoveryMonitor",
    "SpanBudgetMonitor",
    "Violation",
    "chrome_trace",
    "chrome_trace_events",
    "classify_layer",
    "collect_latency",
    "collect_load_distribution",
    "collect_machine",
    "collect_recovery",
    "collect_spans",
    "current_lane",
    "default_monitors",
    "disable_wall_clock",
    "enable_wall_clock",
    "lane",
    "lemma3_load_monitor",
    "measure_overhead",
    "percentile_rows",
    "report_events",
    "run_instrumented",
    "span_events",
    "wall_enabled",
    "theorem6_lookup_monitor",
    "theorem7_lookup_monitor",
    "theorem7_update_monitor",
    "write_chrome_trace",
    "write_jsonl",
    "write_table_artifact",
]
