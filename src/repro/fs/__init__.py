"""A deterministic file system on the dictionary (Section 1.2).

"Note that this implementation gives random access to any position in a
file" — the paper's motivating application, packaged: file names map
through :class:`~repro.workloads.names.NameCodec` into the dictionary
universe (no inode translation step), each (name, block) key holds one
file block, and every operation reports its parallel-I/O cost with the
dictionary's worst-case guarantees behind it.

:mod:`repro.fs.blockfile` is the other half of this package: the durable
per-disk block log beneath the file-backed executors
(:mod:`repro.pdm.executors`) — append-only CRC-framed records with
fsync-before-acknowledge ordering and typed
:class:`~repro.pdm.errors.DiskFailure` / BlockCorruption errors.
"""

from repro.fs.blockfile import BlockLogFile, decode_frame, encode_frame
from repro.fs.filesystem import DeterministicFileSystem, FileStat

__all__ = [
    "BlockLogFile",
    "DeterministicFileSystem",
    "FileStat",
    "decode_frame",
    "encode_frame",
]
