"""A deterministic file system on the dictionary (Section 1.2).

"Note that this implementation gives random access to any position in a
file" — the paper's motivating application, packaged: file names map
through :class:`~repro.workloads.names.NameCodec` into the dictionary
universe (no inode translation step), each (name, block) key holds one
file block, and every operation reports its parallel-I/O cost with the
dictionary's worst-case guarantees behind it.
"""

from repro.fs.filesystem import DeterministicFileSystem, FileStat

__all__ = ["DeterministicFileSystem", "FileStat"]
