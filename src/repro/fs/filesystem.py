"""The deterministic file system.

Layout (two dictionaries, as Section 1.2 sketches):

* a **name table**: key = encoded file name (block 0 of the codec's block
  space reserved for metadata), value = the file's current length in
  blocks — this is what replaces the inode-translation walk;
* a **block store**: key = encoded (name, 1 + block number), value = the
  block's contents.

Both live in paper dictionaries (the §4.1 structure via the facade, with
global rebuilding so the file system grows unboundedly), so:

* reading any block of any file = name-table hit is not even needed when
  the position is known — **one parallel I/O**, worst case;
* writing a block = 2 parallel I/Os, worst case;
* all operations deterministic; no operation has a bad tail.

A directory listing is the one operation this design is *not* built for
(there is deliberately no central directory — Section 1.1); ``list_names``
is provided as an audit scan and documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.facade import ParallelDiskDictionary
from repro.pdm.iostats import IOStats, OpCost
from repro.workloads.names import NameCodec


@dataclass(frozen=True)
class FileStat:
    name: str
    num_blocks: int


class FileNotFound(KeyError):
    """The named file does not exist."""


class DeterministicFileSystem:
    """Random-access file storage with worst-case I/O guarantees."""

    def __init__(
        self,
        *,
        max_name_bytes: int = 16,
        max_blocks_per_file: int = 1 << 12,
        expected_blocks: int = 1024,
        block_items: int = 64,
        seed: int = 0,
    ):
        # Slot 0 of each file's block space holds its metadata; data blocks
        # live at slots 1 .. max_blocks_per_file.
        self.codec = NameCodec(
            max_name_bytes=max_name_bytes,
            max_blocks=max_blocks_per_file + 1,
        )
        self.max_blocks_per_file = max_blocks_per_file
        self.store = ParallelDiskDictionary(
            universe_size=self.codec.universe_size,
            capacity=max(64, expected_blocks),
            mode="basic",
            block_items=block_items,
            unbounded=True,
            seed=seed,
        )

    # -- internals ---------------------------------------------------------------

    def _meta_key(self, name: str) -> int:
        return self.codec.key(name, 0)

    def _block_key(self, name: str, block: int) -> int:
        if not 0 <= block < self.max_blocks_per_file:
            raise ValueError(
                f"block {block} out of range [0, {self.max_blocks_per_file})"
            )
        return self.codec.key(name, block + 1)

    def _require(self, name: str) -> Tuple[int, OpCost]:
        result = self.store.lookup(self._meta_key(name))
        if not result.found:
            raise FileNotFound(name)
        return result.value, result.cost

    # -- operations -----------------------------------------------------------------

    def create(self, name: str) -> OpCost:
        """Create an empty file; idempotent on existing files."""
        existing = self.store.lookup(self._meta_key(name))
        if existing.found:
            return existing.cost
        return existing.cost + self.store.insert(self._meta_key(name), 0)

    def exists(self, name: str) -> bool:
        return self.store.lookup(self._meta_key(name)).found

    def stat(self, name: str) -> FileStat:
        num_blocks, _cost = self._require(name)
        return FileStat(name=name, num_blocks=num_blocks)

    def write_block(self, name: str, block: int, data: Any) -> OpCost:
        """Write (or overwrite) one block; extends the file length if the
        block lies past the current end.  Worst case: a constant number of
        parallel I/Os (metadata + block, each a 2-I/O dictionary update)."""
        length, cost = self._require(name)
        cost = cost + self.store.insert(self._block_key(name, block), data)
        if block >= length:
            cost = cost + self.store.insert(self._meta_key(name), block + 1)
        return cost

    def append_block(self, name: str, data: Any) -> Tuple[int, OpCost]:
        """Append one block; returns (block number, cost)."""
        length, cost = self._require(name)
        if length >= self.max_blocks_per_file:
            raise ValueError(
                f"{name!r} is at the {self.max_blocks_per_file}-block limit"
            )
        cost = cost + self.store.insert(self._block_key(name, length), data)
        cost = cost + self.store.insert(self._meta_key(name), length + 1)
        return length, cost

    def read_block(self, name: str, block: int) -> Tuple[Any, OpCost]:
        """Random access to any position of any file — the paper's 1-I/O
        headline (no name-table hop needed: the (name, block) key goes
        straight to the data)."""
        result = self.store.lookup(self._block_key(name, block))
        if not result.found:
            # Distinguish "no file" from "hole/short file" for the caller.
            self._require(name)
            raise IndexError(f"{name!r} has no block {block}")
        return result.value, result.cost

    def read_file(self, name: str) -> Tuple[List[Any], OpCost]:
        """Sequential scan of a whole file (one lookup per block; caching
        across blocks is the B-tree's consolation prize, not ours to need)."""
        length, cost = self._require(name)
        blocks = []
        for block in range(length):
            data, c = self.read_block(name, block)
            blocks.append(data)
            cost = cost + c
        return blocks, cost

    def delete(self, name: str) -> OpCost:
        """Remove the file and all its blocks."""
        length, cost = self._require(name)
        for block in range(length):
            cost = cost + self.store.delete(self._block_key(name, block))
        cost = cost + self.store.delete(self._meta_key(name))
        return cost

    def truncate(self, name: str, num_blocks: int) -> OpCost:
        """Shrink (or no-op) to ``num_blocks`` blocks."""
        length, cost = self._require(name)
        for block in range(num_blocks, length):
            cost = cost + self.store.delete(self._block_key(name, block))
        if num_blocks < length:
            cost = cost + self.store.insert(self._meta_key(name), num_blocks)
        return cost

    # -- audits ---------------------------------------------------------------------

    def list_names(self) -> Iterator[str]:
        """Audit scan over stored keys (there is no directory structure —
        by design; see Section 1.1).  Not an I/O-accounted operation."""
        for key in self.store.stored_keys():
            name, slot = self.codec.split(key)
            if slot == 0:
                yield name

    def total_blocks(self) -> int:
        return sum(self.stat(name).num_blocks for name in self.list_names())

    def io_stats(self) -> IOStats:
        return self.store.io_stats()
