"""Durable per-disk block storage: an append-only frame log.

One :class:`BlockLogFile` is the physical image of one simulated disk for
the real-file executors (:mod:`repro.pdm.executors`).  Each write appends
a self-describing *frame* — header, pickled payload, CRC — and updates an
in-memory index ``block_index -> (offset, length)``; the newest frame for
an index shadows every older one, so overwrites never rewrite the file.
Reads use ``os.pread`` on a raw descriptor: no shared file position, so
one worker thread (or process) per disk can serve a round's transfers
concurrently without locking.

Durability contract (the gap this module closes):

* every OS-level error (``OSError`` from open/pread/pwrite/fsync) is
  wrapped into a typed :class:`~repro.pdm.errors.DiskFailure` — callers
  above the PDM layer never see a raw ``OSError``;
* a frame that fails its CRC, or was torn by a crash mid-write
  (``truncate`` through the middle of a frame models this), surfaces as
  :class:`~repro.pdm.errors.BlockCorruption` on read — detected, never
  silently decoded;
* with ``fsync=True`` every append is ``fsync``-ed *before* the index
  learns about the new frame, so an acknowledged write is on the medium
  (the in-memory index never points past what a crash could replay).

The frame layout is fixed-endian (``<``) and versioned::

    magic "RBLK" | version u8 | flags u8 | reserved u16
    block_index i64 | used_bits i64 | checksum u64 | payload_len u32
    payload (pickle, payload_len bytes)
    crc32 u32   # over header + payload

``flags`` bit 0 records whether the block carried a seal
(:attr:`repro.pdm.block.Block.checksum` is ``None`` otherwise); the
64-bit seal itself rides in the header so verify-on-read above the
executor sees exactly what the logical block carried.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.pdm.errors import BlockCorruption, DiskFailure

MAGIC = b"RBLK"
VERSION = 1
_HEADER = struct.Struct("<4sBBHqqQI")
HEADER_SIZE = _HEADER.size
_CRC = struct.Struct("<I")
CRC_SIZE = _CRC.size
_FLAG_SEALED = 0x01
#: pinned pickle protocol: frames written by one interpreter must decode
#: in a worker process of the same run and in later sessions alike.
PICKLE_PROTOCOL = 4

#: index sentinel for a frame whose tail was torn off (crash mid-write):
#: the header survived, so we know *which* block is damaged and raise
#: BlockCorruption on its read instead of resurrecting the older frame.
_TORN = (-1, -1)


def encode_frame(
    block_index: int, payload: Any, used_bits: int, checksum: Optional[int]
) -> bytes:
    """One self-describing frame for ``block_index``."""
    body = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
    flags = 0 if checksum is None else _FLAG_SEALED
    header = _HEADER.pack(
        MAGIC, VERSION, flags, 0, block_index, used_bits,
        checksum if checksum is not None else 0, len(body),
    )
    return header + body + _CRC.pack(zlib.crc32(header + body))


def decode_frame(
    data: bytes, *, path: str = "?", block_index: Optional[int] = None
) -> Tuple[Any, int, Optional[int]]:
    """``(payload, used_bits, checksum)`` of one frame, CRC-verified.

    Raises :class:`~repro.pdm.errors.BlockCorruption` for anything that is
    not a bit-exact frame: short reads, bad magic, CRC mismatch, or a
    payload that no longer unpickles.
    """
    where = f"block {block_index} of {path}" if block_index is not None else path
    if len(data) < HEADER_SIZE + CRC_SIZE:
        raise BlockCorruption(
            f"torn frame at {where}: {len(data)} bytes is shorter than a "
            f"frame header"
        )
    magic, version, flags, _, index, used_bits, checksum, payload_len = (
        _HEADER.unpack_from(data)
    )
    if magic != MAGIC or version != VERSION:
        raise BlockCorruption(
            f"bad frame magic/version at {where}: {magic!r} v{version}"
        )
    end = HEADER_SIZE + payload_len
    if len(data) < end + CRC_SIZE:
        raise BlockCorruption(
            f"torn frame at {where}: header claims {payload_len} payload "
            f"bytes but only {len(data) - HEADER_SIZE - CRC_SIZE} are present"
        )
    (crc,) = _CRC.unpack_from(data, end)
    if crc != zlib.crc32(data[:end]):
        raise BlockCorruption(f"frame CRC mismatch at {where}")
    try:
        payload = pickle.loads(data[HEADER_SIZE:end])
    except Exception as exc:
        raise BlockCorruption(
            f"frame payload at {where} no longer unpickles: {exc!r}"
        ) from exc
    seal = checksum if flags & _FLAG_SEALED else None
    return payload, used_bits, seal


class BlockLogFile:
    """Append-only frame log holding one disk's blocks.

    Single-writer, many-reader: appends come from the owning executor
    lane; reads are position-less ``os.pread`` calls and may run from any
    thread or process holding the path and an extent.
    """

    def __init__(self, path: str, *, fsync: bool = False):
        self.path = str(path)
        self.fsync = fsync
        self._fd: Optional[int] = None
        # Newest frame per block: block_index -> (offset, frame_length),
        # or the _TORN sentinel for a frame damaged mid-write.  Owned by
        # the disk's executor lane; see Disk._blocks for the same contract.
        self._index: Dict[int, Tuple[int, int]] = {}  # detlint: guarded(disk-lane) -- one BlockLogFile per disk, owned by that disk's worker lane
        self._tail = 0
        try:
            self._fd = os.open(
                self.path, os.O_RDWR | os.O_CREAT, 0o644
            )
        except OSError as exc:
            raise DiskFailure(
                f"cannot open block log {self.path}: {exc}"
            ) from exc
        self._scan()

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            os.close(fd)
        except OSError as exc:
            raise DiskFailure(
                f"cannot close block log {self.path}: {exc}"
            ) from exc

    def __enter__(self) -> "BlockLogFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> int:
        if self._fd is None:
            raise DiskFailure(f"block log {self.path} is closed")
        return self._fd

    # -- recovery scan -----------------------------------------------------

    def _scan(self) -> None:
        """Rebuild the index from the frames on disk.

        Walks headers only (CRCs are verified on read).  A final frame cut
        short by a crash is recorded as torn when its header survived —
        its block then raises :class:`BlockCorruption` on read — and
        silently ends the scan when even the header is gone (nothing
        identifies a block, so there is nothing to mark).
        """
        fd = self._require_open()
        try:
            size = os.fstat(fd).st_size
        except OSError as exc:
            raise DiskFailure(
                f"cannot stat block log {self.path}: {exc}"
            ) from exc
        offset = 0
        while offset < size:
            header = self._pread(HEADER_SIZE, offset)
            if len(header) < HEADER_SIZE:
                break  # torn inside the header: no index to blame
            magic, version, _, _, index, _, _, payload_len = (
                _HEADER.unpack_from(header)
            )
            if magic != MAGIC or version != VERSION:
                raise BlockCorruption(
                    f"bad frame magic at offset {offset} of {self.path}; "
                    f"the log is not recoverable past this point"
                )
            length = HEADER_SIZE + payload_len + CRC_SIZE
            if offset + length > size:
                self._index[index] = _TORN
                break
            self._index[index] = (offset, length)
            offset += length
        self._tail = offset

    # -- reads -------------------------------------------------------------

    def _pread(self, length: int, offset: int) -> bytes:
        fd = self._require_open()
        try:
            return os.pread(fd, length, offset)
        except OSError as exc:
            raise DiskFailure(
                f"read of {self.path} failed at offset {offset}: {exc}"
            ) from exc

    def frame_extent(self, block_index: int) -> Optional[Tuple[int, int]]:
        """``(offset, length)`` of the newest frame for ``block_index``,
        ``None`` if never written.  Raises for a torn frame — process
        workers must not be handed an unreadable extent."""
        extent = self._index.get(block_index)
        if extent is None:
            return None
        if extent == _TORN:
            raise BlockCorruption(
                f"block {block_index} of {self.path} was torn by an "
                f"interrupted write"
            )
        return extent

    def read_block(
        self, block_index: int
    ) -> Optional[Tuple[Any, int, Optional[int]]]:
        """``(payload, used_bits, checksum)`` or ``None`` if never written."""
        extent = self.frame_extent(block_index)
        if extent is None:
            return None
        offset, length = extent
        data = self._pread(length, offset)
        return decode_frame(data, path=self.path, block_index=block_index)

    @property
    def block_indices(self) -> List[int]:
        return sorted(self._index)

    # -- writes ------------------------------------------------------------

    def append_block(
        self,
        block_index: int,
        payload: Any,
        used_bits: int,
        checksum: Optional[int],
    ) -> None:
        self.append_many([(block_index, payload, used_bits, checksum)])

    def append_many(
        self, entries: Iterable[Tuple[int, Any, int, Optional[int]]]
    ) -> None:
        """Append one frame per entry, then (under ``fsync=True``) make
        them durable *before* the index acknowledges them."""
        fd = self._require_open()
        staged: List[Tuple[int, int, int]] = []
        offset = self._tail
        for block_index, payload, used_bits, checksum in entries:
            frame = encode_frame(block_index, payload, used_bits, checksum)
            try:
                written = os.pwrite(fd, frame, offset)
            except OSError as exc:
                raise DiskFailure(
                    f"write of block {block_index} to {self.path} failed: "
                    f"{exc}"
                ) from exc
            if written != len(frame):
                # A short pwrite is a torn frame on the medium: fail the
                # write loudly; the frame is not indexed, so the previous
                # version of the block stays authoritative.
                raise DiskFailure(
                    f"short write of block {block_index} to {self.path}: "
                    f"{written} of {len(frame)} bytes"
                )
            staged.append((block_index, offset, len(frame)))
            offset += len(frame)
        if not staged:
            return
        if self.fsync:
            self.sync()
        for block_index, off, length in staged:
            self._index[block_index] = (off, length)
        self._tail = offset

    def sync(self) -> None:
        """Durability barrier: flush the log to the medium."""
        fd = self._require_open()
        try:
            os.fsync(fd)
        except OSError as exc:
            raise DiskFailure(
                f"fsync of {self.path} failed: {exc}"
            ) from exc

    def reset(self) -> None:
        """Truncate to empty (a rebuilt disk's slate is rewritten whole)."""
        fd = self._require_open()
        try:
            os.ftruncate(fd, 0)
        except OSError as exc:
            raise DiskFailure(
                f"truncate of {self.path} failed: {exc}"
            ) from exc
        self._index.clear()
        self._tail = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockLogFile({self.path!r}, blocks={len(self._index)}, "
            f"tail={self._tail})"
        )
