"""Batched round-packed dictionary operations.

One parallel I/O round moves up to ``D`` blocks — one per disk — yet a
stream of single-key operations pays a full round (or more) per key.  This
package is the front door to the batched hot path: it drives the
``batch_lookup`` / ``batch_insert`` / ``batch_delete`` methods the
dictionaries in :mod:`repro.core` implement on top of the round-packing
scheduler in :mod:`repro.pdm.machine` (``pack_rounds`` /
``AbstractDiskMachine.plan_rounds``), and normalizes their per-key
results-or-typed-errors maps into a :class:`BatchReport` that replay,
benchmarks, and the obs CLI can consume uniformly.

Contract (shared with :class:`repro.core.interface.Dictionary`): duplicate
keys collapse, per-key fault conditions surface as exception *values* in
the result map, and a batch never fails wholesale for a condition that
only poisons some of its keys.
"""

from repro.batch.api import (
    BatchReport,
    batch_delete,
    batch_insert,
    batch_lookup,
    chunked,
)

__all__ = [
    "BatchReport",
    "batch_delete",
    "batch_insert",
    "batch_lookup",
    "chunked",
]
