"""Uniform driver API over the dictionaries' batched operations.

Every dictionary exposes ``batch_lookup(keys)``, ``batch_insert(items)``
and ``batch_delete(keys)`` returning ``(per_key_outcomes, OpCost)``; the
paper structures override the base loop with round-packed implementations.
The helpers here add what callers above the core layer keep re-deriving:
splitting outcomes from per-key errors, a summary object, and a chunker
for feeding a long op stream through fixed-size batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping

from repro.core.interface import Dictionary, LookupResult
from repro.pdm.iostats import OpCost


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one batched operation.

    ``results`` holds the successful per-key outcomes (``LookupResult`` for
    lookups, ``(was_present, old_value)`` for inserts, ``removed`` booleans
    for deletes); ``errors`` the per-key typed exceptions.  The two key
    sets are disjoint and together cover every distinct requested key.
    """

    op: str
    results: Dict[int, Any] = field(default_factory=dict)
    errors: Dict[int, Exception] = field(default_factory=dict)
    cost: OpCost = field(default_factory=OpCost.zero)

    @property
    def size(self) -> int:
        return len(self.results) + len(self.errors)

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary (used by benchmarks and the obs CLI)."""
        return {
            "op": self.op,
            "size": self.size,
            "errors": len(self.errors),
            "rounds": self.cost.total_ios,
            "blocks": self.cost.blocks_read + self.cost.blocks_written,
        }


def _split(
    op: str, outcomes: Mapping[int, Any], cost: OpCost
) -> BatchReport:
    results: Dict[int, Any] = {}
    errors: Dict[int, Exception] = {}
    for key, res in outcomes.items():
        if isinstance(res, Exception):
            errors[key] = res
        else:
            results[key] = res
    return BatchReport(op=op, results=results, errors=errors, cost=cost)


def batch_lookup(dictionary: Dictionary, keys: Iterable[int]) -> BatchReport:
    """Look up many keys in one round-packed batch."""
    outcomes, cost = dictionary.batch_lookup(keys)
    return _split("lookup", outcomes, cost)


def batch_insert(
    dictionary: Dictionary, items: Mapping[int, Any]
) -> BatchReport:
    """Insert/upsert many keys in one round-packed batch."""
    outcomes, cost = dictionary.batch_insert(items)
    return _split("insert", outcomes, cost)


def batch_delete(dictionary: Dictionary, keys: Iterable[int]) -> BatchReport:
    """Delete many keys in one round-packed batch."""
    outcomes, cost = dictionary.batch_delete(keys)
    return _split("delete", outcomes, cost)


def chunked(items: Iterable[Any], size: int) -> Iterator[List[Any]]:
    """Yield consecutive chunks of at most ``size`` items (order kept)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    chunk: List[Any] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


__all__ = [
    "BatchReport",
    "batch_delete",
    "batch_insert",
    "batch_lookup",
    "chunked",
]
