"""A B-tree on the parallel disk model, striped to fan-out ``Theta(BD)``.

Every node is one *superblock* (one block on each disk), so visiting a node
is one parallel I/O and the fan-out is ``Theta(BD)`` — the best a
comparison-based index can do with striping.  Query cost is the height,
``Theta(log_{BD} n)``, against which the paper's O(1)/1-I/O dictionaries are
benchmarked (Section 1.2's "3 disk accesses vs 1").

A classic insert-with-preemptive-split B-tree; deletions use lazy removal
from leaves (sufficient for the dictionary workloads benchmarked here).
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.interface import Dictionary, LookupResult
from repro.pdm.superblocks import SuperblockArray
from repro.pdm.iostats import OpCost, measure
from repro.pdm.machine import AbstractDiskMachine

# Node payload layout: item 0 is the header tuple ("L"|"I", n_keys); for a
# leaf the rest are (key, value) pairs; for an internal node, alternating
# child ids and separator keys: [c0, k0, c1, k1, ..., c_m].
_LEAF = "L"
_INTERNAL = "I"


class BTreeDictionary(Dictionary):
    """Striped B-tree with superblock nodes."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        disk_offset: int = 0,
        max_nodes: Optional[int] = None,
        fanout: Optional[int] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        width = machine.num_disks - disk_offset
        superblock_items = width * machine.block_items
        # Usable entries per node (minus the header slot).
        natural = superblock_items - 1
        self.max_leaf_items = natural if fanout is None else min(fanout, natural)
        # Internal nodes hold m children + (m-1) separators in `natural`
        # slots: m <= (natural + 1) // 2.
        self.max_children = max(3, (natural + 1) // 2)
        if self.max_leaf_items < 2:
            raise ValueError("blocks too small for a B-tree node")
        if max_nodes is None:
            max_nodes = 16 + 4 * math.ceil(capacity / self.max_leaf_items) * 2
        self.nodes = SuperblockArray(
            machine, num_superblocks=max_nodes, disk_offset=disk_offset
        )
        self._next_node = 0
        self.root = self._new_node(_LEAF, [])
        self.size = 0

    # -- node plumbing -----------------------------------------------------------

    def _new_node(self, kind: str, entries: List[Any]) -> int:
        node_id = self._next_node
        self._next_node += 1
        if node_id >= self.nodes.num_superblocks:
            raise OverflowError(
                "node arena exhausted; construct with a larger max_nodes"
            )
        self._write_node(node_id, kind, entries)
        return node_id

    def _write_node(self, node_id: int, kind: str, entries: List[Any]) -> None:
        self.nodes.write({node_id: [(kind, len(entries))] + entries})

    def _read_node(self, node_id: int) -> Tuple[str, List[Any]]:
        items = self.nodes.read([node_id])[node_id]
        kind, _count = items[0]
        return kind, items[1:]

    # -- search -------------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with measure(self.machine) as m:
            node_id = self.root
            while True:
                kind, entries = self._read_node(node_id)
                if kind == _LEAF:
                    value = None
                    found = False
                    for (k2, v) in entries:
                        if k2 == key:
                            found, value = True, v
                            break
                    break
                node_id = self._descend(entries, key)
        return LookupResult(found, value, m.cost)

    @staticmethod
    def _descend(entries: List[Any], key: int) -> int:
        # entries = [c0, k0, c1, k1, ..., c_m]; child i covers keys < k_i.
        child = entries[0]
        for i in range(1, len(entries), 2):
            if key < entries[i]:
                break
            child = entries[i + 1]
        return child

    def height(self) -> int:
        """Tree height in nodes (equals the lookup I/O count)."""
        h = 1
        node_id = self.root
        while True:
            kind, entries = self._peek_node(node_id)
            if kind == _LEAF:
                return h
            node_id = entries[0]
            h += 1

    def _peek_node(self, node_id: int) -> Tuple[str, List[Any]]:
        items = self.nodes.peek(node_id)
        kind, _count = items[0]
        return kind, items[1:]

    # -- insertion ----------------------------------------------------------------

    def insert(self, key: int, value: Any = None) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            split = self._insert_into(self.root, key, value)
            if split is not None:
                sep, right_id = split
                self.root = self._new_node(
                    _INTERNAL, [self.root, sep, right_id]
                )
        return m.cost

    def _insert_into(
        self, node_id: int, key: int, value: Any
    ) -> Optional[Tuple[int, int]]:
        """Recursive insert; returns ``(separator, new_right_id)`` when this
        node split."""
        kind, entries = self._read_node(node_id)
        if kind == _LEAF:
            idx = next(
                (i for i, (k2, _v) in enumerate(entries) if k2 == key), None
            )
            if idx is not None:
                entries[idx] = (key, value)
                self._write_node(node_id, _LEAF, entries)
                return None
            entries.append((key, value))
            entries.sort(key=lambda kv: kv[0])
            self.size += 1
            if len(entries) <= self.max_leaf_items:
                self._write_node(node_id, _LEAF, entries)
                return None
            mid = len(entries) // 2
            right = entries[mid:]
            left = entries[:mid]
            self._write_node(node_id, _LEAF, left)
            right_id = self._new_node(_LEAF, right)
            return (right[0][0], right_id)

        child = self._descend(entries, key)
        split = self._insert_into(child, key, value)
        if split is None:
            return None
        sep, right_id = split
        # Child ids live at even positions; separators (keys) at odd ones.
        # A plain .index() could match a separator numerically equal to the
        # child's node id, so search the child slots only.
        pos = next(
            i for i in range(0, len(entries), 2) if entries[i] == child
        )
        entries[pos + 1 : pos + 1] = [sep, right_id]
        children = (len(entries) + 1) // 2
        if children <= self.max_children:
            self._write_node(node_id, _INTERNAL, entries)
            return None
        # Split the internal node around its middle separator.
        mid_child = children // 2
        sep_idx = 2 * mid_child - 1
        promoted = entries[sep_idx]
        left = entries[:sep_idx]
        right = entries[sep_idx + 1 :]
        self._write_node(node_id, _INTERNAL, left)
        right_id2 = self._new_node(_INTERNAL, right)
        return (promoted, right_id2)

    # -- deletion -----------------------------------------------------------------------

    def delete(self, key: int) -> OpCost:
        """Lazy deletion: remove from the leaf, no rebalancing (heights only
        ever shrink on rebuild; fine for benchmark workloads)."""
        self._check_key(key)
        with measure(self.machine) as m:
            node_id = self.root
            while True:
                kind, entries = self._read_node(node_id)
                if kind == _LEAF:
                    kept = [(k2, v) for (k2, v) in entries if k2 != key]
                    if len(kept) != len(entries):
                        self._write_node(node_id, _LEAF, kept)
                        self.size -= 1
                    break
                node_id = self._descend(entries, key)
        return m.cost

    # -- audits ---------------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        stack = [self.root]
        while stack:
            kind, entries = self._peek_node(stack.pop())
            if kind == _LEAF:
                for (k2, _v) in entries:
                    yield k2
            else:
                stack.extend(entries[0::2])

    def __len__(self) -> int:
        return self.size
