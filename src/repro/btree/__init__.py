"""The B-tree baseline (Section 1.2 motivation).

File systems implement associative retrieval through B-tree variants; a
random block access follows pointers down a tree of fan-out ``B`` (``BD``
with striping), so "in most settings it takes 3 disk accesses before the
contents of the block is available".  The paper's dictionaries do it in 1.
:class:`~repro.btree.btree.BTreeDictionary` measures that gap on the same
simulator.
"""

from repro.btree.btree import BTreeDictionary

__all__ = ["BTreeDictionary"]
