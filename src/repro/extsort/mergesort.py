"""External multiway mergesort on the PDM.

The classical algorithm: (1) *run formation* — read memory-fulls of records,
sort each internally, write them back as sorted runs; (2) *merging* — merge
up to ``fan_in`` runs at a time, where ``fan_in`` is limited by internal
memory (one striped prefetch window per input run plus one output buffer),
until a single run remains.

I/O cost is ``2 * (blocks/D)`` per pass over the data and the number of
passes is ``1 + ceil(log_fan_in(#runs))`` — the textbook
``Theta((n/DB) log_{M/B}(n/B))`` (see :mod:`repro.extsort.analysis`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.extsort.array import ExternalRecordArray
from repro.pdm.iostats import OpCost
from repro.pdm.machine import AbstractDiskMachine


@dataclass
class SortReport:
    """What a sort did and what it cost."""

    records: int
    runs_formed: int
    merge_passes: int
    fan_in: int
    cost: OpCost

    @property
    def total_ios(self) -> int:
        return self.cost.total_ios


def external_merge_sort(
    machine: AbstractDiskMachine,
    array: ExternalRecordArray,
    *,
    key: Optional[Callable[[Any], Any]] = None,
    memory_records: Optional[int] = None,
) -> tuple[ExternalRecordArray, SortReport]:
    """Sort ``array`` into a new :class:`ExternalRecordArray`.

    ``memory_records`` is the internal-memory working set ``M`` in records;
    the default is ``4 * D`` blocks' worth — a small constant multiple of the
    striping width, as the paper's "internal memory has capacity to hold
    O(log n) keys" regime suggests.
    """
    D = machine.num_disks
    rpb = array.records_per_block
    if memory_records is None:
        memory_records = 4 * D * rpb
    if memory_records < 2 * rpb:
        raise ValueError(
            f"memory_records={memory_records} below the 2-block minimum "
            f"({2 * rpb} records)"
        )
    snap = machine.stats.snapshot()
    array.flush()

    # -- run formation ------------------------------------------------------
    runs: List[ExternalRecordArray] = []
    chunk: List[Any] = []

    def emit_run(records: List[Any]) -> None:
        records.sort(key=key)
        run = ExternalRecordArray(
            machine, record_bits=array.record_bits, name=f"{array.name}.run"
        )
        run.extend(records)
        run.flush()
        run.release_buffer()
        runs.append(run)

    machine.memory.charge(memory_records)
    try:
        for record in array.scan():
            chunk.append(record)
            if len(chunk) == memory_records:
                emit_run(chunk)
                chunk = []
        if chunk:
            emit_run(chunk)
    finally:
        machine.memory.release(memory_records)
    runs_formed = len(runs)

    # -- merge passes ------------------------------------------------------------
    # Each open input run streams through a D-block prefetch window; with an
    # output buffer that bounds fan_in by M / (D * rpb) - 1.
    fan_in = max(2, memory_records // (D * rpb) - 1)
    passes = 0
    while len(runs) > 1:
        passes += 1
        next_runs: List[ExternalRecordArray] = []
        for start in range(0, len(runs), fan_in):
            group = runs[start : start + fan_in]
            if len(group) == 1:
                next_runs.append(group[0])
                continue
            merged = ExternalRecordArray(
                machine,
                record_bits=array.record_bits,
                name=f"{array.name}.merge",
            )
            streams = [run.scan() for run in group]
            merged.extend(heapq.merge(*streams, key=key))
            merged.flush()
            merged.release_buffer()
            next_runs.append(merged)
        runs = next_runs

    if runs:
        result = runs[0]
    else:  # empty input
        result = ExternalRecordArray(
            machine, record_bits=array.record_bits, name=f"{array.name}.sorted"
        )
        result.release_buffer()

    report = SortReport(
        records=len(result),
        runs_formed=runs_formed,
        merge_passes=passes,
        fan_in=fan_in,
        cost=machine.stats.since(snap),
    )
    return result, report
