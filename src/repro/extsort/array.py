"""Striped external record arrays.

An :class:`ExternalRecordArray` is a sequence of fixed-size records laid out
in logical blocks striped round-robin over all disks of a machine, the
standard PDM layout: a sequential scan or append of ``m`` blocks costs
``ceil(m / D)`` parallel I/Os.

Appends are buffered through a single in-memory output block (charged to the
machine's internal-memory accountant); :meth:`flush` spills it.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from repro.pdm.machine import AbstractDiskMachine


class ExternalRecordArray:
    """A growable striped array of fixed-size records on disk."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        record_bits: int,
        name: str = "array",
    ):
        if record_bits <= 0:
            raise ValueError(f"record size must be positive, got {record_bits}")
        if record_bits > machine.block_bits:
            raise ValueError(
                f"a {record_bits}-bit record does not fit in a "
                f"{machine.block_bits}-bit block"
            )
        self.machine = machine
        self.record_bits = record_bits
        self.name = name
        self.records_per_block = machine.block_bits // record_bits
        self._block_addrs: List[Tuple[int, int]] = []
        self._full_records = 0  # records already on disk
        self._buffer: List[Any] = []  # pending output block
        machine.memory.charge(self.records_per_block)  # the output buffer

    # -- geometry -----------------------------------------------------------

    def __len__(self) -> int:
        return self._full_records + len(self._buffer)

    @property
    def blocks_on_disk(self) -> int:
        return len(self._block_addrs)

    def _new_block_addr(self) -> Tuple[int, int]:
        disk = len(self._block_addrs) % self.machine.num_disks
        return (disk, self.machine.allocate(disk, 1))

    # -- writing ----------------------------------------------------------------

    def append(self, record: Any) -> None:
        self._buffer.append(record)
        if len(self._buffer) == self.records_per_block:
            self._spill([list(self._buffer)])
            self._buffer.clear()

    def extend(self, records: Iterable[Any]) -> None:
        pending: List[List[Any]] = []
        for record in records:
            self._buffer.append(record)
            if len(self._buffer) == self.records_per_block:
                pending.append(list(self._buffer))
                self._buffer.clear()
                # Spill in machine-width batches so rounds amortise.
                if len(pending) == self.machine.num_disks:
                    self._spill(pending)
                    pending = []
        if pending:
            self._spill(pending)

    def flush(self) -> None:
        """Spill the partial output buffer (if any) as a final short block."""
        if self._buffer:
            self._spill([list(self._buffer)])
            self._buffer.clear()

    def _spill(self, blocks: List[List[Any]]) -> None:
        writes = []
        for records in blocks:
            addr = self._new_block_addr()
            self._block_addrs.append(addr)
            writes.append((addr, records, len(records) * self.record_bits))
            self._full_records += len(records)
        self.machine.write_blocks(writes)

    # -- reading -----------------------------------------------------------------

    def scan(self) -> Iterator[Any]:
        """Stream all records in order.

        Blocks are fetched in rounds of ``D`` (striped prefetch, the PDM
        idiom), so a full scan of ``m`` blocks costs ``ceil(m / D)`` parallel
        I/Os.  Records still in the output buffer are yielded last without
        I/O (they are in memory).
        """
        D = self.machine.num_disks
        addrs = list(self._block_addrs)
        for start in range(0, len(addrs), D):
            batch = addrs[start : start + D]
            blocks = self.machine.read_blocks(batch)
            for addr in batch:
                payload = blocks[addr].payload
                if payload:
                    yield from payload
        yield from list(self._buffer)

    def read_all(self) -> List[Any]:
        return list(self.scan())

    def release_buffer(self) -> None:
        """Return the output buffer's internal memory (array is finished)."""
        self.machine.memory.release(self.records_per_block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExternalRecordArray({self.name!r}, n={len(self)}, "
            f"blocks={self.blocks_on_disk})"
        )
