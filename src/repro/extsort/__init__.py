"""External-memory sorting on the parallel disk model.

Theorem 6's construction runs "in time proportional to the time it takes to
sort ``nd`` records"; this package provides that substrate:

* :class:`~repro.extsort.array.ExternalRecordArray` — a striped sequence of
  fixed-size records on the machine's disks, with sequential scans and
  appends charged at ``ceil(blocks / D)`` parallel I/Os per round.
* :func:`~repro.extsort.mergesort.external_merge_sort` — run formation plus
  multiway merging with honest buffer accounting (one block per input run
  and one output block must fit in internal memory).
* :mod:`~repro.extsort.analysis` — the textbook I/O bounds
  ``sort(n) = Theta((n / DB) log_{M/B}(n / B))`` for comparison in tests and
  benchmarks.
"""

from repro.extsort.array import ExternalRecordArray
from repro.extsort.mergesort import external_merge_sort, SortReport
from repro.extsort.analysis import scan_ios, sort_ios_bound

__all__ = [
    "ExternalRecordArray",
    "external_merge_sort",
    "SortReport",
    "scan_ios",
    "sort_ios_bound",
]
