"""Closed-form I/O bounds for scans and sorts on the PDM.

Used by tests and benchmarks to compare measured costs against the textbook
formulas (Aggarwal–Vitter / Vitter–Shriver):

* ``scan(n) = ceil(n / (D * B_rec))`` parallel I/Os,
* ``sort(n) = Theta((n / (D * B_rec)) * log_{M/B}(n / B_rec))``.
"""

from __future__ import annotations

import math


def scan_ios(n_records: int, records_per_block: int, num_disks: int) -> int:
    """Parallel I/Os to stream ``n_records`` once (one direction)."""
    if n_records < 0 or records_per_block <= 0 or num_disks <= 0:
        raise ValueError("arguments must be positive (records may be 0)")
    blocks = math.ceil(n_records / records_per_block)
    return math.ceil(blocks / num_disks)


def merge_passes(
    n_records: int, memory_records: int, fan_in: int
) -> int:
    """Number of merge passes after run formation."""
    if n_records <= memory_records:
        return 0
    runs = math.ceil(n_records / memory_records)
    return max(1, math.ceil(math.log(runs, fan_in)))


def sort_ios_bound(
    n_records: int,
    records_per_block: int,
    num_disks: int,
    memory_records: int,
    *,
    fan_in: int | None = None,
) -> int:
    """Upper bound on mergesort I/Os: ``2 * scan`` per pass, with
    ``1 + merge_passes`` passes (run formation reads and writes once)."""
    if fan_in is None:
        fan_in = max(2, memory_records // (num_disks * records_per_block) - 1)
    passes = 1 + merge_passes(n_records, memory_records, fan_in)
    one_way = scan_ios(n_records, records_per_block, num_disks)
    # Each pass reads and writes the data; short final blocks can add one
    # round per pass on each side.
    return passes * (2 * one_way + 2)
