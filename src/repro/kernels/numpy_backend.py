"""Vectorized numpy backend for the batch kernels.

Same interface, same bit-exact results as :class:`~repro.kernels.base.
PythonKernel` — splitmix64 is pure mod-2^64 arithmetic, so numpy's
wrapping ``uint64`` ops reproduce it exactly; the property suite in
``tests/kernels`` asserts element-for-element equality against the
reference on every op.

Where vectorization cannot be exact the backend *falls back to the
reference loop* rather than approximate: polynomial hashing only
vectorizes when the modulus ``p`` fits 32 bits (so ``acc * x + a`` fits
``uint64`` without overflow past the modulus), and neighborhood maps only
when the mix inputs fit ``uint64`` (they always do for in-range keys —
the wrap is congruent mod 2^64 either way — but Python-int inputs
beyond 64 bits reject conversion, and those take the loop).
"""

from __future__ import annotations

from array import array
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.kernels.base import Addr, Kernel, PythonKernel

_U64 = np.uint64
_MASK64 = (1 << 64) - 1

#: Pad value for column-store rows.  Never equal to a stored or queried
#: key: the batch fast path requires keys ≤ 2**64 - 2 (the dictionary
#: gates on ``universe_size``).
_SENTINEL = _U64(0xFFFFFFFFFFFFFFFF)

_C_GAMMA = _U64(0x9E3779B97F4A7C15)
_C_MIX1 = _U64(0xBF58476D1CE4E5B9)
_C_MIX2 = _U64(0x94D049BB133111EB)
_C_DERIVE = _U64(0xA0761D6478BD642F)
_S30 = _U64(30)
_S27 = _U64(27)
_S31 = _U64(31)


def splitmix64_array(z: "np.ndarray") -> "np.ndarray":
    """:func:`repro.bits.mix.splitmix64` over a ``uint64`` array (wrapping
    uint64 arithmetic is exactly the scalar's mod-2^64 masking)."""
    z = z + _C_GAMMA
    z = (z ^ (z >> _S30)) * _C_MIX1
    z = (z ^ (z >> _S27)) * _C_MIX2
    return z ^ (z >> _S31)


class _MatrixColumnStore:
    """Sentinel-padded fixed-width key matrix; one row per stored bucket
    column, grown geometrically, rows write-once."""

    __slots__ = ("width", "matrix", "rows")

    def __init__(self, width: int) -> None:
        self.width = max(width, 1)
        self.matrix = np.full((256, self.width), _SENTINEL, dtype=np.uint64)
        self.rows = 0


class NumpyKernel(Kernel):
    """Flat-array kernels over ``numpy.uint64`` lanes."""

    name = "numpy"

    def __init__(self) -> None:
        self._ref = PythonKernel()

    def splitmix_fill(self, start: int, count: int) -> array:
        z = _U64(start & _MASK64) + np.arange(count, dtype=np.uint64)
        out = array("Q")
        out.frombytes(splitmix64_array(z).tobytes())
        return out

    def derive_pairs(self, seed: int, pairs: Sequence[Addr]) -> List[int]:
        n = len(pairs)
        if not n:
            return []
        from repro.bits.mix import splitmix64

        acc0 = _U64(splitmix64(seed & _MASK64))
        a = np.fromiter((p[0] for p in pairs), dtype=np.uint64, count=n)
        b = np.fromiter((p[1] for p in pairs), dtype=np.uint64, count=n)
        acc = splitmix64_array((acc0 ^ a) + _C_DERIVE)
        acc = splitmix64_array((acc ^ b) + _C_DERIVE)
        return acc.tolist()

    def _neighbor_mix(
        self, base: int, degree: int, keys: Sequence[int]
    ) -> "np.ndarray | None":
        """The flat ``splitmix64(base + x*degree + i)`` grid, or ``None``
        when the inputs do not fit the vector lanes (caller falls back)."""
        try:
            k = np.asarray(keys, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            return None
        z = (
            k * _U64(degree)
        )[:, None] + np.arange(degree, dtype=np.uint64)[None, :]
        z = z + _U64(base & _MASK64)
        return splitmix64_array(z.ravel())

    def stripe_local_indices(
        self, base: int, degree: int, stripe_size: int, keys: Sequence[int]
    ) -> array:
        mixed = self._neighbor_mix(base, degree, keys)
        if mixed is None or stripe_size > 0xFFFFFFFF:
            return self._ref.stripe_local_indices(
                base, degree, stripe_size, keys
            )
        out = array("I")
        out.frombytes((mixed % _U64(stripe_size)).astype(np.uint32).tobytes())
        return out

    def flat_neighbors(
        self, base: int, degree: int, right_size: int, keys: Sequence[int]
    ) -> array:
        mixed = self._neighbor_mix(base, degree, keys)
        if mixed is None:
            return self._ref.flat_neighbors(base, degree, right_size, keys)
        out = array("Q")
        out.frombytes((mixed % _U64(right_size)).tobytes())
        return out

    def poly_hash(
        self, coeffs: Sequence[int], p: int, range_size: int,
        keys: Sequence[int],
    ) -> List[int]:
        # Exactness bound: with p < 2^32 every Horner step's acc*x + a
        # (both operands already reduced mod p) stays below 2^64.
        if p > 0xFFFFFFFF:
            return self._ref.poly_hash(coeffs, p, range_size, keys)
        try:
            x = np.asarray(keys, dtype=np.uint64) % _U64(p)
        except (OverflowError, TypeError, ValueError):
            return self._ref.poly_hash(coeffs, p, range_size, keys)
        acc = np.zeros(len(x), dtype=np.uint64)
        pp = _U64(p)
        for a in reversed(coeffs):
            acc = (acc * x + _U64(a)) % pp
        return (acc % _U64(range_size)).tolist()

    def plan_unique_probe(
        self,
        locals_flat: Sequence[int],
        stripes: int,
        bases: Sequence[int],
        disk_offset: int,
    ) -> Tuple[List[Addr], int, Any]:
        n = len(locals_flat)
        if not n:
            return [], 0, np.empty(0, dtype=np.int64)
        if isinstance(locals_flat, array):
            loc = np.frombuffer(locals_flat, dtype=np.uint32).astype(
                np.uint64
            )
        else:
            loc = np.asarray(locals_flat, dtype=np.uint64)
        stripe = np.tile(np.arange(stripes, dtype=np.uint64), n // stripes)
        blocks = np.asarray(bases, dtype=np.uint64)[stripe] + loc
        if int(blocks.max()) > 0xFFFFFFFF:  # packed-addr lanes overflow
            return self._ref.plan_unique_probe(
                locals_flat, stripes, bases, disk_offset
            )
        packed = ((stripe + _U64(disk_offset)) << _U64(32)) | blocks
        uniq, first, inv_sorted = np.unique(
            packed, return_index=True, return_inverse=True
        )
        # Remap np.unique's value-sorted indices onto first-appearance
        # order (== the scalar path's dict.fromkeys dedup order).
        s = np.argsort(first)
        rank = np.empty(len(s), dtype=np.int64)
        rank[s] = np.arange(len(s), dtype=np.int64)
        inverse = rank[inv_sorted.ravel()]
        sel = packed[first[s]]
        disks = (sel >> _U64(32)).tolist()
        blks = (sel & _U64(0xFFFFFFFF)).tolist()
        max_per_disk = int(
            np.bincount((uniq >> _U64(32)).astype(np.int64)).max()
        )
        return list(zip(disks, blks)), max_per_disk, inverse

    def new_column_store(self, width: int) -> Any:
        return _MatrixColumnStore(width)

    def store_column(self, store: Any, payload: Any) -> int:
        row = store.rows
        matrix = store.matrix
        if row == matrix.shape[0]:
            grown = np.full(
                (matrix.shape[0] * 2, store.width), _SENTINEL,
                dtype=np.uint64,
            )
            grown[:row] = matrix
            store.matrix = matrix = grown
        n = len(payload) if payload else 0
        if n:
            matrix[row, :n] = np.fromiter(
                (item[0] for item in payload), dtype=np.uint64, count=n
            )
        store.rows = row + 1
        return row

    def match_candidates(
        self,
        store: Any,
        rows: Sequence[int],
        inverse: Any,
        queries: Sequence[int],
    ) -> List[Tuple[int, int, int]]:
        nq = len(queries)
        if not nq or not len(inverse):
            return []
        if isinstance(inverse, np.ndarray):
            inv = inverse
        else:  # a reference-backend plan (packed-addr fallback)
            inv = np.fromiter(inverse, dtype=np.int64, count=len(inverse))
        degree = len(inv) // nq
        row_arr = np.fromiter(rows, dtype=np.int64, count=len(rows))
        q = np.fromiter(queries, dtype=np.uint64, count=nq)
        # One fixed-shape compare of every query against the padded key
        # rows of its own candidate buckets — (nq*degree, width) lanes,
        # no membership scan over the full fetched item set.
        cand = store.matrix[row_arr[inv]]
        eq = cand == np.repeat(q, degree)[:, None]
        pos, slot = np.nonzero(eq)
        if not pos.size:
            return []
        return list(
            zip((pos // degree).tolist(), inv[pos].tolist(), slot.tolist())
        )

    def failed_checksums(self, blocks: Sequence[Any]) -> List[int]:
        # Checksums fingerprint arbitrary Python payloads; the batch win is
        # the single pass, not numeric lanes.
        return self._ref.failed_checksums(blocks)


__all__ = ["NumpyKernel", "splitmix64_array"]
