"""The batch-kernel interface and its pure-Python reference backend.

A *kernel* evaluates the per-key arithmetic of the hot path — splitmix64
mixes, expander neighborhoods, polynomial hashes, probe planning, batch
key matching — for a **whole batch at once** over flat arrays, instead of
one Python call per key.  Two hard rules make kernels safe to thread
through the charged stack:

* **Purity** — a kernel never touches storage, machines, caches or any
  other stateful object; it maps value arrays to value arrays.  The
  detlint flow rules (COST101/DET101) verify this stays true.
* **Scalar equivalence** — every op is bit-identical to the scalar
  function it replaces (:func:`repro.bits.mix.splitmix64` /
  :func:`~repro.bits.mix.derive`, ``SeededRandomExpander``'s neighbor
  formula, ``PolynomialHashFamily.__call__``).  The property suite in
  ``tests/kernels`` holds every backend to the reference element for
  element, so swapping backends can never change an answer, a charge or
  a fault.

:class:`PythonKernel` is the reference implementation: plain loops over
``array`` values, dependency-free, always available.  The optional
:mod:`~repro.kernels.numpy_backend` vectorizes the same interface.
"""

from __future__ import annotations

from array import array
from typing import Any, List, Sequence, Tuple

from repro.bits.mix import derive, splitmix64

_MASK64 = (1 << 64) - 1

Addr = Tuple[int, int]


class Kernel:
    """Abstract batch kernel.  All ops are pure functions of their inputs.

    ``stripe_local_indices`` always returns a flat ``array('I')`` with
    ``degree`` entries per key (the ``NeighborhoodMemo`` layout), whatever
    the backend computes with internally — downstream code sees one type.
    """

    name: str = "abstract"

    # -- bulk mixing -------------------------------------------------------

    def splitmix_fill(self, start: int, count: int) -> array:
        """``splitmix64(start + i)`` for ``i in range(count)`` as
        ``array('Q')`` — the counter-mode shape of :class:`MixStream`."""
        raise NotImplementedError

    def derive_pairs(self, seed: int, pairs: Sequence[Addr]) -> List[int]:
        """``derive(seed, a, b)`` for every pair — the round-packing
        priority stream of :func:`repro.pdm.machine.pack_rounds`."""
        raise NotImplementedError

    # -- expander neighborhoods -------------------------------------------

    def stripe_local_indices(
        self, base: int, degree: int, stripe_size: int, keys: Sequence[int]
    ) -> array:
        """``splitmix64(base + x*degree + i) % stripe_size`` for every key
        ``x`` and stripe ``i`` — ``SeededRandomExpander``'s neighbor map,
        flattened key-major into ``array('I')``."""
        raise NotImplementedError

    def flat_neighbors(
        self, base: int, degree: int, right_size: int, keys: Sequence[int]
    ) -> array:
        """``splitmix64(base + x*degree + i) % right_size`` flattened
        key-major into ``array('Q')`` — ``SeededFlatExpander``'s map."""
        raise NotImplementedError

    # -- hash families -----------------------------------------------------

    def poly_hash(
        self, coeffs: Sequence[int], p: int, range_size: int,
        keys: Sequence[int],
    ) -> List[int]:
        """Horner evaluation of the polynomial mod ``p`` then mod
        ``range_size`` for every key — ``PolynomialHashFamily.__call__``."""
        raise NotImplementedError

    # -- probe planning ----------------------------------------------------

    def plan_unique_probe(
        self,
        locals_flat: Sequence[int],
        stripes: int,
        bases: Sequence[int],
        disk_offset: int,
    ) -> Tuple[List[Addr], int, Any]:
        """Deduplicated single-block bucket addresses for a batch probe.

        ``locals_flat`` holds ``stripes`` local bucket indices per key
        (the ``NeighborhoodMemo`` flat layout); position ``k*stripes + i``
        maps to block ``(disk_offset + i, bases[i] + local)``.  Returns
        ``(unique_addrs, max_per_disk, inverse)`` where ``unique_addrs``
        keeps first-appearance order (identical across backends — it
        equals the scalar path's ``dict.fromkeys`` dedup order),
        ``max_per_disk`` is the PDM round charge of the unique set
        (:meth:`ParallelDiskMachine._batch_rounds`), and ``inverse`` maps
        every flat position back to its index in ``unique_addrs``.
        ``inverse`` is backend-shaped (list or ndarray); treat it as
        opaque and hand it to :meth:`match_candidates`, whose element
        values are nonetheless identical across backends.
        """
        raise NotImplementedError

    # -- batch key matching ------------------------------------------------

    def new_column_store(self, width: int) -> Any:
        """An empty backend-shaped column store for buckets holding up to
        ``width`` items.  A store is a caller-owned value: the kernel
        writes rows into it on request (:meth:`store_column`) and reads
        them back (:meth:`match_candidates`) but keeps no reference —
        kernels stay stateless."""
        raise NotImplementedError

    def store_column(self, store: Any, payload: Any) -> int:
        """Append the key column of one bucket payload (a list of
        ``(key, t, fragment)`` items, possibly ``None``) to ``store``;
        returns the row handle.  Rows are immutable once written — cache
        the handle for as long as the payload is unchanged."""
        raise NotImplementedError

    def match_candidates(
        self,
        store: Any,
        rows: Sequence[int],
        inverse: Any,
        queries: Sequence[int],
    ) -> List[Tuple[int, int, int]]:
        """Occurrences of each query key across its own candidate columns.

        ``rows[u]`` is the store row of the ``u``-th unique bucket of a
        probe plan and ``inverse`` is that plan's flat map (so query
        ``qi``'s candidates are ``inverse[qi*degree : (qi+1)*degree]``;
        ``degree`` is inferred as ``len(inverse) // len(queries)``).
        Returns ``(query_index, unique_index, slot)`` triples ordered by
        flat position then slot.  ``queries`` must be distinct, and one
        query's ``degree`` candidate columns must be distinct (the striped
        layout guarantees both).
        """
        raise NotImplementedError

    # -- checksum verification --------------------------------------------

    def failed_checksums(self, blocks: Sequence[Any]) -> List[int]:
        """Indices of blocks whose sealed checksum no longer matches
        (:meth:`repro.pdm.block.Block.verify` batched over the fetch)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class _PyColumnStore:
    """The reference column store: the payload tuples themselves, row =
    list index.  ``width`` is kept only for parity with fixed-width
    backends (it bounds every payload by construction)."""

    __slots__ = ("width", "payloads")

    def __init__(self, width: int) -> None:
        self.width = width
        self.payloads: List[Any] = []


class PythonKernel(Kernel):
    """The dependency-free reference backend: plain loops, exact scalar
    semantics by construction (it calls the very same helpers)."""

    name = "python"

    def splitmix_fill(self, start: int, count: int) -> array:
        start &= _MASK64
        mix = splitmix64
        return array(
            "Q", (mix((start + i) & _MASK64) for i in range(count))
        )

    def derive_pairs(self, seed: int, pairs: Sequence[Addr]) -> List[int]:
        # Hoist derive()'s seed mix: acc0 is shared by every pair.
        mix = splitmix64
        acc0 = mix(seed & _MASK64)
        out = []
        for a, b in pairs:
            acc = mix(((acc0 ^ (a & _MASK64)) + 0xA0761D6478BD642F))
            out.append(mix(((acc ^ (b & _MASK64)) + 0xA0761D6478BD642F)))
        return out

    def stripe_local_indices(
        self, base: int, degree: int, stripe_size: int, keys: Sequence[int]
    ) -> array:
        mix = splitmix64
        out = array("I")
        for x in keys:
            b = base + x * degree
            out.extend(mix(b + i) % stripe_size for i in range(degree))
        return out

    def flat_neighbors(
        self, base: int, degree: int, right_size: int, keys: Sequence[int]
    ) -> array:
        mix = splitmix64
        out = array("Q")
        for x in keys:
            b = base + x * degree
            out.extend(mix(b + i) % right_size for i in range(degree))
        return out

    def poly_hash(
        self, coeffs: Sequence[int], p: int, range_size: int,
        keys: Sequence[int],
    ) -> List[int]:
        rev = tuple(reversed(coeffs))
        out = []
        for x in keys:
            acc = 0
            for a in rev:
                acc = (acc * x + a) % p
            out.append(acc % range_size)
        return out

    def plan_unique_probe(
        self,
        locals_flat: Sequence[int],
        stripes: int,
        bases: Sequence[int],
        disk_offset: int,
    ) -> Tuple[List[Addr], int, Any]:
        unique: List[Addr] = []
        seen: dict = {}
        per_disk: dict = {}
        inverse: List[int] = []
        i = 0
        n = len(locals_flat)
        while i < n:
            for s in range(stripes):
                local = locals_flat[i]
                i += 1
                addr = (disk_offset + s, bases[s] + local)
                idx = seen.get(addr)
                if idx is None:
                    idx = len(unique)
                    seen[addr] = idx
                    unique.append(addr)
                    disk = addr[0]
                    per_disk[disk] = per_disk.get(disk, 0) + 1
                inverse.append(idx)
        return unique, max(per_disk.values(), default=0), inverse

    def new_column_store(self, width: int) -> Any:
        return _PyColumnStore(width)

    def store_column(self, store: Any, payload: Any) -> int:
        row = len(store.payloads)
        store.payloads.append(payload if payload else ())
        return row

    def match_candidates(
        self,
        store: Any,
        rows: Sequence[int],
        inverse: Any,
        queries: Sequence[int],
    ) -> List[Tuple[int, int, int]]:
        payloads = store.payloads
        nq = len(queries)
        degree = len(inverse) // nq if nq else 0
        out = []
        p = 0
        for qi in range(nq):
            key = queries[qi]
            for _ in range(degree):
                ci = inverse[p]
                p += 1
                for slot, item in enumerate(payloads[rows[ci]]):
                    if item[0] == key:
                        out.append((qi, ci, slot))
        return out

    def failed_checksums(self, blocks: Sequence[Any]) -> List[int]:
        return [i for i, blk in enumerate(blocks) if not blk.verify()]


# re-exported for the property tests' convenience
__all__ = ["Addr", "Kernel", "PythonKernel", "derive", "splitmix64"]
