"""Vectorized batch kernels: flat-array evaluation of the per-key hot path.

The PR 5 wall-clock sweep made single lookups fast; the remaining
per-*batch* cost was dominated by Python frames — one expander
evaluation, one hash, one bucket scan per key.  This package computes
those for a whole batch at once over flat ``array``/``numpy`` lanes (the
``NeighborhoodMemo`` flat-``array('I')`` design generalized), with the
charged cost untouched: kernels are pure value-to-value functions, and
every backend is held bit-identical to the scalar reference by the
property suite in ``tests/kernels``.

Backends are selected like the executor registry
(:mod:`repro.pdm.executors`): by name, with the pure-Python
:class:`~repro.kernels.base.PythonKernel` always available as the
reference and :class:`~repro.kernels.numpy_backend.NumpyKernel` loaded
lazily when numpy is importable.  The default is resolved per call from
the ``REPRO_KERNEL`` environment variable (``python`` / ``numpy`` /
``off``) and auto-picks numpy when unset; ``off`` disables the batch
fast paths entirely, which is how the differential suites pin the
scalar behavior.

This package sits beside :mod:`repro.bits` at the bottom of the layer
graph (arch-base): it may be imported from any layer and itself imports
nothing but ``repro.bits``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.kernels.base import Kernel, PythonKernel

KERNEL_NAMES = ("python", "numpy")

#: environment switch consulted by :func:`default_kernel`
KERNEL_ENV = "REPRO_KERNEL"

_instances: Dict[str, Kernel] = {}  # detlint: guarded(owner-lane) -- idempotent memo of stateless singletons


def create_kernel(name: str) -> Kernel:
    """Build a kernel backend by name (``python`` or ``numpy``).

    Raises :class:`ValueError` for unknown names and :class:`ImportError`
    when the numpy backend is requested without numpy installed.
    """
    if name == "python":
        return PythonKernel()
    if name == "numpy":
        from repro.kernels.numpy_backend import NumpyKernel

        return NumpyKernel()
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of {KERNEL_NAMES}"
    )


def _cached(name: str) -> Kernel:
    kern = _instances.get(name)
    if kern is None:
        kern = _instances[name] = create_kernel(name)
    return kern


def default_kernel() -> Optional[Kernel]:
    """The process-default kernel, honoring ``REPRO_KERNEL``.

    ``off``/``none`` → ``None`` (callers fall back to their scalar
    paths); unset/``auto`` → numpy when importable else the reference.
    Kernels are stateless, so instances are shared.
    """
    choice = os.environ.get(KERNEL_ENV, "auto").strip().lower()
    if choice in ("off", "none", "0", "disabled"):
        return None
    if choice in ("auto", ""):
        try:
            return _cached("numpy")
        except ImportError:
            return _cached("python")
    return _cached(choice)


def resolve_kernel(spec: "Optional[str | Kernel]") -> Optional[Kernel]:
    """Normalize a constructor argument into a kernel (or ``None``).

    ``None`` → :func:`default_kernel`; ``"off"`` → ``None``; a name →
    that backend; a :class:`Kernel` instance passes through.
    """
    if spec is None:
        return default_kernel()
    if isinstance(spec, Kernel):
        return spec
    if spec in ("off", "none"):
        return None
    return _cached(spec)


__all__ = [
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "Kernel",
    "PythonKernel",
    "create_kernel",
    "default_kernel",
    "resolve_kernel",
]
