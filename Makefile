# Convenience targets (plain pytest/python underneath; see README).

PYTHON ?= python

.PHONY: install test test-model test-sanitize lint lint-report baseline bench bench-report bench-batch bench-throughput bench-throughput-batched bench-latency bench-recovery bench-executors bench-history chaos coverage examples figure1 profile clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Model-based differential harness only: every dictionary variant driven
# through random op interleavings against a plain-dict oracle.
test-model:
	PYTHONPATH=src $(PYTHON) -m pytest tests/model/ -q

# Coverage with the ratcheted minimum from .coverage-min (requires
# pytest-cov; CI installs it — locally: pip install pytest-cov).
coverage:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ --cov=repro --cov-report=term \
		--cov-fail-under=$$(cat .coverage-min)

# detlint (the in-tree determinism & PDM-discipline linter): per-file rules
# plus the cross-module flow pass (COST1xx/RACE2xx/DET101), with the
# baseline ratchet (the grandfathered-finding file may only shrink).
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src tests benchmarks examples scripts
	$(PYTHON) scripts/check_lint_baseline.py
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks || \
		echo "ruff not installed; skipped (CI runs it)"

# Machine-readable lint report (the CI artifact): full finding list,
# suppression counts, and flow-pass coverage as JSON.
lint-report:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m repro.lint --format json \
		> benchmarks/results/LINT_report.json; \
		status=$$?; cat benchmarks/results/LINT_report.json; exit $$status

baseline:
	PYTHONPATH=src $(PYTHON) -m repro.lint --update-baseline

# Tier-1 under CPython's strictest runtime checks: dev mode (extra memory
# and encoding checks), warnings-as-errors for resource leaks and
# deprecations, and faulthandler for native-crash tracebacks.
test-sanitize:
	PYTHONPATH=src $(PYTHON) -X dev -X faulthandler \
		-W error::DeprecationWarning -W error::ResourceWarning \
		-m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Round-packing payoff: sequential vs batched lookup rounds, written as
# the machine-readable acceptance artefact BENCH_batch.json.
bench-batch:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_batch.py -q --benchmark-disable

# Serving throughput under skew (rounds/op, ops/sec, buffer-pool hit rate),
# written as BENCH_throughput.json and gated >20% against the checked-in
# baseline (benchmarks/baselines/throughput.json).
bench-throughput:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_throughput.py -q --benchmark-disable
	$(PYTHON) scripts/check_throughput_regression.py \
		benchmarks/results/BENCH_throughput.json \
		benchmarks/baselines/throughput.json

# Vectorized batch kernel path only (-k batched): in-run >=3x speedup
# over the sequential baseline at bit-identical charged rounds (both
# asserted inside the benchmark), merged into BENCH_throughput.json and
# re-checked by the regression gate's absolute batched gates.  Run after
# bench-throughput when you want both sections: the skew test rewrites
# the artifact whole, the batched test merges into it.
bench-throughput-batched:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_throughput.py -q --benchmark-disable -k batched
	$(PYTHON) scripts/check_throughput_regression.py \
		benchmarks/results/BENCH_throughput.json \
		benchmarks/baselines/throughput.json

# Wall-clock latency percentiles per op class/layer, per-disk utilization,
# and the always-on tracker's self-measured overhead, written as
# BENCH_latency.json and gated <=5% by scripts/check_obs_overhead.py.
bench-latency:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_latency.py -q --benchmark-disable
	$(PYTHON) scripts/check_obs_overhead.py benchmarks/results/BENCH_latency.json

# Self-healing under rolling failures: time-to-heal, degraded-read
# fraction, and foreground p99 impact per structure (BENCH_recovery.json,
# merged into the bench trajectory by bench-history).
bench-recovery:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_fault_recovery.py -q --benchmark-disable

# Executor scaling: wall-clock round time per backend (simulated /
# file / file workers=1 / process pool) with identical charged rounds
# asserted, and the file backend's parallel-over-sequential speedup
# gated >= 2x at D=8 (BENCH_executors.json, merged by bench-history).
bench-executors:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_executors.py -q --benchmark-disable

# Merge every BENCH_*.json under benchmarks/results into the committed
# bench trajectory (benchmarks/results/trajectory.json) with per-metric
# regression attribution.  LABEL names the entry (default: local).
bench-history:
	PYTHONPATH=src $(PYTHON) -m repro.obs.history \
		--label $(or $(LABEL),local) \
		--seed-baseline benchmarks/baselines/throughput.json

# Instrumented smoke run: spans + metrics + theorem-bound monitors over both
# dictionaries, written as a machine-readable report (and a Perfetto trace).
bench-report:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m repro.obs --structure both \
		--operations 512 --capacity 512 --quiet \
		--json benchmarks/results/BENCH_smoke.json \
		--chrome-trace benchmarks/results/BENCH_smoke_trace.json

# Deterministic chaos run: seeded fault plan against all three dictionaries,
# verified against a model — exit 1 on any silent wrong answer.
chaos:
	mkdir -p benchmarks/results
	PYTHONPATH=src $(PYTHON) -m repro.faults --structure all \
		--operations 256 --capacity 128 --quiet \
		--json benchmarks/results/BENCH_chaos.json

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

figure1:
	$(PYTHON) -m repro

# cProfile over an instrumented replay: pstats dump + top-20 table.
profile:
	PYTHONPATH=src $(PYTHON) -m repro.obs --structure basic \
		--operations 1024 --capacity 512 --quiet --profile
	$(PYTHON) scripts/profile_simulation.py

# benchmarks/results is cleared file-by-file: trajectory.json is the
# committed cross-PR bench trajectory and must survive a clean.
clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find benchmarks/results -type f ! -name trajectory.json -delete 2>/dev/null || true
	find . -name __pycache__ -type d -exec rm -rf {} +
