"""Unit and property tests for BitVector / BitReader."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.bitvector import BitReader, BitVector

bits_lists = st.lists(st.integers(0, 1), max_size=64)


class TestConstruction:
    def test_from_string(self):
        v = BitVector("1011")
        assert len(v) == 4
        assert v.to01() == "1011"

    def test_from_iterable(self):
        assert BitVector([1, 0, 1]).to01() == "101"

    def test_empty(self):
        v = BitVector()
        assert len(v) == 0
        assert v.to01() == ""

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            BitVector("10x")

    def test_invalid_bit_value(self):
        with pytest.raises(ValueError):
            BitVector([2])

    def test_from_int(self):
        assert BitVector.from_int(5, 4).to01() == "0101"

    def test_from_int_overflow(self):
        with pytest.raises(ValueError):
            BitVector.from_int(16, 4)

    def test_from_int_negative(self):
        with pytest.raises(ValueError):
            BitVector.from_int(-1, 4)

    def test_zeros_ones(self):
        assert BitVector.zeros(3).to01() == "000"
        assert BitVector.ones(3).to01() == "111"


class TestAccess:
    def test_indexing_is_msb_first(self):
        v = BitVector("100")
        assert v[0] == 1 and v[1] == 0 and v[2] == 0

    def test_negative_index(self):
        assert BitVector("101")[-1] == 1

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector("1")[1]

    def test_slice(self):
        assert BitVector("110101")[2:5].to01() == "010"

    def test_slice_beyond_end_clamps(self):
        assert BitVector("11")[0:10].to01() == "11"

    def test_empty_slice(self):
        assert len(BitVector("11")[1:1]) == 0

    def test_step_slices_rejected(self):
        with pytest.raises(ValueError):
            BitVector("1010")[::2]

    def test_iteration(self):
        assert list(BitVector("1101")) == [1, 1, 0, 1]


class TestOperations:
    def test_concatenation(self):
        assert (BitVector("10") + BitVector("01")).to01() == "1001"

    def test_pad_to(self):
        assert BitVector("11").pad_to(5).to01() == "11000"

    def test_pad_shorter_rejected(self):
        with pytest.raises(ValueError):
            BitVector("111").pad_to(2)

    def test_equality_includes_length(self):
        assert BitVector("01") != BitVector("1")
        assert BitVector("01") == BitVector([0, 1])

    def test_hashable(self):
        assert len({BitVector("1"), BitVector("1"), BitVector("0")}) == 2


@given(bits_lists)
def test_roundtrip_through_string(bits):
    v = BitVector(bits)
    assert BitVector(v.to01()) == v


@given(st.integers(0, 2**63 - 1))
def test_int_roundtrip(value):
    assert BitVector.from_int(value, 64).to_int() == value


@given(bits_lists, bits_lists)
def test_concat_lengths_and_content(a, b):
    v = BitVector(a) + BitVector(b)
    assert len(v) == len(a) + len(b)
    assert list(v) == a + b


@given(bits_lists, st.data())
def test_slice_matches_list_semantics(bits, data):
    v = BitVector(bits)
    start = data.draw(st.integers(0, len(bits)))
    stop = data.draw(st.integers(start, len(bits)))
    assert list(v[start:stop]) == bits[start:stop]


class TestBitReader:
    def test_sequential_reads(self):
        r = BitReader(BitVector("110100"))
        assert r.read_bit() == 1
        assert r.read(3).to01() == "101"
        assert r.read_rest().to01() == "00"
        assert r.remaining == 0

    def test_read_int(self):
        r = BitReader(BitVector("0101"))
        assert r.read_int(4) == 5

    def test_read_past_end(self):
        r = BitReader(BitVector("1"))
        with pytest.raises(EOFError):
            r.read(2)

    def test_read_bit_past_end(self):
        r = BitReader(BitVector())
        with pytest.raises(EOFError):
            r.read_bit()

    def test_negative_read_rejected(self):
        r = BitReader(BitVector("1"))
        with pytest.raises(ValueError):
            r.read(-1)
