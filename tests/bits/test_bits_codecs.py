"""Unit and property tests for the unary code and the field-chain codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.bitvector import BitReader, BitVector
from repro.bits.fields import (
    ChainCapacityError,
    chain_capacity_bits,
    decode_chain,
    encode_chain,
    required_field_bits,
)
from repro.bits.unary import decode_unary, encode_unary


class TestUnary:
    def test_zero_is_single_zero_bit(self):
        assert encode_unary(0).to01() == "0"

    def test_three(self):
        assert encode_unary(3).to01() == "1110"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_unary(-1)

    @given(st.integers(0, 200))
    def test_roundtrip(self, n):
        assert decode_unary(BitReader(encode_unary(n))) == n

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=10))
    def test_stream_of_codewords(self, values):
        stream = BitVector()
        for v in values:
            stream = stream + encode_unary(v)
        reader = BitReader(stream)
        assert [decode_unary(reader) for _ in values] == values


class TestChainCapacity:
    def test_single_field(self):
        # One field: only the tail's 0-bit is overhead.
        assert chain_capacity_bits([3], 10) == 9

    def test_two_adjacent_fields(self):
        # Delta 1 costs 2 bits (one 1, one 0), tail costs 1.
        assert chain_capacity_bits([3, 4], 10) == 20 - 2 - 1

    def test_gap_costs_more(self):
        assert chain_capacity_bits([0, 5], 10) < chain_capacity_bits(
            [0, 1], 10
        )

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            chain_capacity_bits([4, 4], 10)

    def test_empty_chain(self):
        assert chain_capacity_bits([], 10) == 0


class TestRequiredFieldBits:
    def test_covers_paper_formula_for_large_sigma(self):
        """For sigma >> d the paper's ceil(3 sigma / 2d) + 4 dominates."""
        d, sigma = 30, 4000
        m = -(-2 * d // 3)
        assert required_field_bits(sigma, m, d) <= -(-3 * sigma // (2 * d)) + 4

    def test_per_field_floor_for_tiny_sigma(self):
        # The largest unary header must fit in one field.
        d, m = 30, 20
        assert required_field_bits(1, m, d) >= (d - m + 1) + 1

    def test_zero_fields_rejected(self):
        with pytest.raises(ValueError):
            required_field_bits(10, 0, 5)


chains = st.integers(4, 24).flatmap(
    lambda d: st.tuples(
        st.just(d),
        st.lists(
            st.integers(0, d - 1), unique=True, min_size=1, max_size=d
        ).map(sorted),
    )
)


class TestChainCodec:
    def test_simple_roundtrip(self):
        record = BitVector.from_int(0b1011_0011_1101, 12)
        fields = encode_chain(record, [0, 2, 3], 8)
        assert set(fields) == {0, 2, 3}
        assert all(len(f) == 8 for f in fields.values())
        out = decode_chain(fields, 0, 8, 12, 8)
        assert out == record

    def test_capacity_error(self):
        with pytest.raises(ChainCapacityError):
            encode_chain(BitVector.ones(100), [0, 1], 8)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            encode_chain(BitVector("1"), [], 8)

    def test_decode_missing_field_fails(self):
        record = BitVector.from_int(5, 4)
        fields = encode_chain(record, [0, 2], 8)
        del fields[2]
        with pytest.raises((KeyError, ChainCapacityError)):
            decode_chain(fields, 0, 8, 4, 8)

    def test_decode_walk_beyond_stripes_fails(self):
        # A corrupted header pointing past the last stripe must be caught.
        fields = {0: BitVector("11110000")}  # delta 4 from stripe 0
        with pytest.raises((KeyError, ChainCapacityError)):
            decode_chain(fields, 0, 8, 4, 3)

    def test_decoding_ignores_unrelated_fields(self):
        """Fields of other keys sitting between chain hops are skipped."""
        record = BitVector.from_int(0b10110, 5)
        fields = encode_chain(record, [1, 4], 8)
        fields[2] = BitVector.ones(8)  # unrelated garbage
        fields[3] = BitVector.zeros(8)
        assert decode_chain(fields, 1, 8, 5, 8) == record

    @settings(max_examples=80, deadline=None)
    @given(chains, st.data())
    def test_roundtrip_property(self, chain, data):
        d, stripes = chain
        m = len(stripes)
        field_bits = required_field_bits(
            data.draw(st.integers(0, 64)), m, d
        )
        capacity = chain_capacity_bits(stripes, field_bits)
        sigma = data.draw(st.integers(0, capacity))
        record = BitVector(
            data.draw(
                st.lists(
                    st.integers(0, 1), min_size=sigma, max_size=sigma
                )
            )
        )
        fields = encode_chain(record, stripes, field_bits)
        out = decode_chain(fields, stripes[0], field_bits, sigma, d)
        assert out == record
