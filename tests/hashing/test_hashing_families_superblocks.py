"""Tests for hash families and superblock storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.families import PolynomialHashFamily, _next_prime
from repro.hashing.superblocks import SuperblockArray
from repro.pdm.machine import ParallelDiskMachine


class TestNextPrime:
    def test_small_values(self):
        assert _next_prime(2) == 2
        assert _next_prime(8) == 11
        assert _next_prime(13) == 13
        assert _next_prime(14) == 17

    @given(st.integers(2, 10_000))
    def test_result_is_prime_and_geq(self, n):
        p = _next_prime(n)
        assert p >= n
        assert all(p % f for f in range(2, int(p**0.5) + 1))


class TestPolynomialHashFamily:
    def test_range(self):
        h = PolynomialHashFamily(
            universe_size=1 << 16, range_size=100, independence=4, seed=1
        )
        assert all(0 <= h(x) < 100 for x in range(0, 1 << 16, 997))

    def test_deterministic(self):
        mk = lambda: PolynomialHashFamily(
            universe_size=1000, range_size=50, seed=9
        )
        a, b = mk(), mk()
        assert all(a(x) == b(x) for x in range(1000))

    def test_rehash_differs(self):
        h = PolynomialHashFamily(universe_size=1000, range_size=50, seed=9)
        h2 = h.rehashed(1)
        assert any(h(x) != h2(x) for x in range(1000))

    def test_with_range(self):
        h = PolynomialHashFamily(universe_size=1000, range_size=50, seed=9)
        h2 = h.with_range(10)
        assert h2.coeffs == h.coeffs
        assert all(0 <= h2(x) < 10 for x in range(100))

    def test_description_words(self):
        h = PolynomialHashFamily(
            universe_size=1000, range_size=50, independence=8, seed=0
        )
        assert h.description_words == 9

    def test_spread(self):
        """Hash values spread over the range (no constant function)."""
        h = PolynomialHashFamily(
            universe_size=1 << 16, range_size=64, independence=8, seed=3
        )
        buckets = {h(x) for x in range(1000)}
        assert len(buckets) > 32

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialHashFamily(universe_size=0, range_size=10)
        with pytest.raises(ValueError):
            PolynomialHashFamily(
                universe_size=10, range_size=10, independence=1
            )


class TestSuperblockArray:
    @pytest.fixture
    def arr(self, machine):
        return SuperblockArray(machine, num_superblocks=10)

    def test_capacity(self, arr, machine):
        assert arr.capacity_items == machine.D * machine.B

    def test_read_write_roundtrip(self, arr):
        items = [(i, str(i)) for i in range(30)]
        arr.write({3: items})
        assert arr.read([3])[3] == items

    def test_superblock_read_is_one_io(self, arr, machine):
        snap = machine.stats.snapshot()
        arr.read([5])
        assert machine.stats.since(snap).read_ios == 1

    def test_two_superblocks_two_ios(self, arr, machine):
        snap = machine.stats.snapshot()
        arr.read([1, 2])
        assert machine.stats.since(snap).read_ios == 2

    def test_overflow_rejected(self, arr):
        with pytest.raises(OverflowError):
            arr.write({0: list(range(arr.capacity_items + 1))})

    def test_out_of_range(self, arr):
        with pytest.raises(IndexError):
            arr.read([10])

    def test_occupancy_audit(self, arr, machine):
        arr.write({0: [1], 7: [1, 2]})
        snap = machine.stats.snapshot()
        assert arr.occupancy() == {0: 1, 7: 2}
        assert machine.stats.since(snap).total_ios == 0

    def test_disjoint_width_groups(self, machine):
        a = SuperblockArray(machine, num_superblocks=4, width=4)
        b = SuperblockArray(
            machine, num_superblocks=4, width=4, disk_offset=4
        )
        a.write({0: ["a"]})
        b.write({0: ["b"]})
        assert a.read([0])[0] == ["a"]
        assert b.read([0])[0] == ["b"]

    def test_half_width_halves_capacity(self, machine):
        full = SuperblockArray(machine, num_superblocks=2)
        half = SuperblockArray(machine, num_superblocks=2, width=4)
        assert half.capacity_items == full.capacity_items // 2
