"""Tests for the four hashing baselines: correctness, I/O shape, and the
worst-case behaviours Figure 1 holds against them."""

import random

import pytest

from repro.core.interface import CapacityExceeded
from repro.hashing import (
    CuckooDictionary,
    DGMPDictionary,
    FolkloreDictionary,
    StripedHashTable,
)
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.keys import adversarial_keys_for_hash

U = 1 << 18

ALL = [StripedHashTable, CuckooDictionary, DGMPDictionary, FolkloreDictionary]


def make(cls, capacity=400, seed=5, disks=16, block=32, **kw):
    machine = ParallelDiskMachine(disks, block, item_bits=64)
    return cls(
        machine, universe_size=U, capacity=capacity, seed=seed, **kw
    )


@pytest.mark.parametrize("cls", ALL)
class TestCommonBehaviour:
    def test_roundtrip(self, cls):
        d = make(cls)
        rng = random.Random(1)
        ref = {}
        while len(ref) < 300:
            k, v = rng.randrange(U), rng.randrange(1000)
            d.insert(k, v)
            ref[k] = v
        assert all(d.lookup(k).value == v for k, v in ref.items())
        assert len(d) == 300

    def test_misses(self, cls):
        d = make(cls)
        d.insert(1, "x")
        rng = random.Random(2)
        for _ in range(100):
            probe = rng.randrange(2, U)
            assert not d.lookup(probe).found

    def test_overwrite_keeps_size(self, cls):
        d = make(cls)
        d.insert(7, "a")
        d.insert(7, "b")
        assert d.lookup(7).value == "b"
        assert len(d) == 1

    def test_delete(self, cls):
        d = make(cls)
        for k in range(50):
            d.insert(k, k)
        for k in range(0, 50, 2):
            d.delete(k)
        assert len(d) == 25
        assert not d.lookup(0).found
        assert d.lookup(1).value == 1

    def test_capacity_enforced(self, cls):
        d = make(cls, capacity=5)
        for k in range(5):
            d.insert(k, None)
        with pytest.raises(CapacityExceeded):
            d.insert(99, None)

    def test_stored_keys(self, cls):
        d = make(cls)
        for k in (3, 5, 8):
            d.insert(k, None)
        assert set(d.stored_keys()) == {3, 5, 8}

    def test_lookup_one_io_on_random_keys(self, cls):
        d = make(cls)
        rng = random.Random(3)
        keys = [rng.randrange(U) for _ in range(300)]
        for k in keys:
            d.insert(k, None)
        costs = [d.lookup(k).cost.total_ios for k in keys]
        avg = sum(costs) / len(costs)
        assert avg <= 1.2  # 1 whp / 1 + eps


class TestStripedSpecifics:
    def test_no_overflow_whp_at_design_load(self):
        d = make(StripedHashTable, capacity=400)
        keys = random.Random(0).sample(range(U), 400)
        for k in keys:
            d.insert(k, None)
        for k in keys:
            d.lookup(k)
        # "no overflowing blocks whp": every probe chain has length 1.
        assert max(d.probe_histogram) == 1

    def test_adversarial_keys_degrade_probing(self):
        """The worst case hashing cannot avoid: keys colliding under h
        push operations toward Theta(n / BD) I/Os."""
        d = make(StripedHashTable, capacity=2000, disks=4, block=4)
        bad = adversarial_keys_for_hash(
            d.hash, U, d.table.capacity_items * 3
        )
        for k in bad:
            d.insert(k, None)
        worst = d.lookup(bad[-1]).cost.total_ios
        assert worst >= 3  # probe chain spans several superblocks

    def test_tombstone_preserves_chain(self):
        d = make(StripedHashTable, capacity=2000, disks=4, block=4)
        bad = adversarial_keys_for_hash(
            d.hash, U, d.table.capacity_items + 1
        )
        for k in bad:
            d.insert(k, None)
        d.delete(bad[0])  # tombstone inside the chain
        assert d.lookup(bad[-1]).found


class TestCuckooSpecifics:
    def test_lookup_reads_both_nests_in_one_io(self):
        d = make(CuckooDictionary)
        d.insert(5, "v")
        cost = d.lookup(5).cost
        assert cost.read_ios == 1
        assert cost.blocks_read == 16  # both half-width nests

    def test_eviction_walks_happen(self):
        d = make(CuckooDictionary, capacity=500, load_slack=2.2)
        for k in random.Random(7).sample(range(U), 500):
            d.insert(k, None)
        assert max(d.walk_histogram) >= 1  # some insert displaced another

    def test_update_worst_case_spikes(self):
        """Amortized expected O(1) but individual inserts cost much more —
        the contrast with S4.1's worst-case 2."""
        d = make(CuckooDictionary, capacity=600, load_slack=2.05)
        worst = 0
        for k in random.Random(8).sample(range(U), 600):
            worst = max(worst, d.insert(k, None).total_ios)
        assert worst > 2

    def test_rehash_preserves_contents(self):
        d = make(CuckooDictionary, capacity=200)
        for k in range(200):
            d.insert(k, k)
        d._rehash()
        assert d.rehashes == 1
        assert all(d.lookup(k).value == k for k in range(200))


class TestDGMPSpecifics:
    def test_rebuild_on_overflow_preserves_contents(self):
        d = make(DGMPDictionary, capacity=300, disks=4, block=4)
        bad = adversarial_keys_for_hash(
            d.hash, U, d.table.capacity_items + 1
        )
        for k in bad:
            d.insert(k, k * 2)
        assert d.rebuilds >= 1
        assert all(d.lookup(k).value == k * 2 for k in bad)

    def test_lookup_always_exactly_one_io(self):
        d = make(DGMPDictionary)
        for k in range(200):
            d.insert(k, None)
        assert all(
            d.lookup(k).cost.total_ios == 1 for k in range(0, 400, 7)
        )


class TestFolkloreSpecifics:
    def test_secondary_fraction_is_small(self):
        d = make(FolkloreDictionary, capacity=400, load_slack=8.0)
        keys = random.Random(9).sample(range(U), 400)
        for k in keys:
            d.insert(k, None)
        for k in keys:
            d.lookup(k)
        assert d.secondary_fraction < 0.35

    def test_bigger_primary_means_smaller_eps(self):
        fracs = []
        for slack in (2.0, 16.0):
            d = make(FolkloreDictionary, capacity=400, load_slack=slack)
            keys = random.Random(10).sample(range(U), 400)
            for k in keys:
                d.insert(k, None)
            for k in keys:
                d.lookup(k)
            fracs.append(d.secondary_fraction)
        assert fracs[1] < fracs[0]

    def test_unmarked_foreign_cell_is_a_miss(self):
        """A probe landing on another key's unmarked cell must answer
        'absent' without touching the secondary."""
        d = make(FolkloreDictionary, capacity=50)
        d.insert(3, "x")
        h = d.hash
        other = next(
            k for k in range(4, U) if h(k) == h(3)
        )
        result = d.lookup(other)
        assert not result.found
        assert result.cost.total_ios == 1
