"""Acceptance: self-healing under live chaos traffic.

For every dictionary variant, a seeded rolling-failure plan runs against
live operations with the recovery stack attached.  The contract:

* zero silent wrong answers and a full heal (``report.ok``),
* rebuilds finish inside the :class:`RecoveryMonitor` budget,
* the foreground charged-cost identity holds exactly —
  ``chaos_ios − retry_ios − repair_ios == healthy_ios`` — i.e. every
  round of recovery overhead is attributed, none leaks into the costs
  the theorems meter.
"""

from __future__ import annotations

import json

import pytest

from repro.faults.chaos import run_chaos
from repro.faults.cli import main

COMMON = dict(operations=64, capacity=48, num_disks=16)


class TestChaosRecovery:
    @pytest.mark.parametrize("structure", ["static", "basic", "dynamic"])
    def test_rolling_transients_heal_with_exact_attribution(self, structure):
        report = run_chaos(
            structure, rolling=3, repair_budget=4, **COMMON
        )
        assert report.ok
        assert report.healed is True
        assert report.wrong_answers == 0
        assert report.recovery["health"]["healthy"] == 16
        # Attribution: stripping the two overhead channels from the
        # degraded run never leaves MORE foreground I/O than the healthy
        # run — recovery work cannot leak into charged costs.  (Loudly
        # failed ops abort early, so the residue can be smaller.)
        residue = report.chaos_ios - report.retry_ios - report.repair_ios
        assert residue <= report.healthy_ios
        if report.failed_total == 0:
            # Every op completed: the identity is exact, round for round.
            assert residue == report.healthy_ios

    def test_rolling_kills_rebuild_onto_spares(self):
        report = run_chaos(
            "static",
            rolling=2,
            repair_budget=6,
            spares=4,
            scrub_rate=2,
            **COMMON,
        )
        assert report.ok and report.healed is True
        rec = report.recovery
        assert rec["stats"]["rebuilds_completed"] >= 2
        assert rec["stats"]["blocks_rebuilt"] > 0
        assert rec["stats"]["blocks_lost"] == 0
        assert rec["health"]["healthy"] == 16
        assert rec["scrub"]["scanned"] > 0
        # Replicated static lookups retry onto surviving replicas, so
        # every op completes and the attribution identity is exact.
        assert report.failed_total == 0
        assert (
            report.chaos_ios - report.retry_ios - report.repair_ios
            == report.healthy_ios
        )

    def test_rebuilds_stay_inside_monitor_budget(self):
        report = run_chaos(
            "static", rolling=2, repair_budget=6, spares=4, **COMMON
        )
        assert report.healed is True
        assert report.heal_rounds > 0
        # The recorder kept every recovery.rebuild summary span; the
        # default monitor panel (which includes RecoveryMonitor) must
        # pass over all of them.
        from repro.obs.monitors import MonitorSet, RecoveryMonitor

        monitors = MonitorSet(monitors=[RecoveryMonitor()])
        violations = monitors.check_recorder(report.recorder)
        assert violations == []
        rebuilds = [
            s
            for s in report.recorder.iter_spans()
            if s.name == "recovery.rebuild"
        ]
        assert len(rebuilds) >= 2
        for s in rebuilds:
            assert s.attrs["rounds_used"] <= s.attrs["budget_rounds"]

    def test_recovery_runs_are_deterministic(self):
        kw = dict(rolling=2, repair_budget=4, spares=2, **COMMON)
        a = run_chaos("basic", **kw).to_dict()
        b = run_chaos("basic", **kw).to_dict()
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            run_chaos("static", rolling=-1, **COMMON)
        with pytest.raises(ValueError):
            run_chaos("static", repair_budget=-1, **COMMON)


class TestRecoveryCli:
    def test_rolling_with_repair_budget_heals_and_exits_zero(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        code = main(
            [
                "--structure",
                "basic",
                "--operations",
                "64",
                "--capacity",
                "48",
                "--rolling",
                "3",
                "--repair-budget",
                "4",
                "--quiet",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        run = payload["runs"][0]
        assert run["ok"] is True
        assert run["healed"] is True
        assert run["params"]["rolling"] == 3
        assert run["params"]["repair_budget"] == 4

    def test_spares_and_scrub_flags(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        code = main(
            [
                "--structure",
                "static",
                "--operations",
                "64",
                "--capacity",
                "48",
                "--rolling",
                "2",
                "--repair-budget",
                "6",
                "--spares",
                "4",
                "--scrub-rate",
                "2",
                "--quiet",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        run = json.loads(out.read_text())["runs"][0]
        assert run["healed"] is True
        assert run["recovery"]["stats"]["rebuilds_completed"] >= 2
        assert run["recovery"]["stats"]["blocks_lost"] == 0

    def test_rolling_kills_without_spares_fail_to_heal(self):
        # Dead disks and nothing to rebuild onto: the run must report
        # the broken contract through the exit code (1 = chaos verdict),
        # not crash.
        code = main(
            [
                "--structure",
                "static",
                "--operations",
                "64",
                "--capacity",
                "48",
                "--rolling",
                "2",
                "--rolling-kind",
                "kill",
                "--repair-budget",
                "4",
                "--quiet",
            ]
        )
        assert code == 1

    def test_bad_flag_values_exit_two(self):
        assert (
            main(
                [
                    "--structure",
                    "static",
                    "--rolling",
                    "-3",
                    "--quiet",
                ]
            )
            == 2
        )
