"""RecoveryManager: budgeted online rebuild under live traffic.

Covers both rebuild modes (spare replacement for permanent loss,
in-place verification after a finite outage), per-step repair budgets,
foreground-write diversion onto the spare, spare starvation, the
repair-race adversary, and the zero-cost ``recovery.rebuild`` summary
span the :class:`~repro.obs.monitors.RecoveryMonitor` audits.
"""

from __future__ import annotations

import pytest

from repro.core.static_dict import StaticDictionary
from repro.faults.plan import FaultPlan
from repro.obs.monitors import MonitorSet, RecoveryMonitor
from repro.pdm.faults import DiskOutage, SilentCorruption, attach_faults
from repro.pdm.health import FAILED, attach_health
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.spans import attach_spans
from repro.recovery import RecoveryManager, SparePool

FOREVER = 1 << 62
ITEMS = {k: (k * 7) % 256 for k in range(1, 40)}


def build_static(seed=3, num_disks=8):
    machine = ParallelDiskMachine(num_disks, 8, item_bits=64)
    sd = StaticDictionary.build(
        machine,
        ITEMS,
        universe_size=1024,
        sigma=8,
        case="b",
        redundancy="replicate",
        seed=seed,
    )
    return machine, sd


def _kill(machine, target):
    attach_faults(
        machine,
        [DiskOutage(disk=target, start=machine.stats.total_ios, end=FOREVER)],
    )


class TestSparePool:
    def test_bounded(self):
        machine = ParallelDiskMachine(4, 4)
        pool = SparePool(1)
        assert pool.available == 1
        assert pool.acquire(machine, 2) is not None
        assert pool.available == 0
        assert pool.acquire(machine, 3) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SparePool(-1)


class TestSpareRebuild:
    def run_rebuild(self, repair_budget=6):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        attach_faults(
            machine, [DiskOutage(disk=target, start=start, end=FOREVER)]
        )
        tracker = attach_health(machine)
        recorder = attach_spans(machine)
        mgr = RecoveryManager(
            machine,
            tracker,
            repair_budget=repair_budget,
            spares=SparePool(2),
        )
        mgr.register(sd)
        assert mgr.run_until_idle()
        return machine, sd, mgr, recorder, target

    def test_full_heal_and_correctness(self):
        machine, sd, mgr, recorder, target = self.run_rebuild()
        assert mgr.all_healed
        assert mgr.stats["rebuilds_completed"] == 1
        assert mgr.stats["blocks_lost"] == 0
        # Post-heal: every lookup is correct at healthy cost.
        snap = machine.stats.snapshot()
        for k, v in ITEMS.items():
            res = sd.lookup(k)
            assert res.found and res.value == v
        cost = machine.stats.since(snap)
        assert cost.retry_ios == 0 and cost.repair_ios == 0

    def test_all_rebuild_io_lands_in_repair_channel(self):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        baseline = machine.stats.total_ios  # everything the build charged
        _kill(machine, target)
        tracker = attach_health(machine)
        mgr = RecoveryManager(
            machine, tracker, repair_budget=6, spares=SparePool(1)
        )
        mgr.register(sd)
        assert mgr.run_until_idle()
        # Nothing foreground ran, so every post-build round is attributed.
        stats = machine.stats
        assert stats.repair_ios > 0
        assert stats.total_ios - baseline == stats.repair_ios + stats.retry_ios

    def test_per_step_budget_meters_progress(self):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        attach_faults(
            machine, [DiskOutage(disk=target, start=start, end=FOREVER)]
        )
        tracker = attach_health(machine)
        mgr = RecoveryManager(
            machine, tracker, repair_budget=3, spares=SparePool(1)
        )
        mgr.register(sd)
        per_block = sd.reconstruct_round_bound() + 1  # read batch + write
        steps = 0
        while True:
            before = machine.stats.total_ios
            mgr.step()
            steps += 1
            spent = machine.stats.total_ios - before
            # Budget overshoot is at most one block's restore cost.
            assert spent <= 3 + per_block
            assert steps < 500
            if mgr.all_healed:
                break
        assert steps > 1, "budget 3 must spread the rebuild over steps"

    def test_summary_span_satisfies_recovery_monitor(self):
        machine, sd, mgr, recorder, target = self.run_rebuild()
        spans = [
            s for s in recorder.iter_spans() if s.name == "recovery.rebuild"
        ]
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["disk"] == target
        assert attrs["mode"] == "spare"
        assert attrs["blocks_done"] == attrs["blocks"]
        assert attrs["rounds_used"] <= attrs["budget_rounds"]
        monitors = MonitorSet(monitors=[RecoveryMonitor()])
        monitors.check_recorder(recorder)
        assert monitors.ok

    def test_spare_starvation_is_counted_not_fatal(self):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        attach_faults(
            machine, [DiskOutage(disk=target, start=start, end=FOREVER)]
        )
        tracker = attach_health(machine)
        mgr = RecoveryManager(
            machine, tracker, repair_budget=4, spares=None
        )
        mgr.register(sd)
        assert not mgr.run_until_idle()
        assert mgr.stats["spare_starved"] > 0
        assert tracker.state(target) == FAILED

    def test_foreground_write_divert_is_not_overwritten(self):
        # A write landing on the mirrored disk mid-rebuild goes to the
        # spare; the rebuild must not clobber it with reconstructed
        # (pre-write) state.
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        attach_faults(
            machine, [DiskOutage(disk=target, start=start, end=FOREVER)]
        )
        tracker = attach_health(machine)
        mgr = RecoveryManager(
            machine, tracker, repair_budget=2, spares=SparePool(1)
        )
        mgr.register(sd)
        mgr.step()  # opens the rebuild, installs the mirror
        assert target in machine.rebuild_mirror
        # Write to the *last* pending block: the budgeted first step may
        # already have restored the earliest ones.
        last_block = max(b for d, b in _addrs_of(sd, target))
        machine.write_blocks([((target, last_block), [123456], 32)])
        assert mgr.run_until_idle()
        assert mgr.stats["blocks_live_skipped"] >= 1
        blk = machine.disks[target].peek(last_block)  # detlint: ignore[PDM102] -- audit peek, uncharged by design
        assert blk is not None and blk.payload[0] == 123456


def _addrs_of(sd, disk):
    return [
        (d, first + i)
        for d, first, count in sd.recovery_extents()
        if d == disk
        for i in range(count)
    ]


class TestVerifyRebuild:
    def test_finite_outage_heals_in_place(self):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        attach_faults(
            machine,
            [
                DiskOutage(disk=target, start=start + 2, end=start + 30),
                SilentCorruption(
                    disk=target, round=start + 1, block=0, salt=9
                ),
            ],
        )
        tracker = attach_health(machine)
        mgr = RecoveryManager(machine, tracker, repair_budget=4)
        mgr.register(sd)
        for k in list(ITEMS)[:6]:
            assert sd.lookup(k).value == ITEMS[k]
        assert mgr.run_until_idle()
        assert mgr.stats["rebuilds_completed"] == 1
        assert mgr.stats["blocks_verified"] > 0
        assert mgr.stats["corrupt_repaired"] == 1
        for k, v in ITEMS.items():
            assert sd.lookup(k).value == v

    def test_idle_wait_rounds_are_repair_charged(self):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        attach_faults(
            machine,
            [DiskOutage(disk=target, start=start, end=start + 20)],
        )
        tracker = attach_health(machine)
        mgr = RecoveryManager(machine, tracker, repair_budget=4)
        mgr.register(sd)
        snap = machine.stats.snapshot()
        assert mgr.run_until_idle()
        cost = machine.stats.since(snap)
        assert mgr.stats["idle_wait_rounds"] > 0
        # Waiting advanced the clock, and every waited round is inside
        # the repair channel — foreground budgets never see them.
        assert cost.read_ios + cost.write_ios == (
            cost.repair_ios + cost.retry_ios
        )


class TestRepairRace:
    def test_repeated_outages_eventually_heal(self):
        machine, sd = build_static()
        target = sorted(sd.assignment[5])[0]
        start = machine.stats.total_ios
        plan = FaultPlan.repair_race(
            11,
            num_disks=machine.num_disks,
            repeats=3,
            every=24,
            outage_len=8,
            start=start + 1,
            disk=target,
        )
        attach_faults(machine, plan.events)
        tracker = attach_health(machine)
        mgr = RecoveryManager(machine, tracker, repair_budget=3)
        mgr.register(sd)
        assert mgr.run_until_idle(max_steps=2000)
        for k, v in ITEMS.items():
            assert sd.lookup(k).value == v

    def test_plan_constructor_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.repair_race(1, num_disks=4, every=4, outage_len=8)
        with pytest.raises(ValueError):
            FaultPlan.repair_race(1, num_disks=4, repeats=0)


class TestRollingPlan:
    def test_victims_are_a_permutation(self):
        plan = FaultPlan.rolling(
            5, num_disks=6, failures=6, every=10, kind="kill"
        )
        victims = [e.disk for e in plan.events]
        assert sorted(victims) == list(range(6))
        assert all(e.end == FOREVER for e in plan.events)

    def test_kinds(self):
        t = FaultPlan.rolling(5, num_disks=4, failures=2, every=10)
        assert t.counts()["transients"] == 2
        o = FaultPlan.rolling(
            5, num_disks=4, failures=2, every=10, kind="outage", outage_len=3
        )
        assert o.counts()["outages"] == 2
        assert all(e.end - e.start == 3 for e in o.events)
        with pytest.raises(ValueError):
            FaultPlan.rolling(5, num_disks=4, failures=1, every=0)
        with pytest.raises(ValueError):
            FaultPlan.rolling(5, num_disks=4, failures=1, every=1, kind="?")

    def test_deterministic(self):
        a = FaultPlan.rolling(9, num_disks=8, failures=5, every=7)
        b = FaultPlan.rolling(9, num_disks=8, failures=5, every=7)
        assert a.to_dict() == b.to_dict()
