"""Rebuild journal semantics and crash-resume idempotence.

The Hypothesis property at the bottom is the crash-consistency
acceptance test: a spare rebuild interrupted after *any* number of
manager steps — the volatile pieces (manager, tracker) discarded, the
durable pieces (storage, journal) kept — must resume idempotently and
converge to exactly the state an uninterrupted rebuild reaches, with
every block restored exactly once.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.static_dict import StaticDictionary
from repro.pdm.faults import DiskOutage, attach_faults
from repro.pdm.health import attach_health
from repro.pdm.machine import ParallelDiskMachine
from repro.recovery import RebuildJournal, RecoveryManager, SparePool

FOREVER = 1 << 62


class TestJournalUnit:
    def test_begin_copied_commit_round_trip(self):
        j = RebuildJournal()
        j.begin(3, 0, "spare", 5)
        j.copied(3, 0, 10)
        j.copied(3, 0, 11)
        assert j.open_rebuild(3) == (0, "spare", 5)
        assert j.copied_blocks(3, 0) == {10, 11}
        assert not j.committed(3, 0)
        j.commit(3, 0)
        assert j.committed(3, 0)
        assert j.open_rebuild(3) is None

    def test_generations_are_monotone_per_disk(self):
        j = RebuildJournal()
        assert j.next_generation(1) == 0
        j.begin(1, 0, "spare", 4)
        j.commit(1, 0)
        assert j.next_generation(1) == 1
        assert j.next_generation(2) == 0
        j.begin(1, 1, "verify", 4)
        assert j.open_rebuild(1) == (1, "verify", 4)
        # Copied entries of the committed generation don't leak into the
        # open one.
        j.copied(1, 0, 9)
        assert j.copied_blocks(1, 1) == set()

    def test_prefix_and_serialisation(self):
        j = RebuildJournal()
        j.begin(0, 0, "spare", 2)
        j.copied(0, 0, 1)
        j.commit(0, 0)
        assert len(j) == 3
        p = j.prefix(2)
        assert len(p) == 2
        assert p.open_rebuild(0) == (0, "spare", 2)
        rt = RebuildJournal.from_dict(j.to_dict())
        assert rt.entries == j.entries
        # Prefixes are copies: appending to one never mutates the other.
        p.commit(0, 0)
        assert len(j) == 3

    def test_every_prefix_is_internally_consistent(self):
        j = RebuildJournal()
        j.begin(2, 0, "spare", 3)
        for b in (4, 5, 6):
            j.copied(2, 0, b)
        j.commit(2, 0)
        for n in range(len(j) + 1):
            p = j.prefix(n)
            # copied entries never precede their begin
            gens = [e["gen"] for e in p.entries if e["op"] == "begin"]
            for e in p.entries:
                if e["op"] in ("copied", "commit"):
                    assert e["gen"] in gens
            # an uncommitted begin is visible as the open rebuild
            if 0 < n < len(j):
                assert p.open_rebuild(2) == (0, "spare", 3)


# -- crash-resume idempotence -------------------------------------------------


def _build(seed=3):
    machine = ParallelDiskMachine(8, 8, item_bits=64)
    items = {k: (k * 7) % 256 for k in range(1, 40)}
    sd = StaticDictionary.build(
        machine,
        items,
        universe_size=1024,
        sigma=8,
        case="b",
        redundancy="replicate",
        seed=seed,
    )
    return machine, sd, items


def _kill_and_manage(machine, sd, journal):
    """Kill one assigned disk forever; return a fresh manager over the
    given (durable) journal.  Also re-attaches a fresh health tracker —
    the volatile state a crash discards."""
    target = sorted(sd.assignment[5])[0]
    if machine.faults is None:
        b = machine.stats.total_ios
        attach_faults(machine, [DiskOutage(disk=target, start=b, end=FOREVER)])
    tracker = attach_health(machine)
    mgr = RecoveryManager(
        machine,
        tracker,
        repair_budget=5,
        journal=journal,
        spares=SparePool(2),
    )
    mgr.register(sd)
    return mgr


@settings(max_examples=12, deadline=None)
@given(crash_after=st.integers(0, 12), second_crash=st.integers(0, 4))
def test_resume_after_crash_at_any_step_converges(crash_after, second_crash):
    # Reference: uninterrupted rebuild.
    m_ref, sd_ref, items = _build()
    ref = _kill_and_manage(m_ref, sd_ref, RebuildJournal())
    assert ref.run_until_idle()
    ref_blocks = ref.stats["blocks_rebuilt"]

    # Crashy run: step a few times, discard manager+tracker, resume with
    # the surviving journal and machine — twice over.
    m, sd, _ = _build()
    journal = RebuildJournal()
    mgr = _kill_and_manage(m, sd, journal)
    total_rebuilt = 0
    for _ in range(crash_after):
        mgr.step()
    total_rebuilt += mgr.stats["blocks_rebuilt"]
    mgr = _kill_and_manage(m, sd, journal)  # crash #1
    for _ in range(second_crash):
        mgr.step()
    total_rebuilt += mgr.stats["blocks_rebuilt"]
    mgr = _kill_and_manage(m, sd, journal)  # crash #2
    assert mgr.run_until_idle()
    total_rebuilt += mgr.stats["blocks_rebuilt"]

    # Idempotence: across all incarnations each block was restored at
    # most once (journalled blocks are skipped on resume) and the final
    # coverage matches the uninterrupted run.
    assert total_rebuilt == ref_blocks
    assert mgr.stats["blocks_lost"] == 0

    # Convergence: every key answers correctly with zero repair overhead.
    snap = m.stats.snapshot()
    for k, v in items.items():
        res = sd.lookup(k)
        assert res.found and res.value == v
    cost = m.stats.since(snap)
    assert cost.retry_ios == 0 and cost.repair_ios == 0

    # The journal shows exactly one begin generation and one commit for
    # the rebuilt disk: resume reuses the open generation.
    disk = sorted(sd_ref.assignment[5])[0]
    begins = [
        e for e in journal.entries
        if e["op"] == "begin" and e["disk"] == disk
    ]
    commits = [
        e for e in journal.entries
        if e["op"] == "commit" and e["disk"] == disk
    ]
    assert len(begins) == 1 and len(commits) == 1
    copied = journal.copied_blocks(disk, begins[0]["gen"])
    assert len(copied) == ref_blocks
