"""Health state machine + retry policy: units and Hypothesis properties.

The load-bearing property: no sequence of fault observations and
recovery-manager verbs can ever drive a :class:`HealthTracker` through an
edge outside :data:`ALLOWED_TRANSITIONS` — the state machine is closed
under its own API.  Plus the PR 3 gap regression: every transition drops
the buffer pool's entries for that disk.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.cache import attach_cache
from repro.pdm.health import (
    ALLOWED_TRANSITIONS,
    FAILED,
    HEALTHY,
    REBUILDING,
    STATES,
    SUSPECT,
    TRANSIENT,
    HealthTracker,
    IllegalTransition,
    RetryPolicy,
    attach_health,
    detach_health,
)
from repro.pdm.machine import ParallelDiskMachine


class TestRetryPolicy:
    def test_default_reproduces_legacy_flat_budget(self):
        p = RetryPolicy()
        assert p.max_attempts == 3
        assert all(p.backoff_rounds(i) == 0 for i in range(10))
        assert RetryPolicy.flat(3) == p

    def test_machine_retry_budget_property_round_trips(self):
        m = ParallelDiskMachine(4, 4)
        assert m.retry_budget == 3
        m.retry_budget = 5
        assert m.retry_policy.max_attempts == 5
        with pytest.raises(ValueError):
            m.retry_budget = -1

    def test_exponential_waits_grow_and_cap(self):
        p = RetryPolicy.exponential(base=1, factor=2, cap=8)
        waits = [p.backoff_rounds(i) for i in range(6)]
        assert waits == [1, 2, 4, 8, 8, 8]

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy.exponential(base=4, factor=2, cap=64, jitter_seed=7)
        q = RetryPolicy.exponential(base=4, factor=2, cap=64, jitter_seed=7)
        for i in range(8):
            w = p.backoff_rounds(i)
            assert w == q.backoff_rounds(i)  # same seed, same wait
            full = min(64, 4 * 2**i)
            assert full // 2 <= w <= full  # shaves at most half

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": -1},
            {"backoff_base": -1},
            {"backoff_factor": 0},
            {"backoff_cap": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_policy_is_immutable(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_attempts = 9


class TestTrackerUnit:
    def make(self, disks=4, suspect_after=3):
        m = ParallelDiskMachine(disks, 4)
        return m, attach_health(m, suspect_after=suspect_after)

    def test_attach_detach(self):
        m, t = self.make()
        assert m.health is t
        assert t.all_healthy()
        assert t.counts() == {s: (4 if s == HEALTHY else 0) for s in STATES}
        detach_health(m)
        assert m.health is None

    def test_transient_escalates_to_suspect_then_clears(self):
        m, t = self.make(suspect_after=2)
        t.observe_error(0, "transient", 10)
        assert t.state(0) == TRANSIENT
        t.observe_error(0, "transient", 11)
        assert t.state(0) == SUSPECT
        t.observe_ok(0, 12)
        assert t.state(0) == HEALTHY
        assert t.disks[0].consecutive_errors == 0

    def test_down_fails_from_any_live_state(self):
        for prep in ([], ["transient"], ["transient", "transient"]):
            m, t = self.make(suspect_after=2)
            for i, kind in enumerate(prep):
                t.observe_error(1, kind, i)
            t.observe_error(1, "down", 99)
            assert t.state(1) == FAILED

    def test_rebuild_cycle(self):
        m, t = self.make()
        t.observe_error(2, "down", 5)
        t.begin_rebuild(2, 6)
        assert t.state(2) == REBUILDING
        # While rebuilding, further down observations are expected noise.
        t.observe_error(2, "down", 7)
        assert t.state(2) == REBUILDING
        t.complete_rebuild(2, 8)
        assert t.state(2) == HEALTHY
        log = t.disks[2].transitions
        assert [(o, n) for _, o, n in log] == [
            (HEALTHY, FAILED),
            (FAILED, REBUILDING),
            (REBUILDING, HEALTHY),
        ]

    def test_corruption_counts_but_does_not_change_state(self):
        m, t = self.make()
        t.observe_error(0, "corruption", 1)
        assert t.state(0) == HEALTHY
        assert t.disks[0].consecutive_errors == 1

    def test_illegal_edge_raises(self):
        m, t = self.make()
        with pytest.raises(IllegalTransition):
            t.begin_rebuild(0, 1)  # healthy -> rebuilding is not an edge
        with pytest.raises(ValueError):
            t.observe_error(0, "gamma-rays", 1)

    def test_transition_invalidates_cache_entries_for_disk(self):
        # The PR 3 gap: cached blocks staged before a fault window must
        # not survive the disk's state change.
        m = ParallelDiskMachine(4, 4)
        m.write_blocks([((0, 0), [1], 8), ((1, 0), [2], 8)])
        pool = attach_cache(m, capacity_blocks=8)
        m.read_blocks([(0, 0), (1, 0)])  # stage clean entries
        assert (0, 0) in pool and (1, 0) in pool
        t = attach_health(m)
        t.observe_error(0, "transient", m.stats.total_ios)
        assert (0, 0) not in pool  # dropped on healthy -> transient
        assert (1, 0) in pool  # other disks untouched
        # The first read after the fault both heals the disk (transient
        # -> healthy) and re-stages the block; steady state re-caches.
        m.read_blocks([(0, 0)])
        assert t.state(0) == HEALTHY
        assert (0, 0) in pool

    def test_invalidate_disk_keeps_dirty_entries(self):
        # Under write-back the pool copy of a dirty block is the only
        # copy; a health transition must not throw the write away.
        m = ParallelDiskMachine(4, 4)
        pool = attach_cache(m, capacity_blocks=8)
        m.write_blocks([((0, 0), [7], 8)])  # staged dirty, not on disk
        t = attach_health(m)
        t.observe_error(0, "transient", m.stats.total_ios)
        assert (0, 0) in pool  # the authoritative copy survives
        blocks = m.read_blocks([(0, 0)])
        assert blocks[(0, 0)].payload[0] == 7


# -- the property: the tracker never takes an illegal edge -------------------

_VERBS = st.one_of(
    st.tuples(
        st.just("error"),
        st.integers(0, 3),
        st.sampled_from(["down", "transient", "corruption"]),
    ),
    st.tuples(st.just("ok"), st.integers(0, 3), st.none()),
    st.tuples(st.just("fail"), st.integers(0, 3), st.none()),
    st.tuples(st.just("begin"), st.integers(0, 3), st.none()),
    st.tuples(st.just("complete"), st.integers(0, 3), st.none()),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_VERBS, max_size=40), suspect_after=st.integers(1, 4))
def test_no_illegal_transitions_under_any_observation_sequence(
    ops, suspect_after
):
    machine = ParallelDiskMachine(4, 4)
    t = attach_health(machine, suspect_after=suspect_after)
    clock = 0
    for verb, disk, kind in ops:
        clock += 1
        if verb == "error":
            t.observe_error(disk, kind, clock)
        elif verb == "ok":
            t.observe_ok(disk, clock)
        elif verb == "fail":
            t.fail(disk, clock)
        elif verb == "begin":
            # The recovery manager only opens rebuilds on failed disks.
            if t.state(disk) == FAILED:
                t.begin_rebuild(disk, clock)
        elif verb == "complete":
            if t.state(disk) == REBUILDING:
                t.complete_rebuild(disk, clock)
    # Every recorded edge is legal, in order, with monotone clocks.
    total = 0
    for h in t.disks.values():
        prev_clock = -1
        state = HEALTHY
        for when, old, new in h.transitions:
            assert (old, new) in ALLOWED_TRANSITIONS
            assert old == state, "transition log must chain"
            assert when >= prev_clock
            state, prev_clock = new, when
        assert h.state == state, "current state matches the log's tail"
        total += len(h.transitions)
    assert t.transitions == total
    assert sum(t.counts().values()) == 4
