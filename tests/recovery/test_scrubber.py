"""Bounded-rate scrubbing: detection, healing, and cost attribution."""

from __future__ import annotations

import pytest

from repro.core.static_dict import StaticDictionary
from repro.pdm.faults import DiskOutage, SilentCorruption, attach_faults
from repro.pdm.machine import ParallelDiskMachine
from repro.recovery import Scrubber

ITEMS = {k: (k * 11) % 256 for k in range(1, 30)}


def build(seed=4):
    machine = ParallelDiskMachine(8, 8, item_bits=64)
    sd = StaticDictionary.build(
        machine,
        ITEMS,
        universe_size=1024,
        sigma=8,
        case="b",
        redundancy="replicate",
        seed=seed,
    )
    return machine, sd


def test_rate_validation():
    machine, _ = build()
    with pytest.raises(ValueError):
        Scrubber(machine, rate=0)


def test_step_scans_at_most_rate_blocks():
    machine, sd = build()
    sc = Scrubber(machine, rate=3)
    sc.register(sd)
    total = len(sc._walk_order())
    assert total > 3
    assert sc.step() == 3
    assert sc.stats["scanned"] == 3


def test_empty_scrubber_is_a_noop():
    machine, _ = build()
    sc = Scrubber(machine, rate=4)
    before = machine.stats.total_ios
    assert sc.step() == 0
    assert machine.stats.total_ios == before


def test_cursor_wraps_and_counts_passes():
    machine, sd = build()
    sc = Scrubber(machine, rate=5)
    sc.register(sd)
    total = len(sc._walk_order())
    steps_per_pass = -(-total // 5)  # ceil
    for _ in range(steps_per_pass + 1):
        sc.step()
    assert sc.stats["passes"] >= 1
    assert sc.stats["scanned"] > total  # wrapped and kept going


def test_all_scrub_io_is_repair_charged():
    machine, sd = build()
    sc = Scrubber(machine, rate=4)
    sc.register(sd)
    snap = machine.stats.snapshot()
    for _ in range(6):
        sc.step()
    cost = machine.stats.since(snap)
    assert cost.total_ios > 0
    assert cost.repair_ios == cost.total_ios
    assert cost.retry_ios == 0


def test_skips_blocks_on_down_disks():
    machine, sd = build()
    target = sorted(sd.assignment[5])[0]
    start = machine.stats.total_ios
    attach_faults(
        machine, [DiskOutage(disk=target, start=start, end=start + 10_000)]
    )
    sc = Scrubber(machine, rate=4)
    sc.register(sd)
    total = len(sc._walk_order())
    steps_per_pass = -(-total // 4)
    for _ in range(steps_per_pass + 2):
        sc.step()
    assert sc.stats["skipped"] > 0
    # Skipped blocks never reach the machine: no read errors were raised.
    assert sc.stats["corruptions"] == 0


def test_detects_and_heals_latent_corruption():
    machine, sd = build()
    target = sorted(sd.assignment[5])[0]
    extents = [
        (d, first, count)
        for d, first, count in sd.recovery_extents()
        if d == target
    ]
    block = extents[0][1]
    attach_faults(
        machine,
        [
            SilentCorruption(
                disk=target,
                round=machine.stats.total_ios,
                block=block,
                salt=13,
            )
        ],
    )
    sc = Scrubber(machine, rate=4)
    sc.register(sd)
    # One full pass is guaranteed to visit the poisoned block.
    total = len(sc._walk_order())
    for _ in range(-(-total // 4) + 1):
        sc.step()
    assert sc.stats["corruptions"] == 1
    assert sc.stats["repaired"] == 1
    assert sc.stats["lost"] == 0
    # The heal is durable: foreground lookups see clean data at clean cost.
    snap = machine.stats.snapshot()
    for k, v in ITEMS.items():
        assert sd.lookup(k).value == v
    cost = machine.stats.since(snap)
    assert cost.retry_ios == 0 and cost.repair_ios == 0


def test_refresh_rebuilds_walk_order():
    machine, sd = build()
    sc = Scrubber(machine, rate=4)
    sc.register(sd)
    first = list(sc._walk_order())
    sc.refresh()
    assert list(sc._walk_order()) == first  # deterministic recompute
