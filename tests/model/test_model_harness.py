"""Model-based differential testing: every dictionary vs a plain dict.

A Hypothesis :class:`RuleBasedStateMachine` drives random interleavings of
``insert`` / ``delete`` / ``lookup`` and the batched ``batch_*``
operations against each dictionary variant, checking every answer against
a plain Python ``dict`` oracle.  The unbounded variants run with a tiny
initial capacity so the interleavings constantly cross global-rebuild
boundaries — the regime where a stale membership pointer or a dropped
migration would surface as an oracle divergence.

Oracle rules live in :class:`DictionaryOracleMachine`; to cover a new
operation, add a ``@rule`` that applies it to both the dictionary and
``self.oracle`` and asserts the outcomes agree (see ``docs/testing.md``).
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.facade import ParallelDiskDictionary
from repro.core.interface import DegradedModeError, LookupResult
from repro.faults.plan import FaultPlan
from repro.pdm.errors import IOFault
from repro.pdm.faults import attach_faults
from repro.pdm.health import RetryPolicy, attach_health
from repro.recovery import RecoveryManager

U = 1 << 12
SIGMA = 16
KEYS = st.integers(0, U - 1)
VALUES = st.integers(0, (1 << SIGMA) - 1)

# CI runs every variant at these settings: 12 variants x 40 examples = 480
# stateful examples per run (the acceptance bar is >= 200).
MODEL_SETTINGS = settings(
    max_examples=40, stateful_step_count=12, deadline=None
)


class DictionaryOracleMachine(RuleBasedStateMachine):
    """Differential state machine: dictionary vs plain-dict oracle."""

    #: capacity bound the rules respect; None = unbounded (rebuilding).
    capacity: int | None = 48

    def build(self):
        raise NotImplementedError

    def __init__(self):
        super().__init__()
        self.d = self.build()
        self.oracle: dict[int, int] = {}

    # -- helpers ---------------------------------------------------------

    def _room_for(self, new_keys: int) -> bool:
        if self.capacity is None:
            return True
        return len(self.oracle) + new_keys <= self.capacity

    def _present_key(self, data) -> int | None:
        if not self.oracle:
            return None
        return data.draw(
            st.sampled_from(sorted(self.oracle)), label="present key"
        )

    def _check_lookup(self, key: int, result: LookupResult) -> None:
        assert result.found == (key in self.oracle), (
            f"membership divergence on {key}: dictionary says "
            f"{result.found}, oracle says {key in self.oracle}"
        )
        if result.found:
            assert result.value == self.oracle[key], (
                f"value divergence on {key}: dictionary {result.value!r}, "
                f"oracle {self.oracle[key]!r}"
            )

    # -- single-key rules ------------------------------------------------

    @rule(key=KEYS, value=VALUES)
    def insert(self, key: int, value: int) -> None:
        if key not in self.oracle and not self._room_for(1):
            return
        self.d.insert(key, value)
        self.oracle[key] = value

    @rule(data=st.data(), value=VALUES)
    def update_present(self, data, value: int) -> None:
        key = self._present_key(data)
        if key is None:
            return
        self.d.insert(key, value)
        self.oracle[key] = value

    @rule(key=KEYS)
    def delete_any(self, key: int) -> None:
        self.d.delete(key)  # deleting an absent key is a no-op
        self.oracle.pop(key, None)

    @rule(data=st.data())
    def delete_present(self, data) -> None:
        key = self._present_key(data)
        if key is None:
            return
        self.d.delete(key)
        del self.oracle[key]

    @rule(key=KEYS)
    def lookup_any(self, key: int) -> None:
        self._check_lookup(key, self.d.lookup(key))

    @rule(data=st.data())
    def lookup_present(self, data) -> None:
        key = self._present_key(data)
        if key is None:
            return
        self._check_lookup(key, self.d.lookup(key))

    # -- batched rules ---------------------------------------------------

    @rule(keys=st.lists(KEYS, max_size=10), data=st.data())
    def batch_lookup(self, keys, data) -> None:
        extra = self._present_key(data)
        if extra is not None:
            keys = keys + [extra]
        if not keys:
            return
        outcomes, _cost = self.d.batch_lookup(keys)
        assert set(outcomes) == set(keys)
        for key in set(keys):
            res = outcomes[key]
            assert not isinstance(res, Exception), (
                f"healthy batch_lookup errored on {key}: {res!r}"
            )
            self._check_lookup(key, res)

    @rule(items=st.dictionaries(KEYS, VALUES, max_size=8))
    def batch_insert(self, items) -> None:
        if not items:
            return
        new = [k for k in items if k not in self.oracle]
        if not self._room_for(len(new)):
            # Trim to what fits; the capacity-edge behaviour has its own
            # dedicated tests (per-key CapacityExceeded outcomes).
            room = (
                self.capacity - len(self.oracle)
                if self.capacity is not None
                else 0
            )
            drop = set(new[room:])
            items = {k: v for k, v in items.items() if k not in drop}
            if not items:
                return
        outcomes, _cost = self.d.batch_insert(items)
        assert set(outcomes) == set(items)
        for key, res in outcomes.items():
            assert not isinstance(res, Exception), (
                f"healthy batch_insert errored on {key}: {res!r}"
            )
            was_present, _old = res
            assert was_present == (key in self.oracle)
            self.oracle[key] = items[key]

    @rule(keys=st.lists(KEYS, max_size=8), data=st.data())
    def batch_delete(self, keys, data) -> None:
        extra = self._present_key(data)
        if extra is not None:
            keys = keys + [extra]
        if not keys:
            return
        outcomes, _cost = self.d.batch_delete(keys)
        assert set(outcomes) == set(keys)
        for key in set(keys):
            res = outcomes[key]
            assert not isinstance(res, Exception), (
                f"healthy batch_delete errored on {key}: {res!r}"
            )
            assert res == (key in self.oracle), (
                f"removed-flag divergence on {key}"
            )
            self.oracle.pop(key, None)

    @rule()
    def audit_all_present(self) -> None:
        """Full sweep: every oracle key answers, via one batch."""
        if not self.oracle:
            return
        outcomes, _cost = self.d.batch_lookup(sorted(self.oracle))
        for key in self.oracle:
            self._check_lookup(key, outcomes[key])

    # -- invariants ------------------------------------------------------

    @invariant()
    def sizes_agree(self) -> None:
        assert len(self.d) == len(self.oracle), (
            f"size divergence: dictionary {len(self.d)}, "
            f"oracle {len(self.oracle)}"
        )


class BasicModel(DictionaryOracleMachine):
    capacity = 48

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=48, mode="basic", degree=8,
            block_items=16, seed=1,
        )


class FullBandwidthModel(DictionaryOracleMachine):
    capacity = 48

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=48, mode="full-bandwidth", degree=8,
            sigma=SIGMA, block_items=16, seed=2,
        )


class HeadModelModel(DictionaryOracleMachine):
    capacity = 48

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=48, mode="head-model", degree=8,
            block_items=16, seed=3,
        )


class RecursiveModel(DictionaryOracleMachine):
    capacity = 48

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=48, mode="one-probe-recursive",
            degree=8, sigma=SIGMA, block_items=16, seed=4,
        )


class RebuildingBasicModel(DictionaryOracleMachine):
    """Tiny initial capacity: every long interleaving crosses rebuilds."""

    capacity = None

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=8, mode="basic", degree=8,
            block_items=16, unbounded=True, seed=5,
        )


class RebuildingDynamicModel(DictionaryOracleMachine):
    """The ISSUE's named target: dynamic-dict rebuild boundaries."""

    capacity = None

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=8, mode="full-bandwidth", degree=8,
            sigma=SIGMA, block_items=16, unbounded=True, seed=6,
        )


class CachedBasicModel(DictionaryOracleMachine):
    """Buffer pool attached: a tiny pool keeps evictions and write-backs
    constantly in play while every answer must still match the oracle."""

    capacity = 48

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=48, mode="basic", degree=8,
            block_items=16, seed=7, cache_blocks=6,
        )


class CachedRebuildingDynamicModel(DictionaryOracleMachine):
    """Pool + global rebuilds: stale cached blocks across reallocated
    address ranges would surface here as oracle divergences."""

    capacity = None

    def build(self):
        return ParallelDiskDictionary(
            universe_size=U, capacity=8, mode="full-bandwidth", degree=8,
            sigma=SIGMA, block_items=16, unbounded=True, seed=8,
            cache_blocks=6,
        )


class RecoveringBasicModel(DictionaryOracleMachine):
    """Self-healing under live traffic: a rolling transient-failure plan
    runs through the whole interleaving while a recovery manager steps
    between rules.  The exponential retry policy's backoff idle rounds
    outlast every 3-round window, so each answer must *still* match the
    oracle exactly — transparent degraded-mode recovery, not loud
    failure."""

    capacity = 48

    def build(self):
        d = ParallelDiskDictionary(
            universe_size=U, capacity=48, mode="basic", degree=8,
            block_items=16, seed=9,
        )
        machine = d._machines[0]
        plan = FaultPlan.rolling(
            97, num_disks=machine.num_disks, failures=6, every=10,
            outage_len=3, kind="transient",
        ).shifted(machine.stats.total_ios)
        attach_faults(machine, plan.events)
        machine.retry_policy = RetryPolicy.exponential(
            max_attempts=6, base=1, factor=2, cap=8
        )
        tracker = attach_health(machine)
        self.manager = RecoveryManager(machine, tracker, repair_budget=4)
        self.manager.register(d)
        return d

    @rule()
    def recovery_tick(self) -> None:
        self.manager.step()

    @invariant()
    def never_stuck_failed(self) -> None:
        # Transient windows heal in place: no disk may end up FAILED
        # (that state is reserved for hard outages).
        assert not self.manager.tracker.in_state("failed")


# -- file-backed executor twins ------------------------------------------


class TwinCheckedDictionary:
    """A file-backed dictionary locked in step with a simulated twin.

    Planning, charging, faults and retries all live above the executor
    seam, so a dictionary running on the real-file backend must be
    *indistinguishable* from one running in memory: after every single
    operation this wrapper compares the answer (or the raised fault
    type) and the cumulative charged I/O accounting of both.  The twin
    is the executor-equivalence oracle; the plain-dict oracle of the
    surrounding state machine checks functional correctness on top.
    """

    def __init__(self, primary: ParallelDiskDictionary,
                 twin: ParallelDiskDictionary):
        self._primary = primary
        self._twin = twin

    def close(self) -> None:
        self._primary.close()
        self._twin.close()

    # Charges must agree to the block.  retry_ios is included because the
    # fault clock *is* charged I/O: any drift would also desynchronise
    # the two fault schedules and snowball.
    @staticmethod
    def _charges(d):
        s = d.io_stats()
        return (s.read_ios, s.write_ios, s.blocks_read,
                s.blocks_written, s.retry_ios)

    @staticmethod
    def _norm_one(res):
        if isinstance(res, LookupResult):
            return (res.found, res.value, res.cost)
        if isinstance(res, Exception):
            return type(res).__name__
        return res

    @classmethod
    def _norm(cls, value):
        """Comparable view of an operation outcome."""
        if (isinstance(value, tuple) and len(value) == 2
                and isinstance(value[0], dict)):
            outcomes, cost = value  # a batch_* result
            return ({k: cls._norm_one(v) for k, v in outcomes.items()}, cost)
        return cls._norm_one(value)

    def apply(self, op):
        """Run ``op`` against both dictionaries, assert they agree.

        Returns ``(("ok", normalised) | ("fault", type name), raw)``
        where ``raw`` is the primary's un-normalised result.
        """
        raw = None
        try:
            raw = op(self._primary)
            first = ("ok", self._norm(raw))
        except (IOFault, DegradedModeError) as exc:
            first = ("fault", type(exc).__name__)
        try:
            second = ("ok", self._norm(op(self._twin)))
        except (IOFault, DegradedModeError) as exc:
            second = ("fault", type(exc).__name__)
        assert first == second, (
            f"executor divergence: file backend {first!r}, "
            f"simulated twin {second!r}"
        )
        charges = self._charges(self._primary)
        twin_charges = self._charges(self._twin)
        assert charges == twin_charges, (
            "charged-I/O divergence (read_ios, write_ios, blocks_read, "
            f"blocks_written, retry_ios): file backend {charges}, "
            f"simulated twin {twin_charges}"
        )
        return first, raw

    # Dictionary protocol passthroughs.  The healthy oracle rules go
    # through these; faults never fire there, so apply() is always "ok".

    def _ok(self, op):
        (tag, _), raw = self.apply(op)
        assert tag == "ok", f"unexpected fault on a healthy twin: {raw!r}"
        return raw

    def lookup(self, key):
        return self._ok(lambda d: d.lookup(key))

    def insert(self, key, value=None):
        return self._ok(lambda d: d.insert(key, value))

    def delete(self, key):
        return self._ok(lambda d: d.delete(key))

    def batch_lookup(self, keys):
        return self._ok(lambda d: d.batch_lookup(keys))

    def batch_insert(self, items):
        return self._ok(lambda d: d.batch_insert(items))

    def batch_delete(self, keys):
        return self._ok(lambda d: d.batch_delete(keys))

    def __len__(self) -> int:
        sizes = (len(self._primary), len(self._twin))
        assert sizes[0] == sizes[1], (
            f"size divergence: file backend {sizes[0]}, twin {sizes[1]}"
        )
        return sizes[0]


class FileBackedOracleMachine(DictionaryOracleMachine):
    """Oracle machine whose dictionary runs on the real-file backend,
    twin-checked against an identically-parameterised simulated one."""

    def _build_pair(self, **kwargs) -> TwinCheckedDictionary:
        self._tmp = tempfile.mkdtemp(prefix="repro-model-exec-")
        primary = ParallelDiskDictionary(
            executor="file", executor_dir=self._tmp, **kwargs
        )
        twin = ParallelDiskDictionary(**kwargs)
        return TwinCheckedDictionary(primary, twin)

    def teardown(self) -> None:
        try:
            self.d.close()
        finally:
            shutil.rmtree(self._tmp, ignore_errors=True)
        super().teardown()


class FileBackedBasicModel(FileBackedOracleMachine):
    capacity = 48

    def build(self):
        return self._build_pair(
            universe_size=U, capacity=48, mode="basic", degree=8,
            block_items=16, seed=10,
        )


class FileBackedDynamicModel(FileBackedOracleMachine):
    """Rebuild boundaries on the file backend: every global rebuild
    spawns a fresh machine — and a fresh per-machine log directory —
    whose construction, migration and accounting must stay in lockstep
    with the simulated twin."""

    capacity = None

    def build(self):
        return self._build_pair(
            universe_size=U, capacity=8, mode="full-bandwidth", degree=8,
            sigma=SIGMA, block_items=16, unbounded=True, seed=11,
        )


class FileBackedKilledModel(RuleBasedStateMachine):
    """``kill_disks`` on the file backend, twin-checked.

    A hard outage window downs one disk mid-interleaving.  Operations
    touching it fail loudly with typed faults — and the *same* typed
    faults, on the same operations, with the same charged accounting,
    must come out of the file backend and the simulated twin (the fault
    clock is charged I/O, so the windows line up exactly).  Once the
    window passes, the disk serves its intact contents again, and the
    plain-dict oracle is consulted for every key whose mutations all
    completed cleanly.
    """

    CAPACITY = 48

    def __init__(self):
        super().__init__()
        self._tmp = tempfile.mkdtemp(prefix="repro-model-kill-")
        kwargs = dict(
            universe_size=U, capacity=self.CAPACITY, mode="basic",
            degree=8, block_items=16, seed=12,
        )
        primary = ParallelDiskDictionary(
            executor="file", executor_dir=self._tmp, **kwargs
        )
        twin = ParallelDiskDictionary(**kwargs)
        for d in (primary, twin):
            machine = d._machines[0]
            plan = FaultPlan.kill_disks(
                [1], num_disks=machine.num_disks, start=12, end=30
            ).shifted(machine.stats.total_ios)
            attach_faults(machine, plan.events)
        self.d = TwinCheckedDictionary(primary, twin)
        self.oracle: dict[int, int] = {}
        #: keys whose mutation faulted mid-op: membership is unknown (the
        #: twins still agree with each other — that is the invariant under
        #: test — but the plain oracle can no longer vouch for them).
        self._unknown: set[int] = set()

    def teardown(self) -> None:
        try:
            self.d.close()
        finally:
            shutil.rmtree(self._tmp, ignore_errors=True)
        super().teardown()

    def _room_for_one(self, key: int) -> bool:
        if key in self.oracle:
            return True
        # Conservative: unknown keys may well be present, so count them
        # against capacity to keep CapacityExceeded out of the picture.
        return len(self.oracle) + len(self._unknown) < self.CAPACITY

    @rule(key=KEYS, value=VALUES)
    def insert(self, key: int, value: int) -> None:
        if not self._room_for_one(key):
            return
        (tag, _), _ = self.d.apply(lambda d: d.insert(key, value))
        if tag == "ok":
            self.oracle[key] = value
            self._unknown.discard(key)
        else:
            self.oracle.pop(key, None)
            self._unknown.add(key)

    @rule(key=KEYS)
    def delete(self, key: int) -> None:
        (tag, _), _ = self.d.apply(lambda d: d.delete(key))
        if tag == "ok":
            self.oracle.pop(key, None)
            self._unknown.discard(key)
        else:
            self.oracle.pop(key, None)
            self._unknown.add(key)

    @rule(key=KEYS)
    def lookup(self, key: int) -> None:
        (tag, detail), _ = self.d.apply(lambda d: d.lookup(key))
        if tag == "ok" and key not in self._unknown:
            found, value, _cost = detail
            assert found == (key in self.oracle), (
                f"membership divergence on {key} after the outage window"
            )
            if found:
                assert value == self.oracle[key]

    @invariant()
    def twins_agree_on_size(self) -> None:
        len(self.d)  # asserts file backend == simulated twin internally


TestBasicModel = BasicModel.TestCase
TestFullBandwidthModel = FullBandwidthModel.TestCase
TestHeadModelModel = HeadModelModel.TestCase
TestRecursiveModel = RecursiveModel.TestCase
TestRebuildingBasicModel = RebuildingBasicModel.TestCase
TestRebuildingDynamicModel = RebuildingDynamicModel.TestCase
TestCachedBasicModel = CachedBasicModel.TestCase
TestCachedRebuildingDynamicModel = CachedRebuildingDynamicModel.TestCase
TestRecoveringBasicModel = RecoveringBasicModel.TestCase
TestFileBackedBasicModel = FileBackedBasicModel.TestCase
TestFileBackedDynamicModel = FileBackedDynamicModel.TestCase
TestFileBackedKilledModel = FileBackedKilledModel.TestCase

for _case in (
    TestBasicModel,
    TestFullBandwidthModel,
    TestHeadModelModel,
    TestRecursiveModel,
    TestRebuildingBasicModel,
    TestRebuildingDynamicModel,
    TestCachedBasicModel,
    TestCachedRebuildingDynamicModel,
    TestRecoveringBasicModel,
    TestFileBackedBasicModel,
    TestFileBackedDynamicModel,
    TestFileBackedKilledModel,
):
    _case.settings = MODEL_SETTINGS
del _case  # unittest TestCases are collected by reference, not just name
