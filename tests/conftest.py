"""Shared fixtures: machines and expanders at test-friendly sizes."""

from __future__ import annotations

import pytest

from repro.expanders.random_graph import SeededRandomExpander
from repro.pdm.machine import ParallelDiskHeadMachine, ParallelDiskMachine

UNIVERSE = 1 << 16


@pytest.fixture
def machine() -> ParallelDiskMachine:
    """8 disks x 16-item blocks x 64-bit items."""
    return ParallelDiskMachine(8, 16, item_bits=64)


@pytest.fixture
def wide_machine() -> ParallelDiskMachine:
    """32 disks x 32-item blocks (for two-group dictionary layouts)."""
    return ParallelDiskMachine(32, 32, item_bits=64)


@pytest.fixture
def head_machine() -> ParallelDiskHeadMachine:
    return ParallelDiskHeadMachine(8, 16, item_bits=64)


@pytest.fixture
def graph() -> SeededRandomExpander:
    """A 16-regular striped graph over a 2^16 universe."""
    return SeededRandomExpander(
        left_size=UNIVERSE, degree=16, stripe_size=128, seed=42
    )


@pytest.fixture
def small_graph() -> SeededRandomExpander:
    """Tiny graph for exhaustive checks."""
    return SeededRandomExpander(left_size=64, degree=6, stripe_size=8, seed=7)
