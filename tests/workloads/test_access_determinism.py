"""Seed-stability snapshots for the access-pattern generators.

The access generators draw from :class:`repro.bits.stream.MixStream`
(counter-mode splitmix64), so a ``(generator, seed)`` pair is one exact
key sequence forever.  These snapshots pin the streams across PRs: if one
fails, a change broke every recorded workload — either revert it or bump
the snapshots *deliberately*, in the same PR, with a changelog note.
"""

from collections import Counter

import pytest

from repro.bits.stream import MixStream
from repro.workloads.access import hit_miss_mix, uniform_accesses, zipf_accesses


class TestSnapshots:
    def test_mixstream_seed_42(self):
        s = MixStream(42)
        assert [s.next64() for _ in range(4)] == [
            6332618229526065668,
            18036798128018490698,
            8238092213399105094,
            7645025691661814288,
        ]

    def test_uniform_seed_0(self):
        assert uniform_accesses(range(50), 8, seed=0) == [
            27, 39, 30, 33, 11, 45, 21, 24,
        ]

    def test_uniform_seed_7(self):
        assert uniform_accesses(range(100), 10, seed=7) == [
            50, 67, 46, 82, 60, 34, 5, 11, 0, 80,
        ]

    def test_zipf_seed_0(self):
        assert zipf_accesses(range(50), 8, seed=0) == [
            0, 10, 5, 49, 40, 10, 1, 15,
        ]

    def test_zipf_seed_7(self):
        assert zipf_accesses(range(100), 10, seed=7) == [
            5, 95, 28, 57, 67, 1, 46, 0, 6, 1,
        ]

    def test_hit_miss_seed_0(self):
        assert hit_miss_mix(range(0, 50, 2), 500, 8, seed=0) == [
            98, 256, 251, 16, 42, 196, 51, 101,
        ]

    def test_hit_miss_seed_7(self):
        assert hit_miss_mix(range(0, 100, 2), 1000, 10, seed=7) == [
            317, 722, 12, 973, 62, 60, 730, 290, 52, 40,
        ]


class TestStreamProperties:
    def test_same_seed_same_stream(self):
        a, b = MixStream(5, 9), MixStream(5, 9)
        assert [a.next64() for _ in range(32)] == [
            b.next64() for _ in range(32)
        ]

    def test_generators_domain_separated(self):
        # Same seed, different generators: independent streams.
        keys = list(range(64))
        assert uniform_accesses(keys, 16, seed=3) != zipf_accesses(
            keys, 16, seed=3
        )

    def test_randrange_unbiased_range(self):
        s = MixStream(0)
        draws = [s.randrange(7) for _ in range(2000)]
        assert set(draws) == set(range(7))
        counts = Counter(draws)
        assert max(counts.values()) < 2 * min(counts.values())

    def test_random_unit_interval(self):
        s = MixStream(1)
        xs = [s.random() for _ in range(1000)]
        assert all(0.0 <= x < 1.0 for x in xs)
        assert 0.4 < sum(xs) / len(xs) < 0.6

    def test_shuffle_is_permutation_and_deterministic(self):
        items1 = list(range(20))
        items2 = list(range(20))
        MixStream(11).shuffle(items1)
        MixStream(11).shuffle(items2)
        assert items1 == items2
        assert sorted(items1) == list(range(20))
        assert items1 != list(range(20))

    def test_weighted_skew(self):
        s = MixStream(2)
        cumulative = [8.0, 9.0, 10.0]  # weights 8, 1, 1
        draws = Counter(s.weighted(cumulative) for _ in range(2000))
        assert draws[0] > draws[1] + draws[2]
        assert set(draws) <= {0, 1, 2}

    def test_weighted_rejects_bad_table(self):
        s = MixStream(3)
        with pytest.raises(ValueError):
            s.weighted([])
        with pytest.raises(ValueError):
            s.weighted([0.0])

    def test_randrange_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MixStream(0).randrange(0)

    def test_zipf_is_skewed(self):
        counts = Counter(zipf_accesses(range(100), 5000, seed=1))
        ranked = counts.most_common()
        assert ranked[0][0] == 0  # rank-1 key dominates
        assert ranked[0][1] > 3 * counts[10]
