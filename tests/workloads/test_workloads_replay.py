"""Tests for workload generation and the replay driver."""

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.facade import ParallelDiskDictionary
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.replay import Workload, replay

U = 1 << 16


def make_dict(capacity=100):
    machine = ParallelDiskMachine(16, 32)
    return BasicDictionary(
        machine, universe_size=U, capacity=capacity, degree=16, seed=1
    )


class TestWorkloadGeneration:
    def test_deterministic(self):
        a = Workload.generate(
            universe_size=U, operations=200, capacity=50, seed=4
        )
        b = Workload.generate(
            universe_size=U, operations=200, capacity=50, seed=4
        )
        assert a.ops == b.ops

    def test_respects_capacity(self):
        w = Workload.generate(
            universe_size=U, operations=500, capacity=30, seed=2,
            insert_fraction=0.9, delete_fraction=0.0,
        )
        live = set()
        for kind, key, _ in w.ops:
            if kind == "insert":
                live.add(key)
            elif kind == "delete":
                live.discard(key)
            assert len(live) <= 30

    def test_op_mix(self):
        w = Workload.generate(
            universe_size=U, operations=1000, capacity=400, seed=3
        )
        kinds = [op[0] for op in w.ops]
        assert kinds.count("insert") > 100
        assert kinds.count("lookup") > 100
        assert kinds.count("delete") > 10

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            Workload.generate(
                universe_size=U, operations=10, capacity=5,
                insert_fraction=0.8, delete_fraction=0.4,
            )


class TestReplay:
    def test_replay_verifies_and_summarises(self):
        w = Workload.generate(
            universe_size=U, operations=400, capacity=80, seed=5
        )
        summary = replay(make_dict(), w)
        assert summary.operations == 400
        assert summary.avg("hit") == 1.0
        assert summary.worst("insert") == 2
        assert summary.total_ios > 0

    def test_replay_works_across_structures(self):
        w = Workload.generate(
            universe_size=U, operations=200, capacity=40, seed=6,
            value_bits=20,
        )
        for mode in ("basic", "full-bandwidth", "head-model"):
            d = ParallelDiskDictionary(
                universe_size=U, capacity=40, mode=mode, sigma=20, seed=6
            )
            summary = replay(d, w)
            assert summary.operations == 200

    def test_replay_catches_broken_dictionary(self):
        class Liar(BasicDictionary):
            def lookup(self, key):
                result = super().lookup(key)
                from repro.core.interface import LookupResult

                return LookupResult(
                    not result.found, result.value, result.cost
                )

        machine = ParallelDiskMachine(16, 32)
        liar = Liar(
            machine, universe_size=U, capacity=50, degree=16, seed=1
        )
        w = Workload.generate(
            universe_size=U, operations=50, capacity=20, seed=7
        )
        with pytest.raises(AssertionError):
            replay(liar, w)

    def test_universe_mismatch_rejected(self):
        w = Workload.generate(
            universe_size=U * 2, operations=10, capacity=5, seed=8
        )
        with pytest.raises(ValueError):
            replay(make_dict(), w)


class TestFacadeNewModes:
    @pytest.mark.parametrize("mode", ["one-probe-recursive", "head-model"])
    def test_modes_roundtrip(self, mode):
        d = ParallelDiskDictionary(
            universe_size=U, capacity=60, mode=mode, sigma=24, seed=9,
            degree=12,
        )
        import random

        rng = random.Random(0)
        ref = {}
        while len(ref) < 60:
            k = rng.randrange(U)
            v = rng.randrange(1 << 24) if mode != "head-model" else ("v", k)
            d.insert(k, v)
            ref[k] = v
        assert all(d.lookup(k).value == v for k, v in ref.items())

    def test_recursive_mode_is_one_probe(self):
        d = ParallelDiskDictionary(
            universe_size=U, capacity=40, mode="one-probe-recursive",
            sigma=24, seed=9, degree=12,
        )
        for k in range(40):
            d.insert(k, k)
        assert all(d.lookup(k).cost.total_ios == 1 for k in range(40))
