"""Tests for workload generators."""

import pytest

from repro.hashing.families import PolynomialHashFamily
from repro.workloads.access import hit_miss_mix, uniform_accesses, zipf_accesses
from repro.workloads.filesystem import FileSystemWorkload
from repro.workloads.keys import (
    adversarial_keys_for_hash,
    clustered_keys,
    uniform_keys,
)


class TestKeyGenerators:
    def test_uniform_distinct_and_in_range(self):
        keys = uniform_keys(1000, 200, seed=1)
        assert len(keys) == len(set(keys)) == 200
        assert all(0 <= k < 1000 for k in keys)

    def test_uniform_deterministic(self):
        assert uniform_keys(1000, 50, seed=2) == uniform_keys(1000, 50, seed=2)

    def test_uniform_too_many_rejected(self):
        with pytest.raises(ValueError):
            uniform_keys(10, 11)

    def test_clustered_shape(self):
        keys = clustered_keys(100_000, 100, clusters=4, seed=3)
        assert len(keys) == len(set(keys)) == 100
        # Consecutive runs: many adjacent pairs.
        sorted_keys = sorted(keys)
        adjacent = sum(
            1 for a, b in zip(sorted_keys, sorted_keys[1:]) if b == a + 1
        )
        assert adjacent >= 80

    def test_adversarial_keys_collide(self):
        h = PolynomialHashFamily(
            universe_size=1 << 16, range_size=64, seed=7
        )
        bad = adversarial_keys_for_hash(h, 1 << 16, 20)
        assert len({h(k) for k in bad}) == 1

    def test_adversarial_scan_limit(self):
        h = PolynomialHashFamily(
            universe_size=1 << 16, range_size=64, seed=7
        )
        with pytest.raises(ValueError):
            adversarial_keys_for_hash(h, 1 << 16, 10**6, scan_limit=100)


class TestAccessPatterns:
    def test_uniform_accesses(self):
        seq = uniform_accesses([1, 2, 3], 100, seed=1)
        assert len(seq) == 100
        assert set(seq) <= {1, 2, 3}

    def test_zipf_skew(self):
        keys = list(range(100))
        seq = zipf_accesses(keys, 5000, s=1.5, seed=2)
        from collections import Counter

        counts = Counter(seq)
        top = counts.most_common(1)[0][1]
        assert top > 5000 / 20  # the head is heavy

    def test_hit_miss_mix_fractions(self):
        present = list(range(100))
        seq = hit_miss_mix(present, 10_000, 1000, hit_fraction=0.7, seed=3)
        hits = sum(1 for p in seq if p in set(present))
        assert 600 < hits < 800

    def test_hit_miss_misses_are_absent(self):
        present = list(range(50))
        seq = hit_miss_mix(present, 10_000, 300, hit_fraction=0.0, seed=4)
        assert all(p not in set(present) for p in seq)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            hit_miss_mix([1], 10, 5, hit_fraction=1.5)


class TestFileSystemWorkload:
    def test_key_encoding_roundtrip(self):
        fs = FileSystemWorkload(num_files=50, max_blocks_per_file=64, seed=1)
        key = fs.key_for(7, 33)
        assert fs.split_key(key) == (7, 33)

    def test_universe_and_totals(self):
        fs = FileSystemWorkload(num_files=50, max_blocks_per_file=64, seed=1)
        assert fs.universe_size == 50 * 64
        assert 50 <= fs.total_blocks <= 50 * 64

    def test_all_keys_valid(self):
        fs = FileSystemWorkload(num_files=20, max_blocks_per_file=32, seed=2)
        keys = list(fs.all_keys())
        assert len(keys) == fs.total_blocks
        for key in keys:
            fid, block = fs.split_key(key)
            assert block < fs.files[fid].num_blocks

    def test_random_reads_hit_existing_blocks(self):
        fs = FileSystemWorkload(num_files=20, max_blocks_per_file=32, seed=2)
        existing = set(fs.all_keys())
        for key in fs.random_reads(500, seed=3):
            assert key in existing

    def test_sequential_scan(self):
        fs = FileSystemWorkload(num_files=5, max_blocks_per_file=16, seed=4)
        scan = fs.sequential_scan(2)
        assert scan == sorted(scan)
        assert len(scan) == fs.files[2].num_blocks

    def test_size_skew(self):
        fs = FileSystemWorkload(
            num_files=500, max_blocks_per_file=128, seed=5
        )
        sizes = sorted(f.num_blocks for f in fs.files)
        # Most files small, a few large.
        assert sizes[len(sizes) // 2] < sizes[-1] / 2

    def test_bad_args(self):
        with pytest.raises(ValueError):
            FileSystemWorkload(num_files=0)
        fs = FileSystemWorkload(num_files=3, seed=0)
        with pytest.raises(ValueError):
            fs.key_for(3, 0)
