"""Tests for the name codec, the parameter advisor and the dict-like API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_dict import BasicDictionary
from repro.core.params import suggest
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.names import NameCodec


class TestNameCodec:
    def test_roundtrip_simple(self):
        codec = NameCodec(max_name_bytes=16)
        for name in ("", "a", "inode", "some_file.txt", "ünïcødé"):
            assert codec.decode_name(codec.encode_name(name)) == name

    def test_name_block_key_roundtrip(self):
        codec = NameCodec(max_name_bytes=8, max_blocks=1024)
        key = codec.key("mail.db", 77)
        assert codec.split(key) == ("mail.db", 77)

    def test_injective_across_lengths(self):
        """Length-prefixing: 'a' and 'a\\x00'-style confusions impossible."""
        codec = NameCodec(max_name_bytes=4)
        ids = set()
        names = ["", "a", "b", "aa", "ab", "ba", "aaa", "a" * 4]
        for name in names:
            ids.add(codec.encode_name(name))
        assert len(ids) == len(names)

    def test_too_long_rejected(self):
        codec = NameCodec(max_name_bytes=4)
        with pytest.raises(ValueError):
            codec.encode_name("abcde")

    def test_block_range_enforced(self):
        codec = NameCodec(max_blocks=8)
        with pytest.raises(ValueError):
            codec.key("x", 8)

    def test_universe_size_consistency(self):
        codec = NameCodec(max_name_bytes=2, max_blocks=4)
        assert codec.universe_size == (1 + 256 + 256**2) * 4
        key = codec.key("zz", 3)
        assert key < codec.universe_size

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=8), st.integers(0, 1023))
    def test_roundtrip_property(self, name, block):
        codec = NameCodec(max_name_bytes=32, max_blocks=1024)
        key = codec.key(name, block)
        back_name, back_block = codec.split(key)
        assert (back_name, back_block) == (name, block)

    def test_keys_usable_in_dictionary(self):
        codec = NameCodec(max_name_bytes=8, max_blocks=256)
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine,
            universe_size=codec.universe_size,
            capacity=100,
            degree=16,
            seed=1,
        )
        d.insert(codec.key("passwd", 0), "root:x:0:0")
        result = d.lookup(codec.key("passwd", 0))
        assert result.found and result.cost.total_ios == 1
        assert not d.lookup(codec.key("passwd", 1)).found


class TestParameterAdvisor:
    def test_small_records_pick_basic(self):
        s = suggest(universe_size=1 << 20, capacity=10_000)
        assert s.mode == "basic"
        assert s.predicted_lookup_worst == 1.0
        assert s.degree == 40

    def test_medium_records_pick_dynamic(self):
        s = suggest(universe_size=1 << 20, capacity=1000, sigma=4096)
        assert s.mode == "full-bandwidth"
        assert 1.0 < s.predicted_lookup_avg < 1.5
        assert s.disks == 2 * s.degree

    def test_huge_records_pick_pointer_store(self):
        s = suggest(
            universe_size=1 << 20, capacity=100, sigma=10**7,
            block_items=32,
        )
        assert s.mode == "pointer-store"
        assert s.predicted_lookup_worst == 2.0

    def test_summary_renders(self):
        s = suggest(universe_size=1 << 16, capacity=100)
        assert "predicted lookup" in s.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            suggest(universe_size=1, capacity=10)

    def test_suggestion_actually_works(self):
        """End to end: build the suggested configuration and check the
        predicted lookup cost is achieved."""
        from repro.core.facade import ParallelDiskDictionary

        s = suggest(universe_size=1 << 16, capacity=64)
        d = ParallelDiskDictionary(
            universe_size=1 << 16,
            capacity=64,
            mode=s.mode,
            degree=s.degree,
            block_items=s.block_items,
        )
        for k in range(64):
            d.insert(k, k)
        worst = max(d.lookup(k).cost.total_ios for k in range(64))
        assert worst <= s.predicted_lookup_worst


class TestDictLikeAPI:
    @pytest.fixture
    def d(self):
        machine = ParallelDiskMachine(16, 32)
        return BasicDictionary(
            machine, universe_size=1 << 16, capacity=50, degree=16, seed=2
        )

    def test_setitem_getitem(self, d):
        d[5] = "five"
        assert d[5] == "five"

    def test_getitem_missing_raises(self, d):
        with pytest.raises(KeyError):
            d[5]

    def test_get_with_default(self, d):
        assert d.get(5, "fallback") == "fallback"
        d[5] = "x"
        assert d.get(5) == "x"

    def test_delitem(self, d):
        d[5] = "x"
        del d[5]
        assert 5 not in d
        with pytest.raises(KeyError):
            del d[5]

    def test_items(self, d):
        for k in (1, 2, 3):
            d[k] = k * 10
        assert dict(d.items()) == {1: 10, 2: 20, 3: 30}
