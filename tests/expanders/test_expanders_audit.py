"""Tests for the consolidated expansion audit."""

import random

import pytest

from repro.expanders.audit import expansion_audit
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.verify import (
    neighbor_set,
    unique_neighbor_set,
    well_assignable_subset,
)

U = 1 << 16


@pytest.fixture
def setup():
    g = SeededRandomExpander(
        left_size=U, degree=16, stripe_size=1024, seed=8
    )
    S = random.Random(8).sample(range(U), 300)
    return g, S


class TestExpansionAudit:
    def test_matches_individual_functions(self, setup):
        g, S = setup
        audit = expansion_audit(g, S, lambdas=(1 / 3, 1 / 2))
        assert audit.gamma == len(neighbor_set(g, S))
        assert audit.phi == len(unique_neighbor_set(g, S))
        assert audit.assignable[1 / 3][0] == len(
            well_assignable_subset(g, S, 1 / 3)
        )
        assert audit.assignable[1 / 2][0] == len(
            well_assignable_subset(g, S, 1 / 2)
        )

    def test_lemma_flags(self, setup):
        g, S = setup
        audit = expansion_audit(g, S)
        assert audit.lemma4_holds
        assert audit.lemma5_holds

    def test_overlap_optional(self, setup):
        g, S = setup
        without = expansion_audit(g, S)
        assert without.max_overlap is None
        assert without.majority_margin is None
        with_overlap = expansion_audit(g, S[:80], with_overlap=True)
        assert with_overlap.max_overlap is not None
        assert with_overlap.majority_margin > 0

    def test_summary_text(self, setup):
        g, S = setup
        text = expansion_audit(g, S, with_overlap=False).summary()
        assert "lemma4" in text and "OK" in text

    def test_duplicates_collapsed(self, setup):
        g, S = setup
        a = expansion_audit(g, S)
        b = expansion_audit(g, S + S[:50])
        assert a.n == b.n == len(S)
        assert a.gamma == b.gamma

    def test_empty_rejected(self, setup):
        g, _ = setup
        with pytest.raises(ValueError):
            expansion_audit(g, [])

    def test_larger_lambda_admits_more_keys(self, setup):
        g, S = setup
        audit = expansion_audit(g, S, lambdas=(0.2, 0.6))
        # A laxer threshold (larger lambda) can only grow S'.
        assert audit.assignable[0.6][0] >= audit.assignable[0.2][0]
