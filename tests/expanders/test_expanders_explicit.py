"""Tests for Theorem 9 base expanders, the telescope product (Lemmas 10/11),
the Theorem 12 semi-explicit construction and trivial striping."""

import pytest

from repro.expanders.explicit import TabulatedExpander, find_base_expander
from repro.expanders.random_graph import SeededFlatExpander
from repro.expanders.semi_explicit import (
    SemiExplicitExpander,
    theorem9_advice_words,
)
from repro.expanders.striping import TriviallyStripedExpander
from repro.expanders.telescope import TelescopeProduct, _remap_multi_edges
from repro.expanders.verify import neighbor_set, verify_expansion_sampled
from repro.pdm.memory import InternalMemory


class TestTabulatedExpander:
    def test_table_lookup(self):
        t = TabulatedExpander([(0, 1), (2, 3)], 4)
        assert t.neighbors(0) == (0, 1)
        assert t.left_size == 2 and t.degree == 2

    def test_memory_charged_and_released(self):
        mem = InternalMemory()
        t = TabulatedExpander([(0, 1)] * 10, 4, memory=mem)
        assert mem.used_words == t.memory_words == 20
        t.release()
        assert mem.used_words == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TabulatedExpander([], 4)
        with pytest.raises(ValueError):
            TabulatedExpander([(0,), (0, 1)], 4)  # ragged
        with pytest.raises(ValueError):
            TabulatedExpander([(9,)], 4)  # out of range


class TestFindBaseExpander:
    def test_finds_and_certifies(self):
        mem = InternalMemory()
        g = find_base_expander(
            u=40, v=36, d=4, N=3, eps=0.5, seed=0, memory=mem
        )
        assert g.left_size == 40 and g.right_size == 36
        assert mem.used_words == g.memory_words
        report = verify_expansion_sampled(g, 3, 0.5, trials=200, seed=1)
        assert report.is_expander

    def test_infeasible_raises(self):
        with pytest.raises(RuntimeError):
            # Expanding 8-sets to (1-0.01)*2*8 ~ 15.8 of 8 vertices: absurd.
            find_base_expander(
                u=100, v=8, d=2, N=8, eps=0.01, seed=0, max_attempts=3
            )


class TestMultiEdgeRemap:
    def test_no_duplicates_after_remap(self):
        out = _remap_multi_edges([3, 3, 3, 5], 10)
        assert len(set(out)) == len(out) == 4

    def test_distinct_input_untouched(self):
        assert _remap_multi_edges([1, 5, 7], 10) == (1, 5, 7)

    def test_deterministic(self):
        assert _remap_multi_edges([2, 2, 4], 9) == _remap_multi_edges(
            [2, 2, 4], 9
        )


class TestTelescopeProduct:
    def test_degree_multiplies(self):
        s1 = SeededFlatExpander(left_size=100, degree=3, right_size=50, seed=1)
        s2 = SeededFlatExpander(left_size=50, degree=4, right_size=20, seed=2)
        t = TelescopeProduct([s1, s2])
        assert t.degree == 12
        assert t.left_size == 100 and t.right_size == 20
        assert len(t.neighbors(7)) == 12

    def test_stage_mismatch_rejected(self):
        s1 = SeededFlatExpander(left_size=100, degree=3, right_size=50, seed=1)
        s2 = SeededFlatExpander(left_size=49, degree=4, right_size=20, seed=2)
        with pytest.raises(ValueError):
            TelescopeProduct([s1, s2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TelescopeProduct([])

    def test_composed_eps_formula(self):
        assert TelescopeProduct.composed_eps([0.1, 0.2]) == pytest.approx(
            1 - 0.9 * 0.8
        )

    def test_neighbors_within_final_right_side(self):
        s1 = SeededFlatExpander(left_size=200, degree=3, right_size=80, seed=1)
        s2 = SeededFlatExpander(left_size=80, degree=3, right_size=33, seed=2)
        t = TelescopeProduct([s1, s2])
        for x in range(0, 200, 17):
            assert all(0 <= y < 33 for y in t.neighbors(x))

    def test_remap_never_shrinks_neighbor_sets(self):
        """Lemma 10's remark: remapping cannot decrease expansion."""
        s1 = SeededFlatExpander(left_size=100, degree=3, right_size=60, seed=3)
        s2 = SeededFlatExpander(left_size=60, degree=3, right_size=40, seed=4)
        t = TelescopeProduct([s1, s2])
        for x in range(0, 100, 9):
            raw = set()
            for y in s1.neighbors(x):
                raw.update(s2.neighbors(y))
            assert len(set(t.neighbors(x))) >= len(raw)


class TestSemiExplicit:
    def test_build_reports_resources(self):
        mem = InternalMemory()
        se = SemiExplicitExpander.build(
            u=1 << 16, N=4, eps=0.5, beta=0.5, seed=3,
            certify_trials=60, memory=mem,
        )
        assert se.right_size < (1 << 16)
        assert len(se.stages) >= 1
        assert se.memory_words == mem.used_words
        assert 0 < se.composed_eps < 1
        # Degree is polylog-scale, far below any table of the universe.
        assert se.degree < (1 << 16) // 100

    def test_composed_expander_expands_sampled(self):
        se = SemiExplicitExpander.build(
            u=1 << 16, N=4, eps=0.5, beta=0.5, seed=3, certify_trials=60
        )
        report = verify_expansion_sampled(
            se.expander, 4, se.composed_eps, trials=40, seed=9
        )
        assert report.is_expander

    def test_too_small_universe_raises(self):
        with pytest.raises((RuntimeError, ValueError)):
            SemiExplicitExpander.build(
                u=40, N=30, eps=0.3, beta=0.5, seed=0, certify=False
            )

    def test_advice_formula(self):
        assert theorem9_advice_words(1000, 100, 0.5) == (1000 / 50) ** 2
        with pytest.raises(ValueError):
            theorem9_advice_words(0, 10, 0.5)


class TestTrivialStriping:
    def test_geometry_blowup_is_d(self):
        flat = SeededFlatExpander(
            left_size=500, degree=5, right_size=40, seed=6
        )
        striped = TriviallyStripedExpander(flat)
        assert striped.right_size == 5 * 40
        assert striped.space_blowup == 5
        assert striped.stripe_size == 40

    def test_stripe_i_holds_flat_neighbor_i(self):
        flat = SeededFlatExpander(
            left_size=500, degree=5, right_size=40, seed=6
        )
        striped = TriviallyStripedExpander(flat)
        for x in range(0, 500, 23):
            pairs = striped.striped_neighbors(x)
            assert [i for (i, j) in pairs] == list(range(5))
            assert [j for (i, j) in pairs] == list(flat.neighbors(x))

    def test_striping_never_shrinks_neighbor_sets(self):
        flat = SeededFlatExpander(
            left_size=300, degree=4, right_size=30, seed=8
        )
        striped = TriviallyStripedExpander(flat)
        S = list(range(0, 300, 7))
        assert len(neighbor_set(striped, S)) >= len(neighbor_set(flat, S))
