"""Unit tests for expander interfaces and parameter records."""

import pytest

from repro.expanders.base import ExpanderParams, NEpsParams


class TestExpanderParams:
    def test_valid(self):
        p = ExpanderParams(d=16, eps=1 / 12, delta=0.5)
        assert p.d == 16

    def test_eps_below_one_over_d_rejected(self):
        # The paper: eps cannot be smaller than 1/d for compressing graphs.
        with pytest.raises(ValueError):
            ExpanderParams(d=4, eps=0.1, delta=0.5)

    def test_eps_out_of_range(self):
        with pytest.raises(ValueError):
            ExpanderParams(d=16, eps=0.0, delta=0.5)
        with pytest.raises(ValueError):
            ExpanderParams(d=16, eps=1.0, delta=0.5)

    def test_delta_out_of_range(self):
        with pytest.raises(ValueError):
            ExpanderParams(d=16, eps=0.5, delta=0.0)

    def test_guaranteed_neighbors_takes_min(self):
        p = ExpanderParams(d=10, eps=0.2, delta=0.5)
        v = 100
        # Small set: the (1-eps)*d*s branch.
        assert p.guaranteed_neighbors(2, v) == 16
        # Huge set: the (1-delta)*v branch.
        assert p.guaranteed_neighbors(1000, v) == 50


class TestNEpsParams:
    def test_valid(self):
        p = NEpsParams(N=100, eps=0.25)
        assert p.guaranteed_neighbors(10, d=8) == 60

    def test_oversized_set_rejected(self):
        p = NEpsParams(N=10, eps=0.25)
        with pytest.raises(ValueError):
            p.guaranteed_neighbors(11, d=8)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            NEpsParams(N=0, eps=0.5)
        with pytest.raises(ValueError):
            NEpsParams(N=5, eps=1.5)


class TestStripedFlatConsistency:
    def test_flat_ids_follow_stripe_layout(self, graph):
        striped = graph.striped_neighbors(123)
        flat = graph.neighbors(123)
        assert len(striped) == len(flat) == graph.degree
        for (i, j), y in zip(striped, flat):
            assert y == i * graph.stripe_size + j

    def test_one_neighbor_per_stripe(self, graph):
        striped = graph.striped_neighbors(5)
        assert [i for (i, j) in striped] == list(range(graph.degree))

    def test_neighbor_accessor(self, graph):
        assert graph.neighbor(9, 3) == graph.neighbors(9)[3]
        assert graph.striped_neighbor(9, 3) == graph.striped_neighbors(9)[3]

    def test_out_of_universe_rejected(self, graph):
        with pytest.raises(IndexError):
            graph.neighbors(graph.left_size)
        with pytest.raises(IndexError):
            graph.neighbors(-1)
