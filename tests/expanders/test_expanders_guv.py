"""Tests for the GUV (Parvaresh–Vardy) truly explicit striped expander."""

import math

import pytest

from repro.expanders.guv import (
    GUVExpander,
    _poly_mod,
    _poly_mul,
    _poly_powmod,
    find_irreducible,
    is_irreducible,
)
from repro.expanders.verify import (
    verify_expansion_exact,
    verify_expansion_sampled,
)


class TestFieldArithmetic:
    def test_poly_mul(self):
        # (1 + x)(1 + x) = 1 + 2x + x^2 over F_5
        assert _poly_mul((1, 1), (1, 1), 5) == (1, 2, 1)

    def test_poly_mul_reduces_mod_p(self):
        # (2x)(3x) = 6x^2 = x^2 over F_5
        assert _poly_mul((0, 2), (0, 3), 5) == (0, 0, 1)

    def test_poly_mod(self):
        # x^2 mod (x^2 + 1) = -1 = p-1 over F_7
        assert _poly_mod((0, 0, 1), (1, 0, 1), 7) == (6,)

    def test_poly_powmod_matches_repeated_mul(self):
        e = (1, 0, 1)  # x^2 + 1 over F_7 (irreducible: -1 not a square)
        f = (3, 2)
        direct = (1,)
        for _ in range(5):
            direct = _poly_mod(_poly_mul(direct, f, 7), e, 7)
        assert _poly_powmod(f, 5, e, 7) == direct

    def test_powmod_zero_exponent(self):
        assert _poly_powmod((3, 2), 0, (1, 0, 1), 7) == (1,)


class TestIrreducibility:
    def test_known_irreducible(self):
        # x^2 + 1 over F_7: -1 is a non-residue mod 7.
        assert is_irreducible((1, 0, 1), 7)

    def test_known_reducible(self):
        # x^2 - 1 = (x-1)(x+1) over any F_p.
        assert not is_irreducible((6, 0, 1), 7)

    def test_degree_three(self):
        # x^3 + x + 1 over F_2 is the classic irreducible.
        assert is_irreducible((1, 1, 0, 1), 2)
        # x^3 + 1 = (x+1)(x^2+x+1) over F_2.
        assert not is_irreducible((1, 0, 0, 1), 2)

    @pytest.mark.parametrize("p,n", [(5, 2), (7, 2), (5, 3), (3, 4)])
    def test_find_irreducible_has_no_roots(self, p, n):
        e = find_irreducible(p, n)
        assert len(e) == n + 1 and e[-1] == 1
        for a in range(p):
            val = 0
            for c in reversed(e):
                val = (val * a + c) % p
            assert val != 0  # no linear factors

    def test_find_irreducible_deterministic(self):
        assert find_irreducible(11, 3) == find_irreducible(11, 3)

    def test_matches_brute_force_count_small(self):
        """Number of monic irreducible quadratics over F_p is p(p-1)/2."""
        p = 5
        count = sum(
            1
            for b in range(p)
            for c in range(p)
            if is_irreducible((c, b, 1), p)
        )
        assert count == p * (p - 1) // 2


class TestGUVExpander:
    def test_geometry(self):
        g = GUVExpander(p=13, n=2, m=2, h=2)
        assert g.left_size == 169
        assert g.degree == 13
        assert g.stripe_size == 169
        assert g.right_size == 13 * 169
        assert g.N_guarantee == 4

    def test_striped_one_neighbor_per_stripe(self):
        g = GUVExpander(p=13, n=2, m=2, h=2)
        for x in range(0, 169, 17):
            pairs = g.striped_neighbors(x)
            assert [i for (i, j) in pairs] == list(range(13))
            assert all(0 <= j < g.stripe_size for (_i, j) in pairs)

    def test_first_coordinate_of_index_is_f_of_y(self):
        """Γ(f, y) starts with f(y): check against direct evaluation."""
        g = GUVExpander(p=13, n=2, m=2, h=2)
        x = 5 + 7 * 13  # f = 5 + 7X
        for (y, index) in g.striped_neighbors(x):
            assert index % 13 == (5 + 7 * y) % 13

    def test_no_randomness_anywhere(self):
        a = GUVExpander(p=13, n=2, m=2, h=2)
        b = GUVExpander(p=13, n=2, m=2, h=2)
        assert all(
            a.striped_neighbors(x) == b.striped_neighbors(x)
            for x in range(0, 169, 7)
        )
        assert a.is_truly_explicit

    def test_expansion_exact_tiny(self):
        g = GUVExpander(p=13, n=2, m=2, h=2)
        report = verify_expansion_exact(
            g, 2, g.eps_guarantee, max_sets=20_000
        )
        assert report.is_expander

    def test_expansion_sampled_at_guarantee(self):
        g = GUVExpander(p=23, n=2, m=2, h=3)
        report = verify_expansion_sampled(
            g, g.N_guarantee, g.eps_guarantee, trials=300, seed=1
        )
        assert report.is_expander

    def test_memory_is_polylog(self):
        g = GUVExpander(p=97, n=4, m=4, h=2)
        assert g.evaluation_memory_words() == 5 + 16

    def test_validation(self):
        with pytest.raises(ValueError):
            GUVExpander(p=12, n=2, m=2, h=2)  # not prime
        with pytest.raises(ValueError):
            GUVExpander(p=13, n=2, m=2, h=13)  # h >= p
        with pytest.raises(ValueError):
            GUVExpander(p=13, n=0, m=2, h=2)

    def test_design_meets_requirements(self):
        g = GUVExpander.design(
            min_universe=1 << 20, min_N=16, max_eps=0.35
        )
        assert g.left_size >= 1 << 20
        assert g.N_guarantee >= 16
        assert g.eps_guarantee <= 0.35

    def test_design_infeasible(self):
        with pytest.raises(ValueError):
            GUVExpander.design(
                min_universe=1 << 60, min_N=1 << 20, max_eps=0.01,
                max_degree=64,
            )

    def test_pairwise_agreement_bound_m1(self):
        """With m = 1 the construction is the Reed-Solomon graph: two
        distinct polynomials of degree < n agree on at most n-1 points, so
        any two left vertices share at most n-1 neighbors — the algebraic
        root of the expansion guarantee, checked exhaustively."""
        g = GUVExpander(p=11, n=3, m=1, h=2)
        import itertools

        worst = 0
        for x, y in itertools.combinations(range(0, g.left_size, 37), 2):
            shared = len(
                set(g.neighbors(x)) & set(g.neighbors(y))
            )
            worst = max(worst, shared)
        assert worst <= g.n - 1

    def test_folding_only_reduces_agreement(self):
        """Adding folded coordinates (larger m) can only shrink the set of
        evaluation points where two keys fully agree."""
        g1 = GUVExpander(p=11, n=2, m=1, h=2)
        g2 = GUVExpander(p=11, n=2, m=2, h=2)
        for x, y in ((0, 13), (5, 100), (7, 99)):
            agree1 = {
                i for (i, j) in g1.striped_neighbors(x)
                if g1.striped_neighbors(y)[i] == (i, j)
            }
            agree2 = {
                i for (i, j) in g2.striped_neighbors(x)
                if g2.striped_neighbors(y)[i] == (i, j)
            }
            assert agree2 <= agree1


class TestGUVDictionaryEndToEnd:
    """The paper's closing hope, realised: a dictionary with NO randomness
    at all — the expander is canonical, the algorithms deterministic."""

    def test_basic_dictionary_on_guv(self):
        from repro.core.basic_dict import BasicDictionary
        from repro.pdm.machine import ParallelDiskMachine

        g = GUVExpander(p=29, n=3, m=2, h=2)  # u = 24389, d = 29, N = 4
        machine = ParallelDiskMachine(g.degree, 32)
        d = BasicDictionary(
            machine,
            universe_size=g.left_size,
            capacity=g.N_guarantee,
            graph=g,
        )
        keys = [3, 888, 24000, 12345]
        for i, k in enumerate(keys):
            assert d.insert(k, i * 11).total_ios == 2
        for i, k in enumerate(keys):
            result = d.lookup(k)
            assert result.found and result.value == i * 11
            assert result.cost.total_ios == 1
        assert not d.lookup(7).found

    def test_static_dictionary_on_guv(self):
        from repro.core.static_dict import StaticDictionary
        from repro.pdm.machine import ParallelDiskMachine

        g = GUVExpander(p=29, n=3, m=2, h=2)
        machine = ParallelDiskMachine(g.degree, 32)
        items = {3: 1, 888: 2, 24000: 3, 12345: 4}
        d = StaticDictionary.build(
            machine,
            items,
            universe_size=g.left_size,
            sigma=8,
            case="b",
            graph=g,
        )
        assert all(d.lookup(k).value == v for k, v in items.items())
        assert all(d.lookup(k).cost.total_ios == 1 for k in items)
