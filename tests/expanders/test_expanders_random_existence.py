"""Tests for seeded random expanders and the existence calculations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expanders.existence import (
    expansion_failure_log2_prob,
    log2_comb,
    practical_params,
    recommended_degree,
    recommended_params,
)
from repro.expanders.random_graph import (
    SeededFlatExpander,
    SeededRandomExpander,
    splitmix64,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_64_bit_range(self):
        for z in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(z) < 2**64

    @given(st.integers(0, 2**64 - 1))
    def test_no_trivial_fixed_points(self, z):
        # splitmix64 is a bijection far from identity on typical inputs;
        # at minimum it must not be the identity map on our keys.
        assert splitmix64(z) != z or z == splitmix64(z) == 0 or True
        # the real check: two consecutive inputs map far apart
        assert splitmix64(z) != splitmix64((z + 1) & (2**64 - 1))


class TestSeededRandomExpander:
    def test_determinism_across_instances(self):
        a = SeededRandomExpander(
            left_size=1000, degree=8, stripe_size=50, seed=3
        )
        b = SeededRandomExpander(
            left_size=1000, degree=8, stripe_size=50, seed=3
        )
        assert all(a.neighbors(x) == b.neighbors(x) for x in range(100))

    def test_different_seeds_differ(self):
        a = SeededRandomExpander(
            left_size=1000, degree=8, stripe_size=50, seed=3
        )
        b = SeededRandomExpander(
            left_size=1000, degree=8, stripe_size=50, seed=4
        )
        assert any(a.neighbors(x) != b.neighbors(x) for x in range(100))

    def test_neighbors_in_range(self, graph):
        for x in range(0, graph.left_size, 997):
            for (i, j) in graph.striped_neighbors(x):
                assert 0 <= i < graph.degree
                assert 0 <= j < graph.stripe_size

    def test_cache_consistency(self, graph):
        first = graph.striped_neighbors(77)
        again = graph.striped_neighbors(77)
        assert first is again  # cached object

    def test_cache_eviction_keeps_correctness(self):
        g = SeededRandomExpander(
            left_size=100, degree=4, stripe_size=10, seed=1, cache_size=4
        )
        reference = {x: g.striped_neighbors(x) for x in range(10)}
        for x in range(100):
            g.striped_neighbors(x)
        assert all(g.striped_neighbors(x) == reference[x] for x in range(10))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SeededRandomExpander(left_size=0, degree=4, stripe_size=4)
        with pytest.raises(ValueError):
            SeededRandomExpander(left_size=4, degree=0, stripe_size=4)

    def test_neighbor_distribution_is_roughly_uniform(self):
        """Chi-square-ish sanity: each stripe slot gets about its share."""
        g = SeededRandomExpander(
            left_size=20000, degree=4, stripe_size=16, seed=9
        )
        counts = [0] * 16
        for x in range(20000):
            counts[g.striped_neighbors(x)[0][1]] += 1
        expected = 20000 / 16
        assert all(0.8 * expected < c < 1.2 * expected for c in counts)


class TestSeededFlatExpander:
    def test_range_and_determinism(self):
        g = SeededFlatExpander(
            left_size=500, degree=6, right_size=97, seed=11
        )
        for x in range(0, 500, 13):
            ys = g.neighbors(x)
            assert len(ys) == 6
            assert all(0 <= y < 97 for y in ys)
            assert ys == g.neighbors(x)


class TestLog2Comb:
    def test_exact_small_values(self):
        assert log2_comb(10, 0) == 0.0
        assert abs(log2_comb(10, 5) - math.log2(252)) < 1e-9

    def test_out_of_range_is_neg_inf(self):
        assert log2_comb(5, 6) == float("-inf")
        assert log2_comb(5, -1) == float("-inf")

    @given(st.integers(1, 60), st.data())
    def test_matches_math_comb(self, n, data):
        k = data.draw(st.integers(0, n))
        assert abs(log2_comb(n, k) - math.log2(math.comb(n, k))) < 1e-6


class TestFailureBound:
    def test_monotone_in_v(self):
        """More right vertices can only help expansion."""
        a = expansion_failure_log2_prob(1 << 12, 4096, 16, 64, 0.25)
        b = expansion_failure_log2_prob(1 << 12, 8192, 16, 64, 0.25)
        assert b <= a

    def test_certain_failure_when_v_too_small(self):
        # Definition 2 demands more neighbors than V has.
        assert (
            expansion_failure_log2_prob(1000, 10, 8, 100, 0.1) == 0.0
        )

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            expansion_failure_log2_prob(10, 10, 4, 4, 1.5)
        with pytest.raises(ValueError):
            expansion_failure_log2_prob(0, 10, 4, 4, 0.5)

    def test_certified_params_verify_on_a_real_graph(self):
        """End to end: parameters the union bound certifies at 2^-20 should
        sail through a sampled verification of an actual seeded graph."""
        from repro.expanders.verify import verify_expansion_sampled

        p = recommended_params(
            u=1 << 10, N=16, eps=0.4, target_log2_prob=-20.0
        )
        g = SeededRandomExpander(
            left_size=1 << 10,
            degree=p.degree,
            stripe_size=p.stripe_size,
            seed=5,
        )
        report = verify_expansion_sampled(g, 16, 0.4, trials=400, seed=1)
        assert report.is_expander


class TestRecommendedDegree:
    def test_grows_with_universe(self):
        d_small = recommended_degree(1 << 8, 1 << 14, 8, 0.4,
                                     target_log2_prob=-15)
        d_large = recommended_degree(1 << 14, 1 << 14, 8, 0.4,
                                     target_log2_prob=-15)
        assert d_small <= d_large


class TestPracticalParams:
    def test_degree_scales_with_log_u(self):
        p1 = practical_params(1 << 10, 100, 1 / 12)
        p2 = practical_params(1 << 20, 100, 1 / 12)
        assert p2.degree == 2 * p1.degree

    def test_right_size_theta_nd(self):
        p = practical_params(1 << 16, 100, 1 / 12)
        assert p.right_size >= p.degree * 100  # at least Nd
        assert p.right_size <= 20 * p.degree * 100  # within the 1/eps slack

    def test_pinned_slack_respected(self):
        p = practical_params(1 << 16, 100, 0.25, slack=6.0)
        assert p.stripe_size == 600
