"""Tests for expansion verification and the Lemma 4/5 quantities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expanders.base import Expander
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.verify import (
    lemma4_bound,
    lemma5_bound,
    max_pairwise_overlap,
    neighbor_set,
    unique_neighbor_set,
    verify_expansion_exact,
    verify_expansion_sampled,
    well_assignable_subset,
)


class _FixedGraph(Expander):
    """Hand-built graph for exact assertions."""

    def __init__(self, table, right_size):
        self._table = table
        self.left_size = len(table)
        self.degree = len(table[0])
        self.right_size = right_size

    def neighbors(self, x):
        return tuple(self._table[x])


@pytest.fixture
def fixed():
    # x0: {0,1}, x1: {1,2}, x2: {3,4}
    return _FixedGraph([(0, 1), (1, 2), (3, 4)], 5)


class TestNeighborSets:
    def test_neighbor_set(self, fixed):
        assert neighbor_set(fixed, [0, 1]) == {0, 1, 2}
        assert neighbor_set(fixed, [0, 1, 2]) == {0, 1, 2, 3, 4}

    def test_unique_neighbors_excludes_shared(self, fixed):
        # Vertex 1 is shared by x0 and x1.
        assert unique_neighbor_set(fixed, [0, 1]) == {0, 2}

    def test_unique_neighbors_singleton_set(self, fixed):
        assert unique_neighbor_set(fixed, [0]) == {0, 1}

    def test_multi_edge_counts_once(self):
        g = _FixedGraph([(0, 0), (1, 2)], 3)
        # x0's double edge to 0 still makes 0 unique to x0.
        assert unique_neighbor_set(g, [0, 1]) == {0, 1, 2}

    def test_well_assignable_subset(self, fixed):
        # With lam = 0.5, a key needs >= 1 unique neighbor (d=2).
        s_prime = well_assignable_subset(fixed, [0, 1, 2], 0.5)
        assert set(s_prime) == {0, 1, 2}

    def test_well_assignable_strict_threshold(self):
        g = _FixedGraph([(0, 1), (0, 1), (2, 3)], 4)
        # x0, x1 fully overlap: zero unique neighbors each.
        s_prime = well_assignable_subset(g, [0, 1, 2], 0.5)
        assert set(s_prime) == {2}


class TestLemmaBounds:
    def test_lemma4_formula(self):
        assert lemma4_bound(12, 1 / 12, 10) == pytest.approx(100.0)

    def test_lemma5_formula(self):
        assert lemma5_bound(100, 1 / 12, 1 / 3) == pytest.approx(50.0)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 60), st.integers(0, 10_000))
    def test_lemma4_holds_on_seeded_graph(self, n, seed_offset):
        """Lemma 4 on measured data: |Phi(S)| >= (1 - 2 eps_meas) d n where
        eps_meas is the measured expansion deficit of this very set."""
        g = SeededRandomExpander(
            left_size=1 << 14, degree=12, stripe_size=1024,
            seed=seed_offset,
        )
        import random

        S = random.Random(seed_offset).sample(range(1 << 14), n)
        gamma = len(neighbor_set(g, S))
        phi = len(unique_neighbor_set(g, S))
        eps_meas = 1 - gamma / (g.degree * n)
        assert phi >= (1 - 2 * eps_meas) * g.degree * n - 1e-9


class TestExactVerification:
    def test_detects_good_tiny_graph(self):
        g = _FixedGraph([(0, 1), (2, 3), (4, 5)], 6)  # perfectly disjoint
        report = verify_expansion_exact(g, 3, 0.1)
        assert report.is_expander
        assert report.worst_ratio == 1.0

    def test_detects_bad_graph(self):
        g = _FixedGraph([(0, 1), (0, 1), (0, 1)], 6)  # everyone overlaps
        report = verify_expansion_exact(g, 2, 0.1)
        assert not report.is_expander
        assert len(report.worst_set) >= 2

    def test_set_count_guard(self, graph):
        with pytest.raises(ValueError):
            verify_expansion_exact(graph, 50, 0.1, max_sets=10)


class TestSampledVerification:
    def test_pass_on_good_graph(self, graph):
        report = verify_expansion_sampled(graph, 64, 0.25, trials=100, seed=0)
        assert report.is_expander
        assert report.sets_checked == 100

    def test_fail_on_degenerate_graph(self):
        g = _FixedGraph([(0, 0)] * 50, 10)  # everything maps to vertex 0
        report = verify_expansion_sampled(g, 10, 0.5, trials=50, seed=0)
        assert not report.is_expander


class TestPairwiseOverlap:
    def test_exact_overlap(self, fixed):
        assert max_pairwise_overlap(fixed, [0, 1]) == 1
        assert max_pairwise_overlap(fixed, [0, 2]) == 0

    def test_overlap_supports_majority_decoding(self, graph):
        """Theorem 6(b)'s argument needs pairwise overlaps well below d/2
        on the actual graphs the dictionary uses."""
        import random

        S = random.Random(0).sample(range(graph.left_size), 200)
        assert max_pairwise_overlap(graph, S) < graph.degree / 2
