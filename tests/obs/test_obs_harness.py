"""End-to-end tests: instrumented runs, the acceptance identities, the CLI."""

import json

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.obs.cli import main
from repro.obs.harness import run_instrumented
from repro.pdm.iostats import OpCost, measure
from repro.pdm.spans import attach_spans

U = 1 << 16


class TestRootCostEqualsMeasure:
    """Acceptance: span-tree roots report exactly what the legacy
    ``measure()`` context reports over the same window."""

    def test_basic_dict_lookup(self, wide_machine):
        machine = wide_machine
        d = BasicDictionary(
            machine, universe_size=U, capacity=64, degree=16, seed=1
        )
        d.upsert(123, 7)
        recorder = attach_spans(machine)
        with measure(machine) as legacy:
            d.lookup(123)
            d.lookup(456)
        total = sum((r.cost for r in recorder.roots), OpCost.zero())
        assert total == legacy.cost

    def test_dynamic_dict_update(self, wide_machine):
        d = DynamicDictionary(
            wide_machine, universe_size=U, capacity=64, sigma=16, seed=3
        )
        recorder = attach_spans(wide_machine)
        with measure(wide_machine) as legacy:
            d.insert(99, 1234)
        (root,) = recorder.roots
        assert root.name == "dynamic_dict.insert"
        assert root.cost == legacy.cost

    def test_dynamic_effective_cost_equals_returned_opcost(self, wide_machine):
        """The span tree mirrors the OpCost parallel algebra: the root's
        effective cost is the cost the operation returns."""
        d = DynamicDictionary(
            wide_machine, universe_size=U, capacity=64, sigma=16, seed=3
        )
        recorder = attach_spans(wide_machine)
        returned = d.insert(7, 42)
        returned_overwrite = d.insert(7, 43)
        res = d.lookup(7)
        roots = recorder.roots
        assert roots[0].effective_cost == returned
        assert roots[1].effective_cost == returned_overwrite
        assert roots[2].effective_cost == res.cost


class TestRunInstrumented:
    def test_basic_report_ok(self):
        report = run_instrumented(
            "basic", num_disks=8, block_items=16, universe_size=U,
            capacity=64, operations=120, seed=5,
        )
        assert report.ok
        assert report.summary.operations == 120
        assert report.monitors.checks > 0
        assert report.monitors.violations == []
        assert report.recorder.roots
        # machine totals == sum of root span raw costs (spans cover all I/O)
        span_total = sum(
            r.cost.total_ios for r in report.recorder.roots
        )
        assert span_total == report.machine.stats.total_ios

    def test_dynamic_report_ok(self):
        report = run_instrumented(
            "dynamic", num_disks=32, block_items=32, universe_size=U,
            capacity=64, operations=100, sigma=16, seed=5,
        )
        assert report.ok
        assert report.monitors.violations == []
        data = report.to_dict()
        assert data["structure"] == "dynamic"
        assert data["monitors"]["ok"] is True
        # deterministic: same parameters, same report
        again = run_instrumented(
            "dynamic", num_disks=32, block_items=32, universe_size=U,
            capacity=64, operations=100, sigma=16, seed=5,
        )
        assert json.dumps(data, sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )

    def test_render_text_mentions_monitors(self):
        report = run_instrumented(
            "basic", num_disks=8, block_items=16, universe_size=U,
            capacity=32, operations=40, seed=2,
        )
        text = report.render_text()
        assert "bound monitors" in text
        assert "OK" in text


class TestCli:
    def test_smoke_writes_all_artifacts(self, tmp_path, capsys):
        jsonl = tmp_path / "events.jsonl"
        trace = tmp_path / "trace.json"
        out = tmp_path / "report.json"
        rc = main(
            [
                "--structure", "basic",
                "--disks", "8", "--block", "16",
                "--universe", str(U),
                "--capacity", "64", "--operations", "80",
                "--jsonl", str(jsonl),
                "--chrome-trace", str(trace),
                "--json", str(out),
            ]
        )
        assert rc == 0
        assert "bound monitors" in capsys.readouterr().out
        assert len(jsonl.read_text().splitlines()) > 0
        trace_data = json.loads(trace.read_text())
        assert trace_data["traceEvents"]
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["runs"][0]["monitors"]["ok"] is True

    def test_both_structures_suffix_outputs(self, tmp_path):
        trace = tmp_path / "t.json"
        rc = main(
            [
                "--structure", "both", "--quiet",
                "--universe", str(U),
                "--capacity", "48", "--operations", "60",
                "--chrome-trace", str(trace),
            ]
        )
        assert rc == 0
        assert (tmp_path / "t-basic.json").exists()
        assert (tmp_path / "t-dynamic.json").exists()

    def test_operational_error_exits_two(self, tmp_path, capsys):
        # An unwritable report path is an operational failure: the run
        # produced no delivered verdict on the bounds, so exit 2, not 1.
        rc = main(
            [
                "--structure", "basic", "--quiet",
                "--disks", "8", "--block", "16",
                "--universe", str(U),
                "--capacity", "16", "--operations", "8",
                "--json", str(tmp_path / "missing_dir" / "report.json"),
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_percentiles_prints_latency_and_utilization(self, capsys):
        rc = main(
            [
                "--structure", "basic",
                "--disks", "8", "--block", "16",
                "--universe", str(U),
                "--capacity", "64", "--operations", "80",
                "--percentiles",
            ]
        )
        assert rc == 0  # exit codes unchanged by the wall flags
        out = capsys.readouterr().out
        assert "wall latency" in out
        assert "p50" in out and "p99" in out
        assert "lookup" in out
        assert "utilization" in out

    def test_wall_flag_report_json_identical(self, tmp_path):
        def run(extra):
            out = tmp_path / f"r{len(extra)}.json"
            rc = main(
                [
                    "--structure", "basic", "--quiet",
                    "--disks", "8", "--block", "16",
                    "--universe", str(U),
                    "--capacity", "64", "--operations", "80",
                    "--json", str(out),
                ]
                + extra
            )
            assert rc == 0
            return out.read_text()

        # --wall changes stdout only; the machine-readable report (the
        # BENCH_smoke.json shape) stays byte-identical.
        assert run([]) == run(["--wall"])

    def test_wall_chrome_trace_gains_process3(self, tmp_path):
        trace = tmp_path / "t.json"
        rc = main(
            [
                "--structure", "basic", "--quiet",
                "--disks", "8", "--block", "16",
                "--universe", str(U),
                "--capacity", "64", "--operations", "80",
                "--wall",
                "--chrome-trace", str(trace),
            ]
        )
        assert rc == 0
        pids = {
            e["pid"]
            for e in json.loads(trace.read_text())["traceEvents"]
        }
        assert 3 in pids
