"""Tests for the exporters (repro.obs.export)."""

import json

from repro.obs.export import (
    US_PER_ROUND,
    chrome_trace,
    span_events,
    write_chrome_trace,
    write_jsonl,
    write_table_artifact,
)
from repro.obs.wallclock import enable_wall_clock, lane
from repro.pdm.spans import attach_spans, span
from repro.pdm.trace import attach


class SteppingClock:
    """Deterministic ns clock: +1000 per read."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        self.now += 1000
        return self.now


def record_tree(machine):
    recorder = attach_spans(machine)
    with span(machine, "root", parallel=True):
        with span(machine, "a"):
            machine.read_blocks([(0, 0)])
        with span(machine, "b"):
            machine.read_blocks([(1, 0)])
    with span(machine, "tail"):
        machine.write_blocks([((2, 0), [1], 64)])
    return recorder


class TestSpanEvents:
    def test_flat_preorder_with_parent_links(self, machine):
        events = span_events(record_tree(machine))
        assert [e["name"] for e in events] == ["root", "a", "b", "tail"]
        assert [e["parent"] for e in events] == [None, 0, 0, None]
        assert [e["depth"] for e in events] == [0, 1, 1, 0]
        assert all(e["type"] == "span" for e in events)

    def test_write_jsonl_round_trips(self, machine, tmp_path):
        events = span_events(record_tree(machine))
        path = tmp_path / "spans.jsonl"
        count = write_jsonl(path, events)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(events)
        assert [json.loads(line)["name"] for line in lines] == [
            "root",
            "a",
            "b",
            "tail",
        ]


class TestChromeTrace:
    def test_valid_json_with_required_keys(self, machine, tmp_path):
        recorder = record_tree(machine)
        path = write_chrome_trace(tmp_path / "trace.json", recorder)
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        slices = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert slices, "no complete events emitted"
        for e in slices:
            for key in ("name", "pid", "tid", "ts", "dur"):
                assert key in e

    def test_parallel_children_overlap_sequential_advance(self, machine):
        recorder = record_tree(machine)
        events = chrome_trace(recorder)["traceEvents"]
        by_name = {e["name"]: e for e in events if e.get("ph") == "X"}
        # parallel children of "root" start together
        assert by_name["a"]["ts"] == by_name["b"]["ts"]
        # "tail" is a second top-level op: starts after "root" ends
        root = by_name["root"]
        assert by_name["tail"]["ts"] == root["ts"] + root["dur"]
        # root's effective cost is 1 round (parallel max), so 1 round wide
        assert root["dur"] == US_PER_ROUND

    def test_disk_tracks_from_tracer(self, machine):
        tracer = attach(machine)
        machine.read_blocks([(0, 0), (1, 0)])
        machine.write_blocks([((1, 1), [1], 64)])
        events = chrome_trace(None, tracer, num_disks=machine.D)["traceEvents"]
        io = [e for e in events if e.get("cat") == "io"]
        assert {e["tid"] for e in io} == {0, 1}
        # the write round starts after the read round on disk 1's track
        disk1 = [e for e in io if e["tid"] == 1]
        assert disk1[0]["name"] == "read" and disk1[1]["name"] == "write"
        assert disk1[1]["ts"] == disk1[0]["ts"] + US_PER_ROUND
        # one named thread per disk
        names = [e for e in events if e.get("name") == "thread_name"]
        assert len(names) == machine.D

    def test_deterministic_output(self, machine, wide_machine):
        def dump(m):
            recorder = record_tree(m)
            return json.dumps(chrome_trace(recorder), sort_keys=True)

        assert dump(machine) == dump(wide_machine)


#: The JSONL span-event schema: these keys, exactly, on every default
#: event.  Extending the deterministic schema is a reviewed, deliberate
#: act — update this snapshot in the same commit.
SPAN_EVENT_KEYS = {
    "name", "index", "mode", "cost", "effective", "attrs",
    "type", "parent", "depth",
}


class TestJsonlSchema:
    def test_default_event_keys_are_the_snapshot(self, machine):
        events = span_events(record_tree(machine))
        for event in events:
            assert set(event) == SPAN_EVENT_KEYS

    def test_wall_run_default_export_keeps_snapshot(self, machine):
        recorder = attach_spans(machine)
        enable_wall_clock(recorder, SteppingClock())
        with span(machine, "op"):
            machine.read_blocks([(0, 0)])
        for event in span_events(recorder):
            assert set(event) == SPAN_EVENT_KEYS

    def test_wall_opt_in_adds_exactly_two_fields(self, machine):
        recorder = attach_spans(machine)
        enable_wall_clock(recorder, SteppingClock())
        with lane("machine-op"):
            with span(machine, "op"):
                machine.read_blocks([(0, 0)])
        (event,) = span_events(recorder, wall=True)
        assert set(event) == SPAN_EVENT_KEYS | {"wall_ns", "lane"}
        assert event["lane"] == "machine-op"
        assert event["wall_ns"] > 0


class TestWallTrackGroup:
    def record_wall_tree(self, machine):
        recorder = attach_spans(machine)
        enable_wall_clock(recorder, SteppingClock())
        with span(machine, "first"):
            machine.read_blocks([(0, 0)])
        with lane("disk-lane", tag=2):
            with span(machine, "second"):
                machine.read_blocks([(1, 0)])
        return recorder

    def test_off_by_default_and_byte_identical(self, machine):
        recorder = self.record_wall_tree(machine)
        events = chrome_trace(recorder)["traceEvents"]
        assert all(e["pid"] != 3 for e in events)
        # explicit wall=False matches the default byte for byte
        assert json.dumps(
            chrome_trace(recorder, wall=False), sort_keys=True
        ) == json.dumps(chrome_trace(recorder), sort_keys=True)

    def test_wall_adds_process3_lane_tracks(self, machine):
        recorder = self.record_wall_tree(machine)
        events = chrome_trace(recorder, wall=True)["traceEvents"]
        wall = [e for e in events if e.get("pid") == 3]
        assert wall, "no wall track group emitted"
        names = [
            e["args"]["name"] for e in wall if e.get("name") == "thread_name"
        ]
        assert names == ["owner-lane", "disk-lane:2"]
        slices = [e for e in wall if e.get("ph") == "X"]
        assert [s["name"] for s in slices] == ["first", "second"]
        # real time: ts relative to the recorder's wall origin, us units
        assert all(s["ts"] >= 0 for s in slices)
        assert all(s["dur"] > 0 for s in slices)
        assert slices[0]["args"]["lane"] == "owner-lane"
        assert slices[1]["args"]["lane"] == "disk-lane:2"
        # charged cost rides along for cross-referencing the logical view
        assert slices[0]["args"]["charged_ios"] == 1

    def test_wall_without_stamps_adds_nothing(self, machine):
        recorder = record_tree(machine)  # no clock enabled
        events = chrome_trace(recorder, wall=True)["traceEvents"]
        assert all(e.get("pid") != 3 for e in events)

    def test_round_trip_with_disks_and_wall(self, machine, tmp_path):
        recorder = self.record_wall_tree(machine)
        tracer = attach(machine)
        enable_wall_clock(tracer, SteppingClock())
        machine.read_blocks([(0, 1)])
        path = write_chrome_trace(
            tmp_path / "trace.json",
            recorder,
            tracer,
            num_disks=machine.D,
            wall=True,
        )
        data = json.loads(path.read_text())
        pids = {e["pid"] for e in data["traceEvents"]}
        assert pids == {1, 2, 3}
        # every slice still has the Chrome trace-event required keys
        for e in data["traceEvents"]:
            if e.get("ph") == "X":
                for key in ("name", "pid", "tid", "ts", "dur"):
                    assert key in e


class TestTableArtifact:
    def test_writes_text_and_sidecar(self, tmp_path):
        path = write_table_artifact(tmp_path, "demo", "a | b\n1 | 2")
        assert path.read_text() == "a | b\n1 | 2\n"
        sidecar = json.loads((tmp_path / "demo.json").read_text())
        assert sidecar == {
            "kind": "table",
            "lines": ["a | b", "1 | 2"],
            "name": "demo",
        }

    def test_sidecar_optional(self, tmp_path):
        write_table_artifact(tmp_path, "plain", "x", sidecar=False)
        assert not (tmp_path / "plain.json").exists()
