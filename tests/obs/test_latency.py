"""Tests for latency attribution (repro.obs.latency) and histogram
quantiles (repro.obs.metrics)."""

import pytest

from repro.obs.latency import (
    DiskTimeline,
    LatencyTracker,
    classify_layer,
    collect_latency,
    op_class,
    percentile_rows,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Histogram,
    MetricsRegistry,
)
from repro.obs.wallclock import enable_wall_clock, lane
from repro.pdm.spans import attach_spans, span
from repro.pdm.trace import attach


class FakeClock:
    def __init__(self, step=1000):
        self.now = 0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestQuantiles:
    def test_empty_histogram_is_zero(self):
        h = Histogram([1, 10, 100])
        assert h.quantile(0.5) == 0.0
        assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_interpolates_within_bucket(self):
        h = Histogram([10, 20])
        for _ in range(10):
            h.observe(20)  # all mass in (10, 20]
        # ranks spread linearly across the second bucket
        assert h.quantile(0.5) == pytest.approx(15.0)
        assert h.quantile(1.0) == pytest.approx(20.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = Histogram([10, 20])
        h.observe(10)
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_clamped_to_observed_max(self):
        h = Histogram([10, 100])
        h.observe(11)  # lands in (10, 100] but max is 11
        assert h.quantile(0.99) == pytest.approx(11.0)

    def test_overflow_reports_max(self):
        h = Histogram([10])
        h.observe(5000)
        assert h.quantile(0.5) == pytest.approx(5000.0)

    def test_quantile_validates_range(self):
        h = Histogram([1])
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_percentile_label_rendering(self):
        h = Histogram([1])
        h.observe(1)
        assert set(h.percentiles((0.5, 0.999))) == {"p50", "p99.9"}

    def test_median_of_uniform_spread(self):
        h = Histogram(list(range(1, 11)))  # bounds 1..10
        for v in range(1, 11):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(5.0, abs=0.51)


def record_wall_spans(machine, clock=None):
    recorder = attach_spans(machine)
    enable_wall_clock(recorder, clock or FakeClock())
    with span(machine, "basic_dict.lookup"):
        machine.read_blocks([(0, 0)])
    with span(machine, "basic_dict.lookup"):
        machine.read_blocks([(1, 0)])
    with lane("pool-lock"):
        with span(machine, "basic_dict.upsert"):
            machine.write_blocks([((2, 0), [1], 64)])
    return recorder


class TestClassification:
    def test_op_class_takes_last_component(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "basic_dict.batch_lookup"):
            pass
        assert op_class(recorder.roots[0]) == "batch_lookup"

    def test_uncached_by_default(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "op"):
            machine.read_blocks([(0, 0)])
        assert classify_layer(recorder.roots[0]) == "uncached"

    def test_cache_layers(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "hit") as h:
            h.annotate(**{"cache.hits": 2})
        with span(machine, "miss") as m:
            m.annotate(**{"cache.hits": 1, "cache.misses": 1})
            machine.read_blocks([(0, 0)])
        hit, miss = recorder.roots
        assert classify_layer(hit) == "cache-hit"
        assert classify_layer(miss) == "cache-miss"

    def test_degraded_span_is_fault_retry(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "op") as h:
            h.annotate(**{"degraded": True, "cache.hits": 5})
        assert classify_layer(recorder.roots[0]) == "fault-retry"


class TestCollectLatency:
    def test_histograms_per_op_layer_lane(self, machine):
        recorder = record_wall_spans(machine)
        registry = MetricsRegistry()
        assert collect_latency(registry, recorder) == 3
        lookup = registry.histogram(
            "latency.op_us", DEFAULT_LATENCY_BUCKETS_US, op="lookup"
        )
        assert lookup.total == 2
        upsert_lane = registry.histogram(
            "latency.lane_us", DEFAULT_LATENCY_BUCKETS_US, lane="pool-lock"
        )
        assert upsert_lane.total == 1
        uncached = registry.histogram(
            "latency.layer_us", DEFAULT_LATENCY_BUCKETS_US, layer="uncached"
        )
        assert uncached.total == 3

    def test_unstamped_spans_skipped(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "before"):
            pass
        enable_wall_clock(recorder, FakeClock())
        with span(machine, "after"):
            pass
        registry = MetricsRegistry()
        assert collect_latency(registry, recorder) == 1

    def test_percentile_rows_shape(self, machine):
        recorder = record_wall_spans(machine)
        registry = MetricsRegistry()
        collect_latency(registry, recorder)
        rows = percentile_rows(registry)
        assert [r[0] for r in rows] == ["lookup", "upsert"]
        assert all(len(r) == 6 for r in rows)  # label,count,p50,p95,p99,max


class TestLatencyTracker:
    def test_matches_plain_histogram(self):
        tracker = LatencyTracker(clock=FakeClock())
        reference = Histogram(DEFAULT_LATENCY_BUCKETS_US)
        for ns in (500, 1_500, 80_000, 2_000_000, 900_000_000):
            tracker.observe_ns("lookup", ns)
            reference.observe(ns / 1000.0)
        h = tracker.histogram("lookup")
        assert h.counts == reference.counts
        assert h.total == reference.total
        assert h.max == reference.max
        assert h.sum == pytest.approx(reference.sum)

    def test_start_stop_observes(self):
        tracker = LatencyTracker(clock=FakeClock(step=1000))
        t0 = tracker.start()
        ns = tracker.stop_ns("lookup", t0)
        assert ns == 1000
        assert tracker.operations == 1

    def test_record_into_merges_with_collect_family(self):
        tracker = LatencyTracker(clock=FakeClock())
        tracker.observe_ns("lookup", 5_000)
        tracker.observe_ns("lookup", 7_000)
        tracker.observe_ns("delete", 1_000)
        registry = MetricsRegistry()
        tracker.record_into(registry)
        h = registry.histogram(
            "latency.op_us", DEFAULT_LATENCY_BUCKETS_US, op="lookup"
        )
        assert h.total == 2
        # merging twice accumulates
        tracker.record_into(registry)
        assert h.total == 4

    def test_percentiles_summary(self):
        tracker = LatencyTracker(clock=FakeClock())
        for _ in range(100):
            tracker.observe_ns("lookup", 10_000)
        summary = tracker.percentiles()
        assert summary["lookup"]["count"] == 100
        assert 0 < summary["lookup"]["p50"] <= 10.0
        assert summary["lookup"]["max"] == 10.0


class TestDiskTimeline:
    def make_tracer(self, machine, wall=False):
        tracer = attach(machine)
        if wall:
            enable_wall_clock(tracer, FakeClock(step=1_000_000))
        machine.read_blocks([(0, 0), (1, 0)])  # 1 round, disks 0+1
        machine.read_blocks([(0, 1), (0, 2)])  # 2 rounds, disk 0 twice
        return tracer

    def test_busy_idle_accounting(self, machine):
        tracer = self.make_tracer(machine)
        timeline = DiskTimeline.from_tracer(tracer, machine.D)
        assert timeline.total_rounds == 3
        assert timeline.busy_rounds[0] == 3  # busy every round
        assert timeline.busy_rounds[1] == 1
        assert timeline.utilization(0) == pytest.approx(1.0)
        assert timeline.utilization(1) == pytest.approx(1 / 3)
        assert timeline.utilization(7) == 0.0

    def test_busy_capped_by_batch_rounds(self, machine):
        tracer = attach(machine)
        machine.read_blocks([(0, 0)])  # 1 round, one block on disk 0
        timeline = DiskTimeline.from_tracer(tracer, machine.D)
        (ev,) = timeline.events
        assert ev.busy == {0: 1}
        assert ev.rounds == 1

    def test_logical_timeline_bins(self, machine):
        tracer = self.make_tracer(machine)
        timeline = DiskTimeline.from_tracer(tracer, machine.D)
        (bin0,) = timeline.logical_timeline(width=64)
        assert bin0["start_round"] == 0
        assert bin0["busy"][0] == 3

    def test_wall_timeline_only_with_stamps(self, machine):
        unstamped = DiskTimeline.from_tracer(
            self.make_tracer(machine), machine.D
        )
        assert unstamped.wall_timeline() == []

    def test_wall_timeline_bins_by_stamp(self, wide_machine):
        tracer = self.make_tracer(wide_machine, wall=True)
        timeline = DiskTimeline.from_tracer(tracer, wide_machine.D)
        bins = timeline.wall_timeline(width_ns=1_000_000)
        assert len(bins) == 2  # stamps 1ms apart, 1ms bins
        assert bins[0]["start_ns"] == 0

    def test_partial_wall_stamps_align_to_tail(self, machine):
        tracer = attach(machine)
        machine.read_blocks([(0, 0)])  # unstamped
        enable_wall_clock(tracer, FakeClock())
        machine.read_blocks([(1, 0)])  # stamped
        timeline = DiskTimeline.from_tracer(tracer, machine.D)
        first, second = timeline.events
        assert first.wall_ns is None
        assert second.wall_ns is not None

    def test_to_dict_deterministic_shape(self, machine):
        timeline = DiskTimeline.from_tracer(
            self.make_tracer(machine, wall=True), machine.D
        )
        payload = timeline.to_dict()
        assert payload["num_disks"] == machine.D
        assert payload["total_rounds"] == 3
        assert len(payload["per_disk"]) == machine.D
        flat = str(payload)
        assert "wall" not in flat and "ns" not in flat

    def test_rejects_bad_widths(self, machine):
        timeline = DiskTimeline.from_tracer(
            self.make_tracer(machine), machine.D
        )
        with pytest.raises(ValueError):
            timeline.logical_timeline(width=0)
        with pytest.raises(ValueError):
            timeline.wall_timeline(width_ns=0)
