"""Tests for the deterministic metrics registry (repro.obs.metrics)."""

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_load_distribution,
    collect_machine,
    collect_spans,
)
from repro.pdm.spans import attach_spans, span


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set(self):
        g = Gauge()
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_bucketing(self):
        h = Histogram(buckets=(1, 2, 4))
        for v in (0, 1, 2, 3, 4, 99):
            h.observe(v)
        # <=1: {0, 1}; <=2: {2}; <=4: {3, 4}; overflow: {99}
        assert h.counts == [2, 1, 2, 1]
        assert h.total == 6
        assert h.max == 99
        assert h.mean == (0 + 1 + 2 + 3 + 4 + 99) / 6

    def test_histogram_weighted_observe(self):
        h = Histogram(buckets=(10,))
        h.observe(3, count=5)
        assert h.counts == [5, 0]
        assert h.sum == 15

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2, 1))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_same_name_labels_same_metric(self):
        reg = MetricsRegistry()
        reg.counter("ops", kind="read").inc()
        reg.counter("ops", kind="read").inc()
        reg.counter("ops", kind="write").inc()
        assert reg.counter("ops", kind="read").value == 2
        assert reg.counter("ops", kind="write").value == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_bounds_must_match(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1, 2, 3))

    def test_as_dict_keys_canonical_and_ordered(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a", z="1", a="2").set(3)
        keys = list(reg.as_dict())
        # registration order, not alphabetical; labels sorted by name
        assert keys == ["b", "a{a=2,z=1}"]

    def test_render_text_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("ops", kind="read").inc(3)
            reg.gauge("util").set(0.75)
            reg.histogram("lat", buckets=(1, 2)).observe(1)
            return reg.render_text()

        assert build() == build()


class TestCollectors:
    def test_collect_machine(self, machine):
        machine.read_blocks([(d, 0) for d in range(machine.D)])
        reg = MetricsRegistry()
        collect_machine(reg, machine)
        out = reg.as_dict()
        assert out["pdm.read_ios"]["value"] == 1
        assert out["pdm.blocks_read"]["value"] == machine.D
        assert out["pdm.utilization"]["value"] == 1.0
        assert out["pdm.num_disks"]["value"] == machine.D

    def test_collect_spans(self, machine):
        recorder = attach_spans(machine)
        for _ in range(2):
            with span(machine, "op"):
                machine.read_blocks([(0, 0)])
        reg = MetricsRegistry()
        collect_spans(reg, recorder)
        out = reg.as_dict()
        assert out["span.count{span=op}"]["value"] == 2
        assert out["span.read_ios{span=op}"]["value"] == 2
        hist = out["span.op_ios{span=op}"]
        assert hist["total"] == 2 and hist["max"] == 1

    def test_collect_load_distribution_from_basic_dict(self, wide_machine):
        d = BasicDictionary(
            wide_machine, universe_size=1 << 16, capacity=64, degree=16, seed=1
        )
        for key in range(20):
            d.upsert(key * 7, key)
        reg = MetricsRegistry()
        collect_load_distribution(reg, d.load_histogram(), structure="basic")
        hist = reg.as_dict()["bucket_load{structure=basic}"]
        # every bucket is represented, including the empty ones
        assert hist["total"] == d.num_buckets
        assert hist["max"] == max(d.load_histogram())
