"""Tests for the theorem-bound monitors (repro.obs.monitors).

The acceptance tests at the bottom are the point of the subsystem: real
instrumented runs of the paper's structures must satisfy the Lemma 3 /
Theorem 6 / Theorem 7 budgets with zero violations.
"""

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.obs.monitors import (
    BoundViolationError,
    MonitorSet,
    SpanBudgetMonitor,
    default_monitors,
    lemma3_load_monitor,
)
from repro.pdm.iostats import OpCost
from repro.pdm.spans import Span, attach_spans

U = 1 << 16


def make_span(name, *, cost=OpCost(), attrs=None, index=0):
    return Span(index=index, name=name, attrs=dict(attrs or {}), cost=cost)


class TestSpanBudgetMonitor:
    def monitor(self):
        return SpanBudgetMonitor(
            name="m",
            span_name="op",
            budget=lambda attrs: attrs.get("limit"),
        )

    def test_within_budget_passes(self):
        s = make_span("op", cost=OpCost(read_ios=2), attrs={"limit": 2})
        assert self.monitor().check(s) is None

    def test_over_budget_reports(self):
        s = make_span("op", cost=OpCost(read_ios=3), attrs={"limit": 2})
        v = self.monitor().check(s)
        assert v is not None
        assert (v.observed, v.budget) == (3, 2)
        assert v.to_dict()["type"] == "violation"

    def test_other_spans_ignored(self):
        s = make_span("other", cost=OpCost(read_ios=9), attrs={"limit": 1})
        assert self.monitor().check(s) is None

    def test_missing_telemetry_skips(self):
        s = make_span("op", cost=OpCost(read_ios=9))  # no "limit" attr
        assert self.monitor().check(s) is None

    def test_monitor_set_strict_raises(self):
        ms = MonitorSet(monitors=[self.monitor()], strict=True)
        bad = make_span("op", cost=OpCost(read_ios=3), attrs={"limit": 1})
        with pytest.raises(BoundViolationError) as exc:
            ms.check_span(bad)
        assert exc.value.violation.monitor == "m"

    def test_monitor_set_records_in_lenient_mode(self):
        ms = MonitorSet(monitors=[self.monitor()])
        ms.check_span(make_span("op", cost=OpCost(read_ios=3), attrs={"limit": 1}))
        ms.check_span(make_span("op", cost=OpCost(read_ios=1), attrs={"limit": 1}))
        assert len(ms.violations) == 1
        assert not ms.ok
        assert ms.summary()["checks"] == 2

    def test_lemma3_monitor_fires_on_absurd_load(self):
        s = make_span(
            "basic_dict.upsert",
            attrs={
                "size": 10,
                "num_buckets": 64,
                "degree": 16,
                "k": 1,
                "max_load": 10_000,
            },
        )
        v = lemma3_load_monitor().check(s)
        assert v is not None and v.observed == 10_000


class TestAcceptanceBasicDict:
    """Zero violations on instrumented basic_dict traffic (Theorem 6 / Lemma 3)."""

    def test_lookups_updates_deletes_within_budget(self, wide_machine):
        d = BasicDictionary(
            wide_machine, universe_size=U, capacity=128, degree=16, seed=1
        )
        recorder = attach_spans(wide_machine)
        for key in range(0, 400, 4):
            d.upsert(key, key * 3)
        for key in range(0, 600, 3):
            d.lookup(key)
        for key in range(0, 200, 8):
            d.delete(key)

        ms = MonitorSet(monitors=default_monitors())
        ms.check_recorder(recorder)
        assert ms.checks > 0
        assert ms.violations == []


class TestAcceptanceDynamicDict:
    """Zero violations on instrumented dynamic_dict updates (Theorem 7)."""

    def test_mixed_update_traffic_within_budget(self, wide_machine):
        d = DynamicDictionary(
            wide_machine, universe_size=U, capacity=96, sigma=16, seed=3
        )
        recorder = attach_spans(wide_machine)
        for key in range(0, 240, 3):
            d.insert(key, key % (1 << 16))
        for key in range(0, 240, 6):
            d.insert(key, (key + 1) % (1 << 16))  # overwrite: clears old chain
        for key in range(0, 240, 9):
            d.delete(key)
        for key in range(0, 300, 5):
            d.lookup(key)

        ms = MonitorSet(monitors=default_monitors())
        ms.check_recorder(recorder)
        assert ms.checks > 0
        assert ms.violations == []
