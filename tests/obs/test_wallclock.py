"""Tests for the wall-clock channel (repro.obs.wallclock)."""

import threading

import pytest

from repro.obs.wallclock import (
    DEFAULT_LANE,
    LANES,
    OverheadReport,
    current_lane,
    disable_wall_clock,
    enable_wall_clock,
    lane,
    measure_overhead,
    wall_enabled,
)
from repro.pdm.spans import attach_spans, span
from repro.pdm.trace import attach


class FakeClock:
    """Deterministic monotonic ns clock: +step per read."""

    def __init__(self, step=1000):
        self.now = 0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestLanes:
    def test_default_lane(self):
        assert current_lane() == DEFAULT_LANE

    def test_lane_context_nests_and_restores(self):
        with lane("pool-lock"):
            assert current_lane() == "pool-lock"
            with lane("disk-lane", tag=3):
                assert current_lane() == "disk-lane:3"
            assert current_lane() == "pool-lock"
        assert current_lane() == DEFAULT_LANE

    def test_unknown_lane_rejected(self):
        with pytest.raises(ValueError, match="unknown lane"):
            lane("fast-lane")

    def test_every_inventory_lane_accepted(self):
        for name in LANES:
            with lane(name):
                assert current_lane() == name

    def test_lane_is_thread_local(self):
        seen = {}

        def worker():
            seen["before"] = current_lane()
            with lane("machine-op"):
                seen["inside"] = current_lane()

        with lane("pool-lock"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert current_lane() == "pool-lock"
        assert seen == {"before": DEFAULT_LANE, "inside": "machine-op"}


class TestEnableDisable:
    def test_span_recorder_stamps_wall_and_lane(self, machine):
        recorder = attach_spans(machine)
        clock = FakeClock()
        enable_wall_clock(recorder, clock)
        assert wall_enabled(recorder)
        assert recorder.wall_origin_ns == 1000
        with lane("disk-lane", tag=1):
            with span(machine, "op"):
                machine.read_blocks([(0, 0)])
        (root,) = recorder.roots
        assert root.lane == "disk-lane:1"
        assert root.wall_start_ns is not None
        assert root.wall_ns is not None and root.wall_ns > 0

    def test_disable_keeps_old_stamps_stops_new_ones(self, machine):
        recorder = attach_spans(machine)
        enable_wall_clock(recorder, FakeClock())
        with span(machine, "timed"):
            pass
        disable_wall_clock(recorder)
        assert not wall_enabled(recorder)
        with span(machine, "untimed"):
            pass
        timed, untimed = recorder.roots
        assert timed.wall_ns is not None
        assert untimed.wall_ns is None and untimed.lane is None

    def test_without_clock_no_stamps(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "op"):
            machine.read_blocks([(0, 0)])
        (root,) = recorder.roots
        assert root.wall_start_ns is None
        assert root.wall_ns is None
        assert root.lane is None

    def test_tracer_walls_parallel_to_events(self, machine):
        tracer = attach(machine)
        machine.read_blocks([(0, 0)])  # before the clock: no wall stamp
        enable_wall_clock(tracer, FakeClock())
        machine.read_blocks([(1, 0)])
        machine.read_blocks([(2, 0)])
        assert len(tracer.events) == 3
        assert len(tracer.walls) == 2
        assert tracer.walls == sorted(tracer.walls)
        tracer.clear()
        assert tracer.events == [] and tracer.walls == []


class TestOverhead:
    def test_measure_overhead_interleaves_and_reports(self):
        clock = FakeClock(step=1)
        calls = []
        report = measure_overhead(
            lambda: calls.append("p"),
            lambda: calls.append("i"),
            operations=10,
            repeats=3,
            clock=clock,
        )
        assert calls == ["p", "i"] * 3
        assert report.operations == 10 and report.repeats == 3
        assert report.plain_ops_per_sec > 0
        assert report.instrumented_ops_per_sec > 0

    def test_overhead_fraction_clamped_nonnegative(self):
        faster_instrumented = OverheadReport(
            plain_ops_per_sec=100.0,
            instrumented_ops_per_sec=120.0,
            operations=1,
            repeats=1,
        )
        assert faster_instrumented.overhead_fraction == 0.0
        slower = OverheadReport(
            plain_ops_per_sec=100.0,
            instrumented_ops_per_sec=95.0,
            operations=1,
            repeats=1,
        )
        assert slower.overhead_fraction == pytest.approx(0.05)
        assert slower.to_dict()["overhead_fraction"] == 0.05
