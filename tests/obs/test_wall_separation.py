"""The wall/charged duality contract: enabling the wall-clock channel
changes NOTHING deterministic.

Every test runs the same workload twice — wall channel off, then on —
and asserts the deterministic outputs are *equal as serialized bytes*:
IOStats, every span's raw cost and ``to_dict``, the metrics registry,
the monitor verdicts, the report payload (``BENCH_smoke.json`` shape),
and the default exporter outputs.  Healthy, cached and fault-injected
runs are all covered; this is the property the detlint DET004 wall-clock
ban defends at the static level.
"""

import dataclasses
import json

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.obs.export import chrome_trace, span_events
from repro.obs.harness import run_instrumented
from repro.pdm.faults import StragglerWindow, TransientWindow, attach_faults
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.spans import attach_spans
from repro.obs.wallclock import enable_wall_clock

U = 1 << 16


def stats_dict(stats):
    return {
        "read_ios": stats.read_ios,
        "write_ios": stats.write_ios,
        "blocks_read": stats.blocks_read,
        "blocks_written": stats.blocks_written,
        "retry_ios": stats.retry_ios,
        "repair_ios": stats.repair_ios,
    }


def span_costs(recorder):
    """Every span's deterministic fields, flattened."""
    return [
        (s.name, s.index, s.mode, dataclasses.astuple(s.cost),
         dataclasses.astuple(s.effective_cost), sorted(s.attrs))
        for s in recorder.iter_spans()
    ]


SCENARIOS = {
    "healthy": {},
    "cached": {"cache_blocks": 64},
    "batched": {"batch": 16},
    "cached_batched": {"cache_blocks": 64, "batch": 16},
    "dynamic": {"structure": "dynamic"},
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_wall_channel_changes_no_deterministic_output(name):
    kwargs = dict(SCENARIOS[name])
    structure = kwargs.pop("structure", "basic")

    def run(wall):
        return run_instrumented(
            structure,
            operations=160,
            capacity=128,
            trace=True,
            wall=wall,
            **kwargs,
        )

    off, on = run(False), run(True)

    # the committed report payload, byte for byte
    assert json.dumps(off.to_dict(), sort_keys=True) == json.dumps(
        on.to_dict(), sort_keys=True
    )
    # machine I/O accounting
    assert stats_dict(off.machine.stats) == stats_dict(on.machine.stats)
    # every span: raw cost, effective cost, attr keys
    assert span_costs(off.recorder) == span_costs(on.recorder)
    # monitor verdicts
    assert off.monitors.summary() == on.monitors.summary()
    # deterministic trace channel (events; walls live beside them)
    assert [
        (e.kind, e.addrs, e.rounds) for e in off.tracer.events
    ] == [(e.kind, e.addrs, e.rounds) for e in on.tracer.events]
    assert off.tracer.walls == [] and len(on.tracer.walls) == len(
        on.tracer.events
    )
    # default exporter outputs never contain the wall channel
    assert span_events(off.recorder) == span_events(on.recorder)
    assert json.dumps(
        chrome_trace(off.recorder, off.tracer), sort_keys=True
    ) == json.dumps(chrome_trace(on.recorder, on.tracer), sort_keys=True)
    # but the wall run did actually measure something
    assert all(s.wall_ns is not None for s in on.recorder.roots)
    assert all(s.wall_ns is None for s in off.recorder.roots)


def _faulted_lookup_costs(wall):
    """One seeded fault schedule (straggler + healed transient), identical
    lookups, wall channel on/off; returns the deterministic record."""
    machine = ParallelDiskMachine(8, 16, item_bits=64)
    d = BasicDictionary(
        machine, universe_size=U, capacity=64, degree=8, seed=5
    )
    for i in range(64):
        d.insert((i * 977) % U, None)
    recorder = attach_spans(machine)
    if wall:
        enable_wall_clock(recorder)
    attach_faults(
        machine,
        [
            StragglerWindow(disk=0, start=0, end=1 << 30),
            TransientWindow(disk=1, start=0, end=2),
        ],
    )
    for i in range(32):
        d.lookup((i * 977) % U)
    return stats_dict(machine.stats), span_costs(recorder), recorder


def test_fault_injected_run_unchanged_by_wall_channel():
    stats_off, costs_off, rec_off = _faulted_lookup_costs(False)
    stats_on, costs_on, rec_on = _faulted_lookup_costs(True)
    assert stats_off == stats_on
    assert costs_off == costs_on
    # the fault schedule really charged recovery rounds (the scenario is
    # exercising the fault path, not a no-op)
    assert stats_on["retry_ios"] > 0
    assert span_events(rec_off) == span_events(rec_on)
    assert all(s.wall_ns is not None for s in rec_on.roots)


def test_wall_fields_never_in_span_to_dict(machine):
    recorder = attach_spans(machine)
    enable_wall_clock(recorder)
    from repro.pdm.spans import span

    with span(machine, "op"):
        machine.read_blocks([(0, 0)])
    (root,) = recorder.roots
    assert root.wall_ns is not None
    flat = json.dumps(root.to_dict())
    assert "wall" not in flat and "lane" not in flat
