"""Tests for the bench trajectory tracker (repro.obs.history)."""

import json

import pytest

from repro.obs.history import (
    attribute_changes,
    extract_latency,
    extract_throughput,
    ingest_results,
    is_wall_metric,
    load_trajectory,
    main,
    metric_sense,
    seed_entry_from_baseline,
    update_trajectory,
    write_trajectory,
)

THROUGHPUT = {
    "benchmark": "throughput",
    "sequential": {"ops_per_sec": 30000.0},
    "scenarios": [
        {
            "skew": "zipf s=1.1",
            "s": 1.1,
            "uncached": {"rounds_per_op": 0.5, "ops_per_sec": 40000.0},
            "cached": {
                "rounds_per_op": 0.1,
                "ops_per_sec": 90000.0,
                "hit_rate": 0.9,
            },
            "round_reduction": 5.0,
        }
    ],
    "ratios": {"batched_vs_sequential_ops": 1.5},
}

LATENCY = {
    "benchmark": "latency",
    "op_classes": {"lookup": {"count": 10, "p50": 30.0, "p95": 80.0, "p99": 99.0}},
    "layers": {"cache-hit": {"count": 5, "p50": 2.0, "p95": 4.0, "p99": 5.0}},
    "disks": {"mean_utilization": 0.45},
    "overhead": {
        "overhead_fraction": 0.03,
        "instrumented_ops_per_sec": 29000.0,
    },
}


class TestExtractors:
    def test_throughput_flattens_scenarios_and_ratios(self):
        metrics = extract_throughput(THROUGHPUT)
        assert metrics["throughput.sequential_ops_per_sec"] == 30000.0
        assert metrics["throughput.zipf_s1.1.uncached.rounds_per_op"] == 0.5
        assert metrics["throughput.zipf_s1.1.cached.hit_rate"] == 0.9
        assert metrics["throughput.zipf_s1.1.round_reduction"] == 5.0
        assert metrics["throughput.ratios.batched_vs_sequential_ops"] == 1.5

    def test_latency_flattens_percentiles_and_overhead(self):
        metrics = extract_latency(LATENCY)
        assert metrics["latency.op.lookup.p50_us"] == 30.0
        assert metrics["latency.layer.cache-hit.p99_us"] == 5.0
        assert metrics["latency.mean_disk_utilization"] == 0.45
        assert metrics["latency.overhead_fraction"] == 0.03

    def test_ingest_dispatches_and_reports_unknown(self, tmp_path):
        (tmp_path / "BENCH_throughput.json").write_text(
            json.dumps(THROUGHPUT)
        )
        (tmp_path / "BENCH_latency.json").write_text(json.dumps(LATENCY))
        (tmp_path / "BENCH_mystery.json").write_text("{}")
        out = ingest_results(tmp_path)
        assert out["sources"] == ["BENCH_latency", "BENCH_throughput"]
        assert out["skipped"] == ["BENCH_mystery"]
        assert "latency.op.lookup.p50_us" in out["metrics"]
        assert "throughput.sequential_ops_per_sec" in out["metrics"]


class TestMetricSense:
    def test_direction_table(self):
        assert metric_sense("throughput.x.ops_per_sec") is True
        assert metric_sense("throughput.x.hit_rate") is True
        assert metric_sense("batch.basic.speedup") is True
        assert metric_sense("throughput.x.rounds_per_op") is False
        assert metric_sense("latency.op.lookup.p99_us") is False
        assert metric_sense("latency.overhead_fraction") is False
        assert metric_sense("smoke.basic.monitor_violations") is False
        assert metric_sense("something.unknowable") is None

    def test_wall_vs_exact(self):
        assert is_wall_metric("latency.op.lookup.p50_us")
        assert is_wall_metric("throughput.x.ops_per_sec")
        assert is_wall_metric("throughput.ratios.batched_vs_sequential_ops")
        assert not is_wall_metric("throughput.x.rounds_per_op")
        assert not is_wall_metric("smoke.basic.total_ios")


class TestTrajectory:
    def test_update_appends_then_replaces_by_label(self):
        traj = {"version": 1, "entries": [], "attribution": []}
        update_trajectory(traj, "pr1", {"m": 1.0})
        update_trajectory(traj, "pr2", {"m": 2.0})
        assert [e["label"] for e in traj["entries"]] == ["pr1", "pr2"]
        update_trajectory(traj, "pr1", {"m": 3.0})  # idempotent re-run
        assert [e["label"] for e in traj["entries"]] == ["pr1", "pr2"]
        assert traj["entries"][0]["metrics"]["m"] == 3.0

    def test_update_requires_label(self):
        with pytest.raises(ValueError, match="label"):
            update_trajectory({"entries": []}, "", {"m": 1.0})

    def test_attribution_directions(self):
        entries = [
            {"label": "a", "metrics": {
                "smoke.x.total_ios": 100,
                "batch.x.speedup": 2.0,
                "weird.metric": 1.0,
            }},
            {"label": "b", "metrics": {
                "smoke.x.total_ios": 80,     # lower better -> improved
                "batch.x.speedup": 1.0,      # higher better -> regressed
                "weird.metric": 2.0,         # unknown sense -> changed
            }},
        ]
        records = {r["metric"]: r for r in attribute_changes(entries)}
        assert records["smoke.x.total_ios"]["direction"] == "improved"
        assert records["batch.x.speedup"]["direction"] == "regressed"
        assert records["weird.metric"]["direction"] == "changed"
        assert records["batch.x.speedup"]["prev_label"] == "a"

    def test_wall_deadband_swallows_jitter(self):
        entries = [
            {"label": "a", "metrics": {"x.ops_per_sec": 100.0}},
            {"label": "b", "metrics": {"x.ops_per_sec": 103.0}},  # 3% < 5%
            {"label": "c", "metrics": {"x.ops_per_sec": 80.0}},   # real drop
        ]
        records = attribute_changes(entries)
        assert len(records) == 1
        assert records[0]["label"] == "c"
        assert records[0]["direction"] == "regressed"

    def test_exact_metrics_attribute_tiny_changes(self):
        entries = [
            {"label": "a", "metrics": {"smoke.x.total_ios": 1000}},
            {"label": "b", "metrics": {"smoke.x.total_ios": 1001}},
        ]
        (rec,) = attribute_changes(entries)
        assert rec["direction"] == "regressed"

    def test_attribution_skips_absent_metrics(self):
        entries = [
            {"label": "a", "metrics": {"m": 1.0}},
            {"label": "b", "metrics": {}},  # metric not reported
            {"label": "c", "metrics": {"m": 9.0}},
        ]
        (rec,) = attribute_changes(entries)
        assert rec["prev_label"] == "a" and rec["label"] == "c"

    def test_round_trip_and_version_check(self, tmp_path):
        path = tmp_path / "trajectory.json"
        traj = {"version": 1, "entries": [], "attribution": []}
        update_trajectory(traj, "pr1", {"m": 1.0}, sources=["BENCH_x"])
        write_trajectory(traj, path)
        loaded = load_trajectory(path)
        assert loaded["entries"][0]["sources"] == ["BENCH_x"]
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_trajectory(path)

    def test_missing_file_is_empty_trajectory(self, tmp_path):
        traj = load_trajectory(tmp_path / "absent.json")
        assert traj["entries"] == []

    def test_seed_entry_from_baseline(self, tmp_path):
        baseline = tmp_path / "throughput.json"
        baseline.write_text(json.dumps(THROUGHPUT))
        seed = seed_entry_from_baseline(baseline)
        assert seed["label"] == "baseline"
        assert seed["metrics"]["throughput.sequential_ops_per_sec"] == 30000.0


class TestCli:
    def run(self, *argv):
        return main(list(argv))

    def test_merge_writes_and_exits_zero(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_throughput.json").write_text(
            json.dumps(THROUGHPUT)
        )
        out = tmp_path / "trajectory.json"
        code = self.run(
            "--results", str(results), "--out", str(out), "--label", "pr9"
        )
        assert code == 0
        traj = json.loads(out.read_text())
        assert [e["label"] for e in traj["entries"]] == ["pr9"]
        assert "trajectory:" in capsys.readouterr().out

    def test_seed_baseline_inserted_once(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_throughput.json").write_text(
            json.dumps(THROUGHPUT)
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(THROUGHPUT))
        out = tmp_path / "trajectory.json"
        for label in ("pr1", "pr2"):
            code = self.run(
                "--results", str(results), "--out", str(out),
                "--label", label, "--seed-baseline", str(baseline),
                "--quiet",
            )
            assert code == 0
        traj = json.loads(out.read_text())
        assert [e["label"] for e in traj["entries"]] == [
            "baseline", "pr1", "pr2",
        ]

    def test_no_artifacts_is_operational_error(self, tmp_path, capsys):
        results = tmp_path / "empty"
        results.mkdir()
        out = tmp_path / "trajectory.json"
        code = self.run(
            "--results", str(results), "--out", str(out), "--label", "x"
        )
        assert code == 2
        assert not out.exists()
        assert "no ingestible" in capsys.readouterr().err
