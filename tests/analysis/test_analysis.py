"""Tests for the Figure 1 pipeline and table rendering."""

import pytest

from repro.analysis.figure1 import HEADERS, figure1_text, run_figure1
from repro.analysis.reporting import render_table


class TestRenderTable:
    def test_alignment_and_floats(self):
        text = render_table(
            ["a", "bbbb"], [["x", 1.23456], ["yyyy", 2]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text
        assert lines[0].startswith("a")

    def test_empty_rows(self):
        text = render_table(["h1"], [])
        assert "h1" in text


class TestFigure1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure1(n=192, lookups=300, degree=16, seed=1)

    def test_all_paper_rows_present(self, rows):
        methods = [r.method for r in rows]
        for expected in (
            "[7] DGMP",
            "S4.1 basic",
            "Hashing striped",
            "S4.2 static",
            "[13] cuckoo",
            "[7]+trick",
            "S4.3 dynamic",
        ):
            assert expected in methods

    def test_deterministic_rows_marked(self, rows):
        det = {r.method for r in rows if r.deterministic}
        assert {"S4.1 basic", "S4.2 static", "S4.3 dynamic"} <= det
        assert "[13] cuckoo" not in det

    def test_one_probe_methods_measured_at_one(self, rows):
        by_name = {r.method: r for r in rows}
        for name in ("S4.1 basic", "S4.2 static", "Hashing striped"):
            assert by_name[name].hit_avg == 1.0
            assert by_name[name].hit_worst == 1

    def test_deterministic_worst_cases_bounded(self, rows):
        by_name = {r.method: r for r in rows}
        assert by_name["S4.1 basic"].update_worst == 2
        assert by_name["S4.3 dynamic"].update_worst <= 8  # O(log n)

    def test_eps_rows_average_near_one(self, rows):
        by_name = {r.method: r for r in rows}
        assert by_name["[7]+trick"].hit_avg < 1.6
        assert by_name["S4.3 dynamic"].hit_avg < 1.3

    def test_misses_cost_one_for_one_probe_rows(self, rows):
        by_name = {r.method: r for r in rows}
        assert by_name["S4.3 dynamic"].miss_avg == 1.0
        assert by_name["S4.2 static"].miss_avg == 1.0

    def test_text_rendering(self, rows):
        text = figure1_text(rows)
        assert text.splitlines()[0].split() == [
            h.replace(" ", "") for h in []
        ] or all(h.split()[0] in text for h in HEADERS)
        assert "S4.3 dynamic" in text
