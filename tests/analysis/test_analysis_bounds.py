"""Tests for the closed-form bound calculators and the CLI."""

import math

import pytest

from repro.analysis import bounds


class TestLemmaBounds:
    def test_lemma3(self):
        got = bounds.lemma3_max_load(100, 200, 1, 12, 1 / 12, 0.5)
        assert got == pytest.approx(1.0 + math.log(200, 11))

    def test_lemma3_invalid(self):
        with pytest.raises(ValueError):
            bounds.lemma3_max_load(10, 10, 12, 12, 1 / 12, 0.5)

    def test_lemma4(self):
        assert bounds.lemma4_unique_neighbors(12, 1 / 12, 10) == pytest.approx(
            100.0
        )

    def test_lemma5(self):
        assert bounds.lemma5_assignable(90, 1 / 12, 1 / 3) == pytest.approx(45.0)


class TestTheorem6Bounds:
    def test_fields_per_key(self):
        assert bounds.theorem6_fields_per_key(12) == 8
        assert bounds.theorem6_fields_per_key(16) == 11

    def test_space_monotone_in_sigma(self):
        a = bounds.theorem6_case_a_space_bits(100, 1 << 20, 8)
        b = bounds.theorem6_case_a_space_bits(100, 1 << 20, 64)
        assert b > a

    def test_case_b_field_bits(self):
        # lg n + ceil(sigma / ceil(2d/3))
        assert bounds.theorem6_case_b_field_bits(256, 33, 12) == 8 + 5

    def test_case_a_field_bits(self):
        assert bounds.theorem6_case_a_field_bits(160, 16) == 15 + 4


class TestTheorem7Bounds:
    def test_degree_floor(self):
        # d > 6 (1 + 1/eps)
        assert bounds.theorem7_degree_floor(1.0) == 13
        assert bounds.theorem7_degree_floor(0.5) == 19

    def test_num_levels(self):
        assert bounds.theorem7_num_levels(1024, 1 / 24) >= 1
        with pytest.raises(ValueError):
            bounds.theorem7_num_levels(1024, 0.5)  # 6 eps >= 1

    def test_avg_reads_geometric(self):
        assert bounds.theorem7_avg_reads(0.25) == pytest.approx(4 / 3)
        assert bounds.theorem7_avg_reads(0.25, max_levels=2) == pytest.approx(
            1.25
        )

    def test_avg_reads_invalid(self):
        with pytest.raises(ValueError):
            bounds.theorem7_avg_reads(1.0)


class TestMiscBounds:
    def test_btree_height(self):
        assert bounds.btree_height(10_000, 100) == 2
        assert bounds.btree_height(1, 100) == 1
        with pytest.raises(ValueError):
            bounds.btree_height(10, 1)

    def test_striping_blowup(self):
        assert bounds.striping_space_blowup(17) == 17

    def test_telescope_eps(self):
        assert bounds.telescope_eps([0.1, 0.1]) == pytest.approx(0.19)
        assert bounds.telescope_eps([]) == 0.0


class TestCLI:
    def test_main_runs_and_prints(self, capsys):
        from repro.__main__ import main

        rc = main(["--n", "64", "--degree", "16", "--lookups", "50",
                   "--no-btree"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S4.3 dynamic" in out
        assert "B-tree" not in out
