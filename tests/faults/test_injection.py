"""Machine-level fault injection: typed errors, retries, checksums."""

from __future__ import annotations

import pytest

from repro.faults.plan import FOREVER
from repro.pdm.errors import BlockCorruption, DiskFailure, TransientIOError
from repro.pdm.faults import (
    DiskOutage,
    SilentCorruption,
    StragglerWindow,
    TransientWindow,
    attach_faults,
    detach_faults,
)
from repro.pdm.machine import ParallelDiskMachine


def _write(machine, addr, payload=("x",)):
    items = list(payload) + [None] * (machine.block_items - len(payload))
    machine.write_blocks([(addr, items, machine.block_bits)])


class TestOutages:
    def test_read_from_down_disk_raises(self, machine):
        _write(machine, (0, 0))
        attach_faults(machine, [DiskOutage(0, 0, FOREVER)])
        with pytest.raises(DiskFailure) as exc_info:
            machine.read_blocks([(0, 0)])
        assert exc_info.value.disk == 0
        assert exc_info.value.kind == "DiskFailure"

    def test_write_to_down_disk_is_atomic(self, machine):
        attach_faults(machine, [DiskOutage(2, 0, FOREVER)])
        before = machine.stats.snapshot()
        with pytest.raises(DiskFailure):
            machine.write_blocks(
                [
                    ((1, 0), [1] + [None] * 15, machine.block_bits),
                    ((2, 0), [2] + [None] * 15, machine.block_bits),
                ]
            )
        # Nothing charged, nothing written — not even the healthy half.
        assert machine.stats.since(before).total_ios == 0
        assert machine.peek_at((1, 0)) is None

    def test_outage_window_heals(self, machine):
        _write(machine, (0, 0))
        clock = machine.stats.total_ios
        attach_faults(machine, [DiskOutage(0, clock, clock + 1)])
        with pytest.raises(DiskFailure):
            machine.read_blocks([(0, 0)])
        # The failed attempt advanced the clock past the window.
        blocks = machine.read_blocks([(0, 0)])
        assert blocks[(0, 0)].payload[0] == "x"

    def test_degraded_read_partitions_addresses(self, machine):
        _write(machine, (0, 0))
        _write(machine, (1, 0))
        attach_faults(machine, [DiskOutage(0, 0, FOREVER)])
        blocks, failures = machine.read_blocks_degraded([(0, 0), (1, 0)])
        assert set(blocks) == {(1, 0)}
        assert set(failures) == {(0, 0)}
        assert isinstance(failures[(0, 0)], DiskFailure)


class TestTransients:
    def test_short_window_is_retried_through(self, machine):
        _write(machine, (3, 0))
        clock = machine.stats.total_ios
        attach_faults(machine, [TransientWindow(3, clock, clock + 2)])
        blocks = machine.read_blocks([(3, 0)])
        assert blocks[(3, 0)].payload[0] == "x"
        assert machine.stats.retry_ios > 0

    def test_budget_exhaustion_raises_typed(self, machine):
        _write(machine, (3, 0))
        attach_faults(
            machine, [TransientWindow(3, 0, FOREVER)], retry_budget=2
        )
        with pytest.raises(TransientIOError):
            machine.read_blocks([(3, 0)])
        assert machine.faults.injected["transient"] >= 3

    def test_retry_rounds_counted_as_retry_ios(self, machine):
        _write(machine, (3, 0))
        clock = machine.stats.total_ios
        attach_faults(machine, [TransientWindow(3, clock, clock + 1)])
        before = machine.stats.snapshot()
        machine.read_blocks([(3, 0)])
        cost = machine.stats.since(before)
        assert cost.read_ios == cost.retry_ios + 1  # retries + one real round


class TestCorruption:
    def test_checksummed_read_detects(self, machine):
        attach_faults(
            machine,
            [SilentCorruption(0, 10_000, 0)],
        )
        _write(machine, (0, 0))  # sealed: checksums are on
        # Burn I/O until the corruption round passes.
        while machine.stats.total_ios < 10_000:
            machine.stats.read_ios += 100
        with pytest.raises(BlockCorruption):
            machine.read_blocks([(0, 0)])
        assert machine.faults.injected["corruption"] == 1

    def test_without_checksums_corruption_is_silent(self, machine):
        attach_faults(
            machine,
            [SilentCorruption(0, 10_000, 0)],
            checksums=False,
        )
        _write(machine, (0, 0))
        while machine.stats.total_ios < 10_000:
            machine.stats.read_ios += 100
        blocks = machine.read_blocks([(0, 0)])  # no error...
        assert blocks[(0, 0)].payload[0] != "x"  # ...but garbage

    def test_corrupting_unwritten_block_is_noop(self, machine):
        attach_faults(machine, [SilentCorruption(0, 0, 7)])
        machine.read_blocks([(0, 7)])
        assert machine.faults.injected["corruption"] == 0
        assert machine.faults.pending_corruptions == 0  # consumed anyway


class TestStragglers:
    def test_straggler_charges_extra_rounds(self, machine):
        _write(machine, (5, 0))
        clock = machine.stats.total_ios
        attach_faults(
            machine, [StragglerWindow(5, clock, clock + 1, extra_rounds=2)]
        )
        before = machine.stats.snapshot()
        machine.read_blocks([(5, 0)])
        cost = machine.stats.since(before)
        assert cost.read_ios == 3  # 1 real + 2 straggler
        assert cost.retry_ios == 2
        assert machine.faults.injected["straggler_rounds"] == 2


class TestAttachDetach:
    def test_double_attach_rejected(self, machine):
        attach_faults(machine, [])
        with pytest.raises(RuntimeError):
            attach_faults(machine, [])

    def test_event_disk_validated(self, machine):
        with pytest.raises(ValueError):
            attach_faults(machine, [DiskOutage(99, 0, 1)])

    def test_detach_restores_plain_reads(self, machine):
        _write(machine, (0, 0))
        attach_faults(machine, [DiskOutage(0, 0, FOREVER)])
        with pytest.raises(DiskFailure):
            machine.read_blocks([(0, 0)])
        detach_faults(machine)
        assert machine.faults is None
        blocks = machine.read_blocks([(0, 0)])
        assert blocks[(0, 0)].payload[0] == "x"

    def test_storage_shared_through_wrap(self, machine):
        _write(machine, (4, 1))
        attach_faults(machine, [])
        assert machine.read_blocks([(4, 1)])[(4, 1)].payload[0] == "x"
