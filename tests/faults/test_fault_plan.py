"""FaultPlan: seeded generation must be bit-identical and well-formed."""

from __future__ import annotations

import pytest

from repro.faults.plan import FOREVER, FaultPlan
from repro.pdm.faults import (
    DiskOutage,
    SilentCorruption,
    StragglerWindow,
    TransientWindow,
)


class TestGenerate:
    def test_bit_identical_across_calls(self):
        a = FaultPlan.generate(7, num_disks=16, horizon=512)
        b = FaultPlan.generate(7, num_disks=16, horizon=512)
        assert a.events == b.events
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(7, num_disks=16, horizon=512)
        b = FaultPlan.generate(8, num_disks=16, horizon=512)
        assert a.events != b.events

    def test_events_well_formed(self):
        plan = FaultPlan.generate(3, num_disks=8, horizon=256)
        assert len(plan) > 0
        for e in plan.events:
            assert 0 <= e.disk < 8
            if isinstance(e, SilentCorruption):
                assert 0 <= e.round < 256
            else:
                assert 0 <= e.start < e.end

    def test_outage_cap_per_epoch(self):
        plan = FaultPlan.generate(
            5,
            num_disks=32,
            horizon=800,
            epochs=8,
            outage_rate=1.0,  # every disk wants to die...
            max_down_per_epoch=2,  # ...but at most two per epoch may
        )
        epoch_len = 800 // 8
        starts: dict = {}
        for e in plan.events:
            if isinstance(e, DiskOutage):
                starts.setdefault(e.start // epoch_len, 0)
                starts[e.start // epoch_len] += 1
        assert starts and all(v <= 2 for v in starts.values())

    def test_counts_partition_events(self):
        plan = FaultPlan.generate(11, num_disks=16, horizon=512)
        counts = plan.counts()
        assert sum(counts.values()) == len(plan)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(0, num_disks=0, horizon=10)
        with pytest.raises(ValueError):
            FaultPlan.generate(0, num_disks=4, horizon=0)
        with pytest.raises(ValueError):
            FaultPlan.generate(0, num_disks=4, horizon=10, epochs=0)


class TestTransforms:
    def test_shifted_translates_every_window(self):
        plan = FaultPlan.generate(9, num_disks=8, horizon=128)
        moved = plan.shifted(1000)
        assert len(moved) == len(plan)
        for before, after in zip(plan.events, moved.events):
            assert type(before) is type(after)
            assert after.disk == before.disk
            if isinstance(before, SilentCorruption):
                assert after.round == before.round + 1000
            else:
                assert after.start == before.start + 1000
                assert after.end == before.end + 1000
            if isinstance(before, StragglerWindow):
                assert after.extra_rounds == before.extra_rounds

    def test_shifted_zero_is_identity(self):
        plan = FaultPlan.generate(9, num_disks=8, horizon=128)
        assert plan.shifted(0) is plan

    def test_kill_disks(self):
        plan = FaultPlan.kill_disks([2, 5], num_disks=8)
        assert len(plan) == 2
        for e in plan.events:
            assert isinstance(e, DiskOutage)
            assert e.start == 0 and e.end == FOREVER
        assert [e.disk for e in plan.events] == [2, 5]

    def test_merged_unions_events(self):
        a = FaultPlan.kill_disks([1], num_disks=8)
        b = FaultPlan.generate(2, num_disks=8, horizon=64)
        merged = a.merged(b)
        assert len(merged) == len(a) + len(b)
        assert merged.horizon == max(a.horizon, b.horizon)

    def test_transient_windows_present_at_default_rates(self):
        plan = FaultPlan.generate(1, num_disks=16, horizon=512)
        kinds = {type(e) for e in plan.events}
        assert TransientWindow in kinds
