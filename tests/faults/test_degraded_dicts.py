"""Degraded-mode dictionary reads: sound answers or typed errors, never lies."""

from __future__ import annotations

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.interface import DegradedLookupError, DegradedModeError
from repro.core.static_dict import StaticDictionary, fault_tolerance, fields_needed
from repro.faults.plan import FaultPlan
from repro.pdm.errors import IOFault
from repro.pdm.faults import SilentCorruption, attach_faults
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16


def _items(n, *, stride=97, sigma=16):
    return {(7 + i * stride) % U: (i * 31) % (1 << sigma) for i in range(n)}


# -- static: replicate-mode majority reads ------------------------------------


class TestStaticDegraded:
    def _build(self, machine, n=32, redundancy="replicate"):
        items = _items(n)
        sd = StaticDictionary.build(
            machine,
            items,
            universe_size=U,
            sigma=16,
            case="b",
            redundancy=redundancy,
            seed=3,
        )
        return sd, items

    def test_tolerance_formula(self):
        for d in (4, 6, 8, 12, 16):
            m = fields_needed(d)
            assert fault_tolerance(d) == (m - 1) // 2

    def test_survives_up_to_tolerance(self, machine):
        sd, items = self._build(machine)
        tol = fault_tolerance(sd.degree)
        assert tol >= 1
        key = sorted(items)[0]
        doomed = sorted(sd.assignment[key])[:tol]
        attach_faults(
            machine,
            FaultPlan.kill_disks(doomed, num_disks=machine.num_disks).events,
        )
        for k, v in sorted(items.items()):
            result = sd.lookup(k)
            assert result.found and result.value == v
        # Misses stay sound too: no key, no majority, failures <= tolerance.
        absent = next(x for x in range(U) if x not in items)
        assert not sd.lookup(absent).found

    def test_beyond_tolerance_raises_never_lies(self, machine):
        sd, items = self._build(machine)
        tol = fault_tolerance(sd.degree)
        key = sorted(items)[0]
        doomed = sorted(sd.assignment[key])[: tol + 1]
        attach_faults(
            machine,
            FaultPlan.kill_disks(doomed, num_disks=machine.num_disks).events,
        )
        with pytest.raises(DegradedLookupError):
            sd.lookup(key)

    def test_standard_layout_loses_value_not_membership(self, machine):
        sd, items = self._build(machine, redundancy="standard")
        key = sorted(items)[0]
        doomed = sorted(sd.assignment[key])[:1]
        attach_faults(
            machine,
            FaultPlan.kill_disks(doomed, num_disks=machine.num_disks).events,
        )
        with pytest.raises(DegradedLookupError) as exc_info:
            sd.lookup(key)
        # Membership was still decidable; only the value fragment is gone.
        assert exc_info.value.membership is True

    def test_read_repair_scrubs_corruption(self, machine):
        sd, items = self._build(machine)
        key = sorted(items)[0]
        stripes = sorted(sd.assignment[key])
        locs = dict(sd.graph.striped_neighbors(key))
        (disk, block), _slot = sd.array._block_addr(
            (stripes[0], locs[stripes[0]])
        )
        clock = machine.stats.total_ios
        attach_faults(
            machine, [SilentCorruption(disk, clock, block, salt=5)]
        )
        before = machine.stats.snapshot()
        result = sd.lookup(key)
        assert result.found and result.value == items[key]
        cost = machine.stats.since(before)
        assert cost.repair_ios > 0  # the corrupted block was rewritten
        # Second lookup reads clean data: no retries, no repairs.
        before = machine.stats.snapshot()
        result = sd.lookup(key)
        assert result.found and result.value == items[key]
        again = machine.stats.since(before)
        assert again.repair_ios == 0 and again.retry_ios == 0


# -- basic: k-choice membership under a dead bucket disk ----------------------


class TestBasicDegraded:
    def _build(self, machine, n=24):
        d = BasicDictionary(
            machine, universe_size=U, capacity=64, degree=8, seed=5
        )
        keys = sorted(_items(n))
        for k in keys:
            d.upsert(k, k % 251)
        return d, keys

    def test_lookup_sound_or_typed(self, machine):
        d, keys = self._build(machine)
        attach_faults(
            machine, FaultPlan.kill_disks([0], num_disks=8).events
        )
        outcomes = {"ok": 0, "raised": 0}
        for k in keys:
            try:
                result = d.lookup(k)
                assert result.found and result.value == k % 251
                outcomes["ok"] += 1
            except DegradedLookupError as exc:
                # The key's stored fragment sits on the dead disk: the
                # surviving candidates cannot prove either answer.
                assert exc.key == k
                outcomes["raised"] += 1
        # Every key has a candidate bucket per stripe, so both outcomes
        # appear with two dozen keys over eight disks.
        assert outcomes["ok"] > 0 and outcomes["raised"] > 0

    def test_absence_unprovable_raises(self, machine):
        d, keys = self._build(machine)
        attach_faults(
            machine, FaultPlan.kill_disks([0], num_disks=8).events
        )
        absent = next(x for x in range(U) if x not in set(keys))
        with pytest.raises(DegradedLookupError) as exc_info:
            d.lookup(absent)
        assert exc_info.value.membership is None

    def test_mutations_refuse_upfront(self, machine):
        d, keys = self._build(machine)
        before_keys = set(d.stored_keys())
        attach_faults(
            machine, FaultPlan.kill_disks([0], num_disks=8).events
        )
        with pytest.raises(DegradedModeError):
            d.upsert(keys[0], 1)
        with pytest.raises(DegradedModeError):
            d.delete(keys[0])
        assert set(d.stored_keys()) == before_keys  # nothing half-applied


# -- dynamic: per-level propagation -------------------------------------------


class TestDynamicDegraded:
    def _build(self, wide_machine, n=24):
        d = DynamicDictionary(
            wide_machine, universe_size=U, capacity=64, sigma=16, seed=9
        )
        items = _items(n)
        for k, v in sorted(items.items()):
            d.insert(k, v)
        return d, items

    def test_chain_crossing_dead_stripe_raises(self, wide_machine):
        d, items = self._build(wide_machine)
        key0 = sorted(items)[0]
        level, head = d.membership.lookup(key0).value
        # Kill the disk holding the key's chain head: the walk cannot start.
        dead = d.levels[level].disk_offset + head
        attach_faults(
            wide_machine, FaultPlan.kill_disks([dead], num_disks=32).events
        )
        with pytest.raises(DegradedLookupError) as exc_info:
            d.lookup(key0)
        assert exc_info.value.membership is True  # membership group healthy

    def test_chain_avoiding_dead_stripe_survives(self, wide_machine):
        d, items = self._build(wide_machine)
        # First-fit packs chains into the LOWEST free stripes, so the top
        # stripe is unused at this occupancy: killing it degrades the
        # speculative read without touching any chain.
        arr = d.levels[0]
        dead = arr.disk_offset + arr.stripes - 1
        attach_faults(
            wide_machine, FaultPlan.kill_disks([dead], num_disks=32).events
        )
        ok = 0
        for k, v in sorted(items.items()):
            try:
                result = d.lookup(k)
                assert result.found and result.value == v
                ok += 1
            except DegradedLookupError:
                pass  # loud is acceptable; silent wrong never
        assert ok > 0

    def test_miss_sound_despite_field_failures(self, wide_machine):
        d, items = self._build(wide_machine)
        dead = d.levels[0].disk_offset
        attach_faults(
            wide_machine, FaultPlan.kill_disks([dead], num_disks=32).events
        )
        absent = next(x for x in range(U) if x not in items)
        result = d.lookup(absent)
        assert not result.found

    def test_insert_places_around_dead_stripe(self, wide_machine):
        d, items = self._build(wide_machine)
        dead = d.levels[0].disk_offset
        attach_faults(
            wide_machine, FaultPlan.kill_disks([dead], num_disks=32).events
        )
        new_key = next(x for x in range(U) if x not in items)
        d.insert(new_key, 1234)
        result = d.lookup(new_key)  # chain avoids the unknown-state stripe
        assert result.found and result.value == 1234

    def test_delete_is_loud_or_clean_never_corrupt(self, wide_machine):
        d, items = self._build(wide_machine)
        dead = d.levels[0].disk_offset
        attach_faults(
            wide_machine, FaultPlan.kill_disks([dead], num_disks=32).events
        )
        for k in sorted(items):
            try:
                d.delete(k)
            except (DegradedModeError, IOFault):
                continue
            # Deleted: the membership miss makes absence sound even with
            # leaked chain fields on the dead stripe.
            assert not d.lookup(k).found
