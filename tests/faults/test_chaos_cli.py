"""Chaos harness + ``python -m repro.faults`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.faults.chaos import ChaosReport, run_chaos
from repro.faults.cli import main


class TestRunChaos:
    @pytest.mark.parametrize("structure", ["static", "basic", "dynamic"])
    def test_no_silent_wrong_answers(self, structure):
        report = run_chaos(
            structure, operations=64, capacity=48, num_disks=16
        )
        assert report.ok
        assert report.wrong_answers == 0
        assert report.survived + report.failed_total == report.operations

    def test_static_survives_generated_plan_fully(self):
        # Generated plans cap concurrent outages at 1 < fault_tolerance,
        # so the replicated static dict must answer every single lookup.
        report = run_chaos("static", operations=64, capacity=48)
        assert report.survived == report.operations
        assert report.failed_total == 0

    def test_degraded_overhead_is_measured(self):
        report = run_chaos("static", operations=64, capacity=48)
        assert report.healthy_ios > 0
        assert report.chaos_ios >= report.healthy_ios
        assert report.retry_ios > 0  # transients + stragglers cost rounds
        assert report.degraded_spans > 0
        # And the overhead shows up in the metrics registry too.
        metrics = report.registry.as_dict()
        assert metrics["faults.retry_ios"]["value"] == report.retry_ios

    def test_deterministic_repeat(self):
        a = run_chaos("basic", operations=64, capacity=48).to_dict()
        b = run_chaos("basic", operations=64, capacity=48).to_dict()
        assert a == b

    def test_fault_seed_changes_outcome(self):
        a = run_chaos("basic", operations=64, capacity=48, fault_seed=1)
        b = run_chaos("basic", operations=64, capacity=48, fault_seed=2)
        assert a.to_dict() != b.to_dict()

    def test_unknown_structure_rejected(self):
        with pytest.raises(ValueError):
            run_chaos("btree")

    def test_report_shape(self):
        report = run_chaos("static", operations=32, capacity=24)
        assert isinstance(report, ChaosReport)
        data = report.to_dict()
        for field in (
            "structure",
            "plan",
            "survived",
            "failed",
            "wrong_answers",
            "healthy_ios",
            "chaos_ios",
            "retry_ios",
            "repair_ios",
            "injected",
            "ok",
        ):
            assert field in data
        text = report.render_text()
        assert "chaos run" in text and "verdict" in text


class TestCli:
    def test_exit_zero_and_json_report(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        code = main(
            [
                "--structure",
                "static",
                "--operations",
                "64",
                "--capacity",
                "48",
                "--quiet",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["tool"] == "repro.faults"
        assert payload["ok"] is True
        assert len(payload["runs"]) == 1

    def test_json_bytes_deterministic(self, tmp_path):
        args = [
            "--structure",
            "basic",
            "--operations",
            "64",
            "--capacity",
            "48",
            "--quiet",
            "--json",
        ]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(args + [str(a)]) == 0
        assert main(args + [str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_operational_error_exits_two(self, tmp_path):
        code = main(
            [
                "--structure",
                "static",
                "--operations",
                "16",
                "--capacity",
                "8",
                "--disks",
                "2",  # degree < 4: structure constructor rejects
                "--quiet",
            ]
        )
        assert code == 2

    def test_no_checksums_lets_corruption_lie(self):
        # The documented failure mode the checksum flag exists for:
        # scramble the exact bucket holding a stored key.  Without
        # verify-on-read the lookup *returns* — and is wrong.  With it,
        # the same corruption surfaces as a typed degraded error.
        from repro.core.basic_dict import BasicDictionary
        from repro.core.interface import DegradedLookupError
        from repro.pdm.faults import SilentCorruption, attach_faults
        from repro.pdm.machine import ParallelDiskMachine

        def scrambled_lookup(checksums):
            machine = ParallelDiskMachine(8, 16, item_bits=64)
            d = BasicDictionary(
                machine, universe_size=1 << 16, capacity=32, degree=8, seed=5
            )
            key = 12345
            d.upsert(key, 77)
            loc = next(
                l
                for l in d.graph.striped_neighbors(key)
                if any(
                    item is not None and item[0] == key
                    for item in d.buckets.peek(l)
                )
            )
            events = [
                SilentCorruption(disk, machine.stats.total_ios, block)
                for disk, block in d.buckets._addrs(loc)
            ]
            attach_faults(machine, events, checksums=checksums)
            return d.lookup(key)

        silent = scrambled_lookup(checksums=False)
        assert not (silent.found and silent.value == 77)  # a quiet lie
        with pytest.raises(DegradedLookupError):  # a loud truth
            scrambled_lookup(checksums=True)
