"""Adversarial fault placement: the exact Theorem-6 degradation threshold.

The adversary knows the layout: it fails precisely the disks holding a
chosen key's assigned fields.  The contract under test (the PR's
acceptance criterion):

* up to ``fault_tolerance(d) = floor((ceil(2d/3) - 1) / 2)`` lost fields,
  every lookup — for *every* key, not just the targeted one — still
  answers correctly;
* one fault beyond the threshold raises a typed
  :class:`DegradedLookupError`;
* at no point, on either side of the threshold, does any lookup return a
  silently wrong answer.
"""

from __future__ import annotations

import pytest

from repro.core.interface import DegradedLookupError
from repro.core.static_dict import StaticDictionary, fault_tolerance
from repro.faults.plan import FaultPlan
from repro.pdm.faults import attach_faults
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16
SIGMA = 16


def _build(num_disks=8, n=32, seed=3):
    machine = ParallelDiskMachine(num_disks, 16, item_bits=64)
    items = {(11 + i * 131) % U: (i * 37) % (1 << SIGMA) for i in range(n)}
    sd = StaticDictionary.build(
        machine,
        items,
        universe_size=U,
        sigma=SIGMA,
        case="b",
        redundancy="replicate",
        seed=seed,
    )
    return machine, sd, items


def _absent_keys(items, count=8):
    out = []
    x = 0
    while len(out) < count:
        if x not in items:
            out.append(x)
        x += 1
    return out


class TestThresholdSweep:
    def test_survives_every_fault_count_up_to_tolerance(self):
        tol = fault_tolerance(8)
        assert tol == 2  # d=8: m=6, floor(5/2)
        for f in range(tol + 1):
            machine, sd, items = _build()
            target = sorted(items)[0]
            doomed = sorted(sd.assignment[target])[:f]
            attach_faults(
                machine,
                FaultPlan.kill_disks(doomed, num_disks=8).events,
            )
            for k, v in sorted(items.items()):
                result = sd.lookup(k)
                assert result.found, f"f={f}: key {k} lost"
                assert result.value == v, f"f={f}: key {k} wrong value"
            for k in _absent_keys(items):
                assert not sd.lookup(k).found, f"f={f}: ghost key {k}"

    def test_one_beyond_tolerance_is_typed_never_wrong(self):
        tol = fault_tolerance(8)
        machine, sd, items = _build()
        target = sorted(items)[0]
        doomed = sorted(sd.assignment[target])[: tol + 1]
        attach_faults(
            machine, FaultPlan.kill_disks(doomed, num_disks=8).events
        )
        with pytest.raises(DegradedLookupError) as exc_info:
            sd.lookup(target)
        assert exc_info.value.key == target
        # Collateral keys: correct or typed — silence is the only failure.
        for k, v in sorted(items.items()):
            if k == target:
                continue
            try:
                result = sd.lookup(k)
            except DegradedLookupError:
                continue
            assert result.found and result.value == v

    def test_threshold_is_exact_not_conservative(self):
        # The same key that raises at tol+1 must still answer at tol:
        # the bound is tight, not a safety margin.
        tol = fault_tolerance(8)
        machine, sd, items = _build()
        target = sorted(items)[0]
        doomed = sorted(sd.assignment[target])[:tol]
        attach_faults(
            machine, FaultPlan.kill_disks(doomed, num_disks=8).events
        )
        result = sd.lookup(target)
        assert result.found and result.value == items[target]

    def test_degradation_visible_in_stats(self):
        machine, sd, items = _build()
        target = sorted(items)[0]
        doomed = sorted(sd.assignment[target])[:1]
        attach_faults(
            machine, FaultPlan.kill_disks(doomed, num_disks=8).events
        )
        sd.lookup(target)
        assert machine.faults.injected["disk_failure"] > 0
