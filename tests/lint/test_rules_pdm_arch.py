"""Fixture snippets for the PDM and ARCH rule families."""

import textwrap


def s(code: str) -> str:
    return textwrap.dedent(code)


class TestPDM101InternalsImport:
    def test_import_internal_module(self, check):
        assert check("from repro.pdm.disk import Disk\n") == ["PDM101:1"]
        assert check("import repro.pdm.block\n") == ["PDM101:1"]

    def test_import_internal_name_from_facade(self, check):
        assert check("from repro.pdm import Block\n") == ["PDM101:1"]

    def test_facade_public_names_clean(self, check):
        assert check(s("""\
            from repro.pdm import InternalMemory, ParallelDiskMachine, measure
            """)) == []

    def test_memory_submodule_flagged(self, check):
        assert check("from repro.pdm.memory import InternalMemory\n") == [
            "PDM101:1"
        ]

    def test_pdm_itself_exempt(self, check):
        src = "from repro.pdm.block import Block\n"
        assert check(src, rel_path="src/repro/pdm/machine.py") == []


class TestPDM102UnchargedIo:
    def test_block_at_flagged(self, check):
        assert check(s("""\
            def peek(machine, addr):
                return machine.block_at(addr).payload
            """)) == ["PDM102:2"]

    def test_disks_subscript_flagged(self, check):
        assert check(s("""\
            def grab(machine):
                return machine.disks[0]
            """)) == ["PDM102:2"]

    def test_disks_iteration_flagged(self, check):
        assert check(s("""\
            def total(machine):
                return sum(d.used_bits for d in machine.disks)
            """)) == ["PDM102:2"]

    def test_int_field_named_disks_clean(self, check):
        assert check(s("""\
            class Suggestion:
                disks: int
                def show(self):
                    return f"D={self.disks}"
            """)) == []

    def test_charged_api_clean(self, check):
        assert check(s("""\
            def move(machine, addr):
                blk = machine.read_blocks([addr])[addr]
                machine.write_blocks([(addr, blk.payload, 8)])
            """)) == []

    def test_pdm_itself_exempt(self, check):
        src = "def f(m):\n    return m.block_at((0, 0))\n"
        assert check(src, rel_path="src/repro/pdm/striping.py") == []


class TestARCH201Layering:
    def test_core_may_not_import_hashing(self, check):
        out = check(
            "from repro.hashing.families import PolynomialHashFamily\n",
            rel_path="src/repro/core/dict.py",
        )
        assert out == ["ARCH201:1"]

    def test_core_may_not_import_workloads(self, check):
        out = check(
            "from repro.workloads.keys import uniform_keys\n",
            rel_path="src/repro/core/dict.py",
        )
        assert out == ["ARCH201:1"]

    def test_core_may_not_import_analysis(self, check):
        out = check(
            "import repro.analysis.reporting\n",
            rel_path="src/repro/core/params.py",
        )
        assert out == ["ARCH201:1"]

    def test_core_allowed_deps_clean(self, check):
        assert check(
            s("""\
                import repro.bounds as bounds
                from repro.bits.mix import splitmix64
                from repro.expanders.base import Expander
                from repro.extsort.mergesort import external_merge_sort
                from repro.pdm import ParallelDiskMachine
                """),
            rel_path="src/repro/core/dict.py",
        ) == []

    def test_pdm_is_a_leaf(self, check):
        out = check(
            "from repro.expanders.base import Expander\n",
            rel_path="src/repro/pdm/machine.py",
        )
        assert out == ["ARCH201:1"]

    def test_hashing_may_use_core_interface(self, check):
        assert check(
            "from repro.core.interface import Dictionary\n",
            rel_path="src/repro/hashing/cuckoo.py",
        ) == []

    def test_analysis_unconstrained(self, check):
        assert check(
            "from repro.hashing import CuckooDictionary\n",
            rel_path="src/repro/analysis/figure1.py",
        ) == []

    def test_root_facade_import_flagged(self, check):
        out = check(
            "from repro import Dictionary\n",
            rel_path="src/repro/core/dict.py",
        )
        assert out == ["ARCH201:1"]

    def test_lint_is_stdlib_only(self, check):
        out = check(
            "from repro.pdm import IOStats\n",
            rel_path="src/repro/lint/engine.py",
        )
        # ARCH201 for the layer break; PDM101 does not apply (facade import)
        assert out == ["ARCH201:1"]

    def test_files_without_module_name_exempt(self, check):
        assert check(
            "from repro.hashing import CuckooDictionary\n",
            rel_path="tests/core/test_x.py",
        ) == []


class TestLINT001SyntaxError:
    def test_unparseable_file(self, check):
        out = check("def broken(:\n    pass\n")
        assert out and out[0].startswith("LINT001:")
