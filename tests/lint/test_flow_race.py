"""Golden fixtures for the RACE2xx flow rules.

The RACE family polices shared mutable Python objects ahead of the
pluggable-executor split; the ``# detlint: guarded(<lock>)`` pragma on a
definition line is the sanctioned escape hatch and doubles as the
synchronisation inventory.
"""

import pytest


class TestRace201ModuleState:
    def test_module_level_dict_mutated_by_function(self, flow_check):
        hits = flow_check({
            "repro.core.reg": (
                "_REGISTRY = {}\n"
                "\n"
                "def register(name, obj):\n"
                "    _REGISTRY[name] = obj\n"
            ),
        }, select=["RACE201"])
        assert hits == ["RACE201:src/repro/core/reg.py:1"]

    def test_read_only_module_dict_is_clean(self, flow_check):
        hits = flow_check({
            "repro.core.reg": (
                "_TABLE = {'a': 1}\n"
                "\n"
                "def lookup(name):\n"
                "    return _TABLE.get(name)\n"
            ),
        }, select=["RACE201"])
        assert hits == []

    def test_local_shadow_is_not_a_mutation_of_the_global(self, flow_check):
        hits = flow_check({
            "repro.core.reg": (
                "_CACHE = {}\n"
                "\n"
                "def build(_CACHE=None):\n"
                "    _CACHE = {}\n"
                "    _CACHE['k'] = 1\n"
                "    return _CACHE\n"
            ),
        }, select=["RACE201"])
        assert hits == []

    def test_global_statement_rebind_is_flagged(self, flow_check):
        hits = flow_check({
            "repro.core.reg": (
                "_STATE = {}\n"
                "\n"
                "def reset():\n"
                "    global _STATE\n"
                "    _STATE = {}\n"
            ),
        }, select=["RACE201"])
        assert hits == ["RACE201:src/repro/core/reg.py:1"]

    def test_mutable_class_attribute_mutated_via_self(self, flow_check):
        hits = flow_check({
            "repro.core.cls": (
                "class Walker:\n"
                "    seen = set()\n"
                "\n"
                "    def visit(self, node):\n"
                "        self.seen.add(node)\n"
            ),
        }, select=["RACE201"])
        assert hits == ["RACE201:src/repro/core/cls.py:2"]

    def test_instance_rebind_makes_the_class_attr_a_default(self, flow_check):
        hits = flow_check({
            "repro.core.cls": (
                "class Walker:\n"
                "    seen = set()\n"
                "\n"
                "    def visit(self, node):\n"
                "        self.seen = set(self.seen)\n"
                "        self.seen.add(node)\n"
            ),
        }, select=["RACE201"])
        assert hits == []

    def test_guarded_pragma_on_the_definition_suppresses(self, flow_check):
        hits = flow_check({
            "repro.core.reg": (
                "_REGISTRY = {}  # detlint: guarded(import-time)\n"
                "\n"
                "def register(name, obj):\n"
                "    _REGISTRY[name] = obj\n"
            ),
        }, select=["RACE201"])
        assert hits == []


class TestRace202SharedCache:
    MEMO = (
        "class Memo:\n"
        "    def __init__(self):\n"
        "        self._memo = {}\n"
        "\n"
        "    def value(self, key):\n"
        "        if key in self._memo:\n"
        "            return self._memo[key]\n"
        "        result = key * 2\n"
        "        self._memo[key] = result\n"
        "        return result\n"
    )

    def test_check_then_act_is_anchored_at_the_definition(self, flow_check):
        hits = flow_check(
            {"repro.core.memo": self.MEMO}, select=["RACE202"]
        )
        # anchored at the __init__ assignment so one guarded() pragma
        # covers every access path
        assert hits == ["RACE202:src/repro/core/memo.py:3"]

    def test_check_then_act_split_across_helpers(self, flow_check):
        hits = flow_check({
            "repro.core.memo": (
                "class Memo:\n"
                "    def __init__(self):\n"
                "        self._memo = {}\n"
                "\n"
                "    def value(self, key):\n"
                "        hit = self._probe(key)\n"
                "        if hit is not None:\n"
                "            return hit\n"
                "        return self._fill(key)\n"
                "\n"
                "    def _probe(self, key):\n"
                "        return self._memo.get(key)\n"
                "\n"
                "    def _fill(self, key):\n"
                "        self._memo[key] = key * 2\n"
                "        return self._memo[key]\n"
            ),
        }, select=["RACE202"])
        assert "RACE202:src/repro/core/memo.py:3" in hits

    def test_write_only_log_is_clean(self, flow_check):
        hits = flow_check({
            "repro.core.log": (
                "class Log:\n"
                "    def __init__(self):\n"
                "        self._events = []\n"
                "\n"
                "    def record(self, event):\n"
                "        self._events.append(event)\n"
            ),
        }, select=["RACE202"])
        assert hits == []

    def test_outside_race_scope_is_not_checked(self, flow_check):
        hits = flow_check(
            {"repro.workloads.memo": self.MEMO}, select=["RACE202"]
        )
        assert hits == []

    def test_guarded_pragma_on_the_init_line_suppresses(self, flow_check):
        guarded = self.MEMO.replace(
            "self._memo = {}",
            "self._memo = {}  # detlint: guarded(pool-lock)",
        )
        hits = flow_check(
            {"repro.core.memo": guarded}, select=["RACE202"]
        )
        assert hits == []


class TestRace203MutationDuringIteration:
    def test_del_inside_the_loop(self, flow_check):
        hits = flow_check({
            "repro.core.prune": (
                "def prune(table):\n"
                "    for key in table:\n"
                "        if key > 2:\n"
                "            del table[key]\n"
            ),
        }, select=["RACE203"])
        assert hits == ["RACE203:src/repro/core/prune.py:4"]

    def test_items_view_is_unwrapped(self, flow_check):
        hits = flow_check({
            "repro.core.prune": (
                "def rescale(table):\n"
                "    for key, value in table.items():\n"
                "        table[key] = value + 1\n"
            ),
        }, select=["RACE203"])
        assert hits == ["RACE203:src/repro/core/prune.py:3"]

    def test_snapshot_before_the_loop_is_clean(self, flow_check):
        hits = flow_check({
            "repro.core.prune": (
                "def prune(table):\n"
                "    for key in list(table):\n"
                "        if key > 2:\n"
                "            del table[key]\n"
            ),
        }, select=["RACE203"])
        assert hits == []

    def test_mutating_a_different_container_is_clean(self, flow_check):
        hits = flow_check({
            "repro.core.prune": (
                "def collect(table, out):\n"
                "    for key in table:\n"
                "        out[key] = table[key]\n"
            ),
        }, select=["RACE203"])
        assert hits == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
