"""Unit tests for the project index: symbol table, type inference, and
call graph (:mod:`repro.lint.flow.project`).

The flow rules are only as good as this index, so its behaviours are
pinned directly: export chasing through package ``__init__`` re-exports,
method resolution through bases, ``self.attr`` typing from constructor
assignments and annotations, and the transitive callee closure.
"""

import pytest

from repro.lint.config import Config
from repro.lint.flow.project import Project, in_packages


def build(tmp_path, modules):
    """Project over {dotted module: source} placed under src/."""
    config = Config(root=tmp_path)
    sources = []
    for mod, src in modules.items():
        rel = "src/" + mod.replace(".", "/")
        if mod.endswith("__init__"):
            rel = rel  # already explicit
        sources.append((rel + ".py", src))
    return Project.build(config, sources)


class TestIndexing:
    def test_functions_classes_and_methods_get_qualnames(self, tmp_path):
        project = build(tmp_path, {
            "repro.core.mod": (
                "def helper():\n"
                "    return 1\n"
                "\n"
                "class Thing:\n"
                "    LIMIT = 4\n"
                "    def run(self):\n"
                "        return helper()\n"
            ),
        })
        assert "repro.core.mod.helper" in project.functions
        assert "repro.core.mod.Thing" in project.classes
        run = project.functions["repro.core.mod.Thing.run"]
        assert run.cls == "repro.core.mod.Thing"
        ci = project.classes["repro.core.mod.Thing"]
        assert [name for name, _stmt, _v in ci.class_assigns] == ["LIMIT"]

    def test_files_outside_src_roots_are_skipped(self, tmp_path):
        config = Config(root=tmp_path)
        project = Project.build(
            config, [("tests/test_x.py", "def f():\n    return 1\n")]
        )
        assert project.modules == {}

    def test_syntax_errors_are_skipped_not_fatal(self, tmp_path):
        project = build(tmp_path, {
            "repro.core.bad": "def broken(:\n",
            "repro.core.good": "def fine():\n    return 1\n",
        })
        assert "repro.core.bad" not in project.modules
        assert "repro.core.good.fine" in project.functions

    def test_in_packages_prefix_semantics(self):
        assert in_packages("repro.pdm.disk", ["repro.pdm"])
        assert in_packages("repro.pdm", ["repro.pdm"])
        assert not in_packages("repro.pdmx", ["repro.pdm"])
        assert not in_packages(None, ["repro.pdm"])


class TestResolveExport:
    MODULES = {
        "repro.pdm.memory": "class InternalMemory:\n    pass\n",
        "repro.pdm.__init__": "from repro.pdm.memory import InternalMemory\n",
        "repro.core.user": (
            "from repro.pdm import InternalMemory\n"
            "\n"
            "def make():\n"
            "    return InternalMemory()\n"
        ),
    }

    def test_chases_package_reexport(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert (
            project.resolve_export("repro.pdm.InternalMemory")
            == "repro.pdm.memory.InternalMemory"
        )

    def test_direct_qualname_resolves_to_itself(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert (
            project.resolve_export("repro.pdm.memory.InternalMemory")
            == "repro.pdm.memory.InternalMemory"
        )

    def test_unknown_name_is_none_not_a_guess(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert project.resolve_export("repro.pdm.NoSuchThing") is None
        assert project.resolve_export("numpy.ndarray") is None

    def test_import_cycle_terminates(self, tmp_path):
        project = build(tmp_path, {
            "repro.core.a": "from repro.core.b import thing\n",
            "repro.core.b": "from repro.core.a import thing\n",
        })
        assert project.resolve_export("repro.core.a.thing") is None


class TestClassMachinery:
    MODULES = {
        "repro.core.base": (
            "class Base:\n"
            "    def shared(self):\n"
            "        return 0\n"
        ),
        "repro.core.derived": (
            "from repro.core.base import Base\n"
            "\n"
            "class Derived(Base):\n"
            "    def own(self):\n"
            "        return 1\n"
        ),
    }

    def test_is_subclass_across_modules(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert project.is_subclass(
            "repro.core.derived.Derived", "repro.core.base.Base"
        )
        assert not project.is_subclass(
            "repro.core.base.Base", "repro.core.derived.Derived"
        )

    def test_lookup_method_walks_the_mro(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        shared = project.lookup_method("repro.core.derived.Derived", "shared")
        assert shared is not None
        assert shared.qualname == "repro.core.base.Base.shared"
        assert project.lookup_method("repro.core.derived.Derived", "nope") is None

    def test_attr_types_from_constructor_and_annotation(self, tmp_path):
        project = build(tmp_path, {
            "repro.core.helper": "class Helper:\n    def go(self):\n        return 1\n",
            "repro.core.owner": (
                "from typing import List\n"
                "from repro.core.helper import Helper\n"
                "\n"
                "class Owner:\n"
                "    def __init__(self):\n"
                "        self.h = Helper()\n"
                "        self.many: List[Helper] = []\n"
            ),
        })
        ci = project.classes["repro.core.owner.Owner"]
        assert ci.attr_types["h"] == "repro.core.helper.Helper"
        assert ci.attr_elem_types["many"] == "repro.core.helper.Helper"


class TestCallGraph:
    MODULES = {
        "repro.core.helper": (
            "class Helper:\n"
            "    def go(self):\n"
            "        return leaf()\n"
            "\n"
            "def leaf():\n"
            "    return 1\n"
        ),
        "repro.core.owner": (
            "from repro.core.helper import Helper\n"
            "\n"
            "class Owner:\n"
            "    def __init__(self):\n"
            "        self.h = Helper()\n"
            "    def run(self):\n"
            "        return self.h.go()\n"
            "    def run_local(self):\n"
            "        h = Helper()\n"
            "        return h.go()\n"
        ),
    }

    def test_self_attr_receiver_resolves_via_inferred_type(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert (
            "repro.core.helper.Helper.go"
            in project.calls["repro.core.owner.Owner.run"]
        )

    def test_local_var_receiver_resolves_via_constructor(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert (
            "repro.core.helper.Helper.go"
            in project.calls["repro.core.owner.Owner.run_local"]
        )

    def test_reachable_from_is_transitive_and_reflexive(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        closure = project.reachable_from("repro.core.owner.Owner.run")
        assert "repro.core.owner.Owner.run" in closure
        assert "repro.core.helper.Helper.go" in closure
        assert "repro.core.helper.leaf" in closure  # two hops

    def test_callers_is_the_reverse_map(self, tmp_path):
        project = build(tmp_path, self.MODULES)
        assert (
            "repro.core.helper.Helper.go"
            in project.callers["repro.core.helper.leaf"]
        )

    def test_recursion_terminates(self, tmp_path):
        project = build(tmp_path, {
            "repro.core.rec": (
                "def ping():\n"
                "    return pong()\n"
                "\n"
                "def pong():\n"
                "    return ping()\n"
            ),
        })
        closure = project.reachable_from("repro.core.rec.ping")
        assert closure == {"repro.core.rec.ping", "repro.core.rec.pong"}


class TestStrictness:
    def test_strict_modules_follow_config_patterns(self, tmp_path):
        config = Config(root=tmp_path)
        project = Project.build(config, [
            ("src/repro/core/a.py", "x = 1\n"),
        ])
        assert [m.module for m in project.strict_modules()] == ["repro.core.a"]

    def test_skip_file_pragma_excludes_the_module(self, tmp_path):
        project = build(tmp_path, {
            "repro.core.skipped": "# detlint: skip-file\nx = {}\n",
        })
        assert "repro.core.skipped" not in project.modules


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
