"""Tests for repro.bits.mix — the canonical deterministic mixers."""

import subprocess
import sys

from repro.bits.mix import derive, splitmix64, stable_hash


class TestSplitmix64:
    def test_reference_vector(self):
        # Reference values from the splitmix64 reference implementation
        # (seed 1234567: first output).
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1

    def test_range_and_determinism(self):
        for z in (0, 1, 2**63, 2**64 - 1):
            v = splitmix64(z)
            assert 0 <= v < 2**64
            assert v == splitmix64(z)


class TestDerive:
    def test_tag_separation(self):
        assert derive(7, 1, 2) != derive(7, 2, 1)
        assert derive(7, 1) != derive(8, 1)
        assert derive(7, 1, 2) == derive(7, 1, 2)


class TestStableHash:
    def test_types(self):
        for v in ("key", b"key", 0, -17, 2**80, True):
            assert 0 <= stable_hash(v) < 2**64

    def test_str_bytes_distinct_identity(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")
        assert stable_hash("abc", seed=1) != stable_hash("abc", seed=2)

    def test_rejects_other_types(self):
        try:
            stable_hash(3.14)  # type: ignore[arg-type]
        except TypeError:
            pass
        else:
            raise AssertionError("float should be rejected")

    def test_cross_process_stability(self):
        """The whole point: identical across processes with different
        PYTHONHASHSEED, where builtin hash() would differ."""
        code = (
            "from repro.bits.mix import stable_hash;"
            "print(stable_hash('determinism'), hash('determinism'))"
        )
        outs = []
        for seed in ("0", "1", "random"):
            res = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                timeout=60,
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                cwd=__file__.rsplit("/tests/", 1)[0],
            )
            assert res.returncode == 0, res.stderr
            outs.append(res.stdout.split())
        stable = {o[0] for o in outs}
        salted = {o[1] for o in outs}
        assert len(stable) == 1
        assert len(salted) > 1  # builtin hash really is per-process
