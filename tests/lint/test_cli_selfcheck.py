"""End-to-end CLI behaviour and the repository self-check.

The self-check is the linter's reason to exist: ``src/repro`` must lint
clean with the shipped configuration and baseline, and a deliberately
seeded violation must fail with the right code and location.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import engine, load_config
from repro.lint.baseline import Baseline
from repro.lint.cli import main

PROJECT_ROOT = Path(__file__).resolve().parents[2]


def run_cli(args, cwd):
    env = dict(os.environ)
    src = str(PROJECT_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def make_project(tmp_path, bad_source):
    """A miniature project mirroring the real layout."""
    (tmp_path / "pyproject.toml").write_text(
        textwrap.dedent("""\
            [tool.detlint]
            paths = ["src"]
            src-roots = ["src"]
            strict = ["src/repro/**"]
            baseline = ".detlint-baseline.json"
            arch-base = ["repro.bits"]

            [tool.detlint.layers]
            "repro.core" = ["repro.pdm"]
            """)
    )
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(bad_source)
    return tmp_path


class TestCliOnSeededViolation:
    BAD = "import random\n\n\ndef draw():\n    return random.random()\n"

    def test_nonzero_exit_with_code_and_location(self, tmp_path):
        proj = make_project(tmp_path, self.BAD)
        res = run_cli(["src"], cwd=proj)
        assert res.returncode == 1, res.stderr
        assert "src/repro/core/bad.py:5:11: DET001" in res.stdout

    def test_json_format(self, tmp_path):
        proj = make_project(tmp_path, self.BAD)
        res = run_cli(["src", "--format", "json"], cwd=proj)
        assert res.returncode == 1
        payload = json.loads(res.stdout)
        [finding] = payload["findings"]
        assert finding["code"] == "DET001"
        assert finding["path"] == "src/repro/core/bad.py"
        assert finding["line"] == 5

    def test_baseline_grandfathers_then_ratchets(self, tmp_path):
        proj = make_project(tmp_path, self.BAD)
        assert run_cli(["src", "--update-baseline"], cwd=proj).returncode == 0
        assert run_cli(["src"], cwd=proj).returncode == 0
        bad = proj / "src" / "repro" / "core" / "bad.py"
        bad.write_text(self.BAD + "\n\ndef more():\n    return random.random()\n")
        res = run_cli(["src"], cwd=proj)
        assert res.returncode == 1
        assert res.stdout.count("DET001") == 1  # only the new finding

    def test_pragma_clears_the_run(self, tmp_path):
        proj = make_project(
            tmp_path,
            "import random\n"
            "x = random.random()  # detlint: ignore[DET001] -- fixture\n",
        )
        res = run_cli(["src"], cwd=proj)
        assert res.returncode == 0, res.stdout + res.stderr

    def test_list_rules_and_explain(self, tmp_path):
        proj = make_project(tmp_path, "x = 1\n")
        listing = run_cli(["--list-rules"], cwd=proj)
        assert listing.returncode == 0
        for code in ("DET001", "DET002", "DET003", "DET004", "DET005",
                     "PDM101", "PDM102", "ARCH201", "LINT001"):
            assert code in listing.stdout
        explain = run_cli(["--explain", "PDM102"], cwd=proj)
        assert explain.returncode == 0
        assert "I/O" in explain.stdout
        assert run_cli(["--explain", "NOPE99"], cwd=proj).returncode == 2

    def test_unknown_path_is_usage_error(self, tmp_path):
        proj = make_project(tmp_path, "x = 1\n")
        assert run_cli(["no/such/dir"], cwd=proj).returncode == 2


class TestSelfCheck:
    """detlint on this repository itself, with the shipped config."""

    def test_src_lints_clean_with_shipped_baseline(self):
        config = load_config(PROJECT_ROOT)
        report = engine.run(config, ["src", "tests", "benchmarks"])
        baseline = Baseline.load(config.baseline_path)
        kept, _suppressed, _stale = baseline.apply(report.findings)
        assert kept == [], "\n".join(f.format() for f in kept)

    def test_in_process_main_matches(self, capsys, monkeypatch):
        monkeypatch.chdir(PROJECT_ROOT)
        rc = main(["src", "tests", "benchmarks"])
        out = capsys.readouterr().out
        assert rc == 0, out

    def test_seeded_violation_in_core_is_caught_in_process(self):
        """The acceptance scenario, without touching the working tree:
        lint a doctored copy of a real core module."""
        config = load_config(PROJECT_ROOT)
        source = (PROJECT_ROOT / "src/repro/core/basic_dict.py").read_text()
        doctored = source + "\nimport random\n_JITTER = random.random()\n"
        lines = doctored.count("\n")
        findings, _ = engine.lint_source(
            doctored,
            rel_path="src/repro/core/basic_dict.py",
            config=config,
        )
        assert [f.code for f in findings] == ["DET001"]
        assert findings[0].line == lines  # the appended call site

    def test_linter_output_is_deterministic(self):
        config = load_config(PROJECT_ROOT)
        a = engine.run(config, ["src"])
        b = engine.run(config, ["src"])
        assert [f.format() for f in a.findings] == [
            f.format() for f in b.findings
        ]
        assert a.files_checked == b.files_checked
