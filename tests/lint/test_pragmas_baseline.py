"""Pragma suppression, baseline round-trip, and config behaviour."""

import textwrap

from repro.lint import pragmas
from repro.lint.baseline import Baseline
from repro.lint.config import Config, match_path
from repro.lint.engine import lint_source
from repro.lint.finding import Finding


def s(code: str) -> str:
    return textwrap.dedent(code)


class TestPragmas:
    def test_same_line_code_suppression(self, check):
        src = s("""\
            import random
            x = random.random()  # detlint: ignore[DET001] -- fixture
            y = random.random()
            """)
        assert check(src) == ["DET001:3"]

    def test_bare_ignore_suppresses_everything(self, check):
        src = 'h = hash("k")  # detlint: ignore\n'
        assert check(src) == []

    def test_wrong_code_does_not_suppress(self, check):
        src = 'h = hash("k")  # detlint: ignore[DET001]\n'
        assert check(src) == ["DET002:1"]

    def test_multiple_codes(self, check):
        src = s("""\
            import random
            h = hash(str(random.random()))  # detlint: ignore[DET001, DET002]
            """)
        assert check(src) == []

    def test_skip_file(self, check):
        src = s("""\
            # detlint: skip-file
            import random
            x = random.random()
            """)
        assert check(src) == []

    def test_pragma_inside_string_is_ignored(self, check):
        src = s("""\
            DOC = "use # detlint: ignore[DET002] to suppress"
            h = hash(DOC)
            """)
        assert check(src) == ["DET002:2"]

    def test_scan_reports_lines(self):
        sup = pragmas.scan("x = 1  # detlint: ignore[DET001]\n")
        assert sup.is_suppressed(1, "DET001")
        assert not sup.is_suppressed(1, "DET002")
        assert not sup.is_suppressed(2, "DET001")

    def test_suppressed_count_reported(self, strict_config):
        src = "x = hash('k')  # detlint: ignore[DET002]\n"
        findings, suppressed = lint_source(
            src, rel_path="src/repro/core/m.py", config=strict_config
        )
        assert findings == [] and suppressed == 1


def _f(path, line, code):
    return Finding(path=path, line=line, col=0, code=code, message="m")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [
            _f("src/a.py", 3, "DET001"),
            _f("src/a.py", 9, "DET001"),
            _f("src/b.py", 1, "PDM102"),
        ]
        b = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        b.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == {
            "src/a.py::DET001": 2,
            "src/b.py::PDM102": 1,
        }
        kept, suppressed, stale = loaded.apply(findings)
        assert kept == [] and suppressed == 3 and stale == []

    def test_new_findings_surface(self, tmp_path):
        old = [_f("src/a.py", 3, "DET001")]
        b = Baseline.from_findings(old)
        new = old + [_f("src/a.py", 10, "DET001"), _f("src/c.py", 2, "DET002")]
        kept, suppressed, stale = b.apply(new)
        assert suppressed == 1
        assert {(f.path, f.code) for f in kept} == {
            ("src/a.py", "DET001"),
            ("src/c.py", "DET002"),
        }

    def test_stale_entries_reported(self):
        b = Baseline(entries={"src/gone.py::DET001": 2})
        kept, suppressed, stale = b.apply([])
        assert kept == [] and suppressed == 0
        assert stale == ["src/gone.py::DET001"]

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == {}

    def test_deterministic_serialisation(self, tmp_path):
        findings = [_f("b.py", 1, "X001"), _f("a.py", 1, "X001")]
        p1, p2 = tmp_path / "1.json", tmp_path / "2.json"
        Baseline.from_findings(findings).save(p1)
        Baseline.from_findings(list(reversed(findings))).save(p2)
        assert p1.read_text() == p2.read_text()


class TestConfig:
    def test_match_path_subtree(self):
        assert match_path("src/repro/core/x.py", "src/repro/**")
        assert not match_path("tests/core/x.py", "src/repro/**")

    def test_module_name_derivation(self, tmp_path):
        cfg = Config(root=tmp_path)
        assert cfg.module_name("src/repro/pdm/disk.py") == "repro.pdm.disk"
        assert cfg.module_name("src/repro/core/__init__.py") == "repro.core"
        assert cfg.module_name("tests/core/test_x.py") is None

    def test_strict_classification(self, tmp_path):
        cfg = Config(root=tmp_path)
        assert cfg.is_strict("src/repro/core/basic_dict.py")
        assert not cfg.is_strict("benchmarks/bench_scaling.py")

    def test_select_and_ignore(self, tmp_path):
        cfg = Config(root=tmp_path)
        cfg.ignore = {"DET002"}
        assert not cfg.rule_enabled("DET002")
        assert cfg.rule_enabled("DET001")
        cfg.select = {"PDM102"}
        assert cfg.rule_enabled("PDM102")
        assert not cfg.rule_enabled("DET001")
