"""The flow pass on this repository itself, plus CLI integration.

Mirrors ``test_cli_selfcheck`` for the flow families: ``src/repro`` must
be flow-clean with the shipped configuration, seeded violations in a real
core module must trip the right rules, and the CLI must carry the flow
findings through its exit-code and JSON contracts.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import flow, load_config

PROJECT_ROOT = Path(__file__).resolve().parents[2]


def run_cli(args, cwd):
    env = dict(os.environ)
    src = str(PROJECT_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _repro_sources(extra=()):
    """(rel_path, source) for every module under src/repro, plus
    overrides/additions from ``extra`` (doctored copies never touch the
    working tree)."""
    config = load_config(PROJECT_ROOT)
    sources = {}
    for path in sorted((PROJECT_ROOT / "src" / "repro").rglob("*.py")):
        rel = path.relative_to(PROJECT_ROOT).as_posix()
        sources[rel] = path.read_text(encoding="utf-8")
    for rel, src in extra:
        sources[rel] = src
    return config, list(sources.items())


class TestRepositoryIsFlowClean:
    def test_src_repro_has_no_unsuppressed_flow_findings(self):
        config, sources = _repro_sources()
        findings, _suppressed = flow.check_sources(config, sources)
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_the_pragma_inventory_is_in_use(self):
        # the guarded()/ignore pragmas must actually be load-bearing:
        # the flow pass suppresses a non-trivial number of declared sites
        config, sources = _repro_sources()
        _findings, suppressed = flow.check_sources(config, sources)
        assert suppressed >= 10

    def test_flow_output_is_deterministic(self):
        config, sources = _repro_sources()
        a = flow.check_sources(config, sources)
        b = flow.check_sources(config, sources)
        assert [f.format() for f in a[0]] == [f.format() for f in b[0]]
        assert a[1] == b[1]


class TestSeededMutations:
    """The acceptance scenarios: doctor a real module in memory and
    verify the intended rule fires at the intended place."""

    def test_direct_blocks_write_in_a_dictionary_trips_cost101(self):
        rel = "src/repro/core/basic_dict.py"
        source = (PROJECT_ROOT / rel).read_text(encoding="utf-8")
        doctored = source + textwrap.dedent("""\n
            def _backdoor(machine, addr, block):
                table = machine.disks[0]._blocks
                table[addr] = block
        """)
        config, sources = _repro_sources(extra=[(rel, doctored)])
        findings, _ = flow.check_sources(config, sources, select=["COST101"])
        assert [f.code for f in findings] == ["COST101"]
        assert findings[0].path == rel
        assert findings[0].line == doctored.rstrip().count("\n") + 1

    def test_unguarded_module_memo_trips_race201_and_202(self):
        rel = "src/repro/core/basic_dict.py"
        source = (PROJECT_ROOT / rel).read_text(encoding="utf-8")
        doctored = source + textwrap.dedent("""\n
            _BUCKET_MEMO = {}

            def _memo_bucket(key, capacity):
                if key in _BUCKET_MEMO:
                    return _BUCKET_MEMO[key]
                _BUCKET_MEMO[key] = key % capacity
                return _BUCKET_MEMO[key]
        """)
        config, sources = _repro_sources(extra=[(rel, doctored)])
        findings, _ = flow.check_sources(config, sources, select=["RACE201"])
        assert [f.code for f in findings] == ["RACE201"]
        assert findings[0].path == rel

    def test_shared_cache_check_then_act_trips_race202(self):
        rel = "src/repro/core/memo_cache.py"
        doctored = textwrap.dedent("""\
            class BucketMemo:
                def __init__(self):
                    self._memo = {}

                def bucket(self, key, capacity):
                    if key in self._memo:
                        return self._memo[key]
                    self._memo[key] = key % capacity
                    return self._memo[key]
        """)
        config, sources = _repro_sources(extra=[(rel, doctored)])
        findings, _ = flow.check_sources(config, sources, select=["RACE202"])
        assert [f"{f.code}:{f.path}:{f.line}" for f in findings] == [
            f"RACE202:{rel}:3"
        ]


class TestCliIntegration:
    def _project(self, tmp_path, modules):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent("""\
                [tool.detlint]
                paths = ["src"]
                src-roots = ["src"]
                strict = ["src/repro/**"]
                baseline = ".detlint-baseline.json"
                """)
        )
        for mod, src in modules.items():
            path = tmp_path / "src" / mod.replace(".", "/")
            path.parent.mkdir(parents=True, exist_ok=True)
            path.with_suffix(".py").write_text(src)
        return tmp_path

    RACY = "_REG = {}\n\n\ndef add(k, v):\n    _REG[k] = v\n"

    def test_flow_finding_sets_exit_one_with_location(self, tmp_path):
        proj = self._project(tmp_path, {"repro.core.reg": self.RACY})
        res = run_cli(["src"], cwd=proj)
        assert res.returncode == 1, res.stderr
        assert "src/repro/core/reg.py:1:0: RACE201" in res.stdout

    def test_json_format_covers_flow_families(self, tmp_path):
        proj = self._project(tmp_path, {"repro.core.reg": self.RACY})
        res = run_cli(["src", "--format", "json"], cwd=proj)
        assert res.returncode == 1
        payload = json.loads(res.stdout)
        [finding] = payload["findings"]
        assert finding["code"] == "RACE201"
        assert finding["path"] == "src/repro/core/reg.py"
        assert payload["flow_files_indexed"] == 1

    def test_no_flow_skips_the_pass(self, tmp_path):
        proj = self._project(tmp_path, {"repro.core.reg": self.RACY})
        res = run_cli(["src", "--no-flow"], cwd=proj)
        assert res.returncode == 0, res.stdout + res.stderr
        payload = json.loads(
            run_cli(["src", "--no-flow", "--format", "json"], cwd=proj).stdout
        )
        assert payload["flow_files_indexed"] == 0

    def test_flow_findings_can_be_baselined_then_ratchet(self, tmp_path):
        proj = self._project(tmp_path, {"repro.core.reg": self.RACY})
        assert run_cli(["src", "--update-baseline"], cwd=proj).returncode == 0
        assert run_cli(["src"], cwd=proj).returncode == 0
        reg = proj / "src" / "repro" / "core" / "reg.py"
        reg.write_text(self.RACY + "\n_MORE = {}\n\n\ndef grow(k):\n    _MORE[k] = k\n")
        res = run_cli(["src"], cwd=proj)
        assert res.returncode == 1
        assert res.stdout.count("RACE201") == 1  # only the new finding

    def test_select_restricts_to_one_flow_family(self, tmp_path):
        proj = self._project(tmp_path, {
            "repro.core.reg": self.RACY,
            "repro.core.t": "def key_of(obj):\n    return id(obj)\n",
        })
        res = run_cli(["src", "--select", "DET101"], cwd=proj)
        assert res.returncode == 1
        assert "DET101" in res.stdout
        assert "RACE201" not in res.stdout

    def test_operational_error_is_exit_two(self, tmp_path):
        proj = self._project(tmp_path, {"repro.core.reg": "x = 1\n"})
        assert run_cli(["no/such/dir"], cwd=proj).returncode == 2

    def test_list_rules_includes_flow_families(self, tmp_path):
        proj = self._project(tmp_path, {"repro.core.reg": "x = 1\n"})
        listing = run_cli(["--list-rules"], cwd=proj)
        assert listing.returncode == 0
        for code in ("COST101", "COST102", "COST103",
                     "RACE201", "RACE202", "RACE203", "DET101"):
            assert code in listing.stdout
        assert "project-wide (flow)" in listing.stdout
        explain = run_cli(["--explain", "COST101"], cwd=proj)
        assert explain.returncode == 0
        assert "charged" in explain.stdout


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
