"""Fixture snippets for the DET rule family: positives and negatives."""

import textwrap


def s(code: str) -> str:
    return textwrap.dedent(code)


class TestDET001UnseededRandom:
    def test_module_level_random_call(self, check):
        out = check(s("""\
            import random
            x = random.random()
            """))
        assert out == ["DET001:2"]

    def test_module_level_randrange_and_shuffle(self, codes):
        assert codes(s("""\
            import random
            random.shuffle([1, 2])
            y = random.randrange(7)
            """)) == {"DET001"}

    def test_seeded_random_instance_is_clean(self, check):
        assert check(s("""\
            import random
            rng = random.Random(42)
            x = rng.random()
            """)) == []

    def test_unseeded_random_constructor(self, check):
        out = check(s("""\
            import random
            rng = random.Random()
            """))
        assert out == ["DET001:2"]

    def test_from_import_is_resolved(self, check):
        out = check(s("""\
            from random import randrange
            x = randrange(10)
            """))
        assert out == ["DET001:2"]

    def test_numpy_global_rng(self, check):
        out = check(s("""\
            import numpy as np
            x = np.random.rand(3)
            """))
        assert out == ["DET001:2"]

    def test_numpy_default_rng_needs_seed(self, check):
        assert check(s("""\
            import numpy as np
            rng = np.random.default_rng()
            """)) == ["DET001:2"]
        assert check(s("""\
            import numpy as np
            rng = np.random.default_rng(7)
            """)) == []

    def test_applies_outside_strict_modules_too(self, check):
        out = check(
            "import random\nx = random.random()\n",
            rel_path="tests/test_whatever.py",
        )
        assert out == ["DET001:2"]


class TestDET002BuiltinHash:
    def test_hash_call_flagged(self, check):
        assert check('h = hash("key")\n') == ["DET002:1"]

    def test_method_hash_not_flagged(self, check):
        assert check(s("""\
            class T:
                def go(self, key):
                    return self.hash(key)
            """)) == []

    def test_shadowed_hash_not_flagged(self, check):
        assert check(s("""\
            def hash(x):
                return x
            h = hash(3)
            """)) == []


class TestDET003SetIteration:
    def test_for_over_set_call(self, check):
        assert check(s("""\
            def f(xs):
                for x in set(xs):
                    print(x)
            """)) == ["DET003:2"]

    def test_comprehension_over_set_literal(self, check):
        assert check("ys = [x for x in {1, 2, 3}]\n") == ["DET003:1"]

    def test_list_of_set(self, check):
        assert check("ys = list(set([3, 1]))\n") == ["DET003:1"]

    def test_sorted_wrapper_is_clean(self, check):
        assert check(s("""\
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
            """)) == []

    def test_dict_fromkeys_is_clean(self, check):
        assert check(s("""\
            def f(xs):
                for x in dict.fromkeys(xs):
                    print(x)
            """)) == []

    def test_relaxed_modules_exempt(self, check):
        src = "for x in set([1]):\n    pass\n"
        assert check(src, rel_path="benchmarks/bench_x.py") == []


class TestDET004WallClock:
    def test_time_calls_flagged(self, codes):
        assert codes(s("""\
            import time
            t0 = time.perf_counter()
            t1 = time.time()
            """)) == {"DET004"}

    def test_datetime_now_flagged(self, check):
        assert check(s("""\
            import datetime
            t = datetime.datetime.now()
            """)) == ["DET004:2"]

    def test_from_import_resolved(self, check):
        assert check(s("""\
            from time import perf_counter
            t = perf_counter()
            """)) == ["DET004:2"]

    def test_benchmarks_may_time(self, check):
        src = "import time\nt = time.perf_counter()\n"
        assert check(src, rel_path="benchmarks/bench_x.py") == []


class TestDET005OsEntropy:
    def test_urandom_uuid4_secrets(self, codes):
        assert codes(s("""\
            import os, uuid, secrets
            a = os.urandom(8)
            b = uuid.uuid4()
            c = secrets.token_bytes(8)
            """)) == {"DET005"}

    def test_system_random_flagged(self, check):
        assert check(s("""\
            import random
            r = random.SystemRandom()
            """)) == ["DET005:2"]

    def test_applies_in_tests_too(self, check):
        out = check("import os\nx = os.urandom(4)\n", rel_path="tests/t.py")
        assert out == ["DET005:2"]
