"""Golden fixtures for the COST1xx flow rules.

Each rule gets the four canonical cases: a true positive, an *aliased*
positive (the flow-sensitive reason these rules exist), a compliant
negative, and a pragma-suppressed site.
"""

import pytest

#: minimal charged-interface scaffolding shared by the fixtures
SPANS = (
    "class span:\n"
    "    def __init__(self, machine, name, **labels):\n"
    "        self.machine = machine\n"
    "    def __enter__(self):\n"
    "        return self\n"
    "    def __exit__(self, *exc):\n"
    "        return False\n"
)

INTERFACE = (
    "class Dictionary:\n"
    "    def lookup(self, key):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def insert(self, key, value):\n"
    "        raise NotImplementedError\n"
    "\n"
    "    def delete(self, key):\n"
    "        raise NotImplementedError\n"
)

SCAFFOLD = {
    "repro.pdm.spans": SPANS,
    "repro.core.interface": INTERFACE,
}


def with_scaffold(modules):
    out = dict(SCAFFOLD)
    out.update(modules)
    return out


class TestCost101UnchargedEscape:
    def test_direct_write_through_storage_attrs(self, flow_check):
        hits = flow_check({
            "repro.core.esc": (
                "def poke(machine):\n"
                "    machine.disks[0]._blocks[3] = b'x'\n"
            ),
        }, select=["COST101"])
        assert hits == ["COST101:src/repro/core/esc.py:2"]

    def test_aliased_write_is_still_caught(self, flow_check):
        hits = flow_check({
            "repro.core.esc": (
                "def poke(machine):\n"
                "    blocks = machine.disks[0]._blocks\n"
                "    view = blocks\n"
                "    view[3] = b'x'\n"
            ),
        }, select=["COST101"])
        assert hits == ["COST101:src/repro/core/esc.py:4"]

    def test_mutator_call_on_audit_handle(self, flow_check):
        hits = flow_check({
            "repro.core.esc": (
                "def poke(machine):\n"
                "    machine.block_at(0, 3).store(b'x')\n"
            ),
        }, select=["COST101"])
        assert hits == ["COST101:src/repro/core/esc.py:2"]

    def test_charged_interface_and_reads_are_clean(self, flow_check):
        hits = flow_check({
            "repro.core.esc": (
                "def write(machine, addr, block):\n"
                "    machine.write_blocks([(addr, block)])\n"
                "    machine.flush_writes()\n"
                "\n"
                "def audit(machine):\n"
                "    n = len(machine.disks)\n"
                "    blk = machine.block_at(0, 3)\n"
                "    return n, blk.payload\n"
            ),
        }, select=["COST101"])
        assert hits == []

    def test_pdm_is_the_implementation_not_an_escape(self, flow_check):
        hits = flow_check({
            "repro.pdm.machine": (
                "def commit(self, addr, block):\n"
                "    self.disks[0]._blocks[addr] = block\n"
            ),
        }, select=["COST101"])
        assert hits == []

    def test_pragma_suppresses_with_justification(self, flow_check):
        hits = flow_check({
            "repro.core.esc": (
                "def poke(machine):\n"
                "    machine.disks[0]._blocks[3] = b'x'"
                "  # detlint: ignore[COST101] -- test fixture\n"
            ),
        }, select=["COST101"])
        assert hits == []


class TestCost102MissingSpan:
    UNINSTRUMENTED = (
        "from repro.core.interface import Dictionary\n"
        "\n"
        "class Bare(Dictionary):\n"
        "    def lookup(self, key):\n"
        "        return None\n"
        "\n"
        "    def insert(self, key, value):\n"
        "        return True\n"
        "\n"
        "    def delete(self, key):\n"
        "        return False\n"
    )

    def test_every_uninstrumented_public_op_is_flagged(self, flow_check):
        hits = flow_check(
            with_scaffold({"repro.core.bare": self.UNINSTRUMENTED}),
            select=["COST102"],
        )
        assert hits == [
            "COST102:src/repro/core/bare.py:4",
            "COST102:src/repro/core/bare.py:7",
            "COST102:src/repro/core/bare.py:10",
        ]

    def test_span_in_the_op_itself_satisfies(self, flow_check):
        hits = flow_check(with_scaffold({
            "repro.core.good": (
                "from repro.core.interface import Dictionary\n"
                "from repro.pdm.spans import span\n"
                "\n"
                "class Good(Dictionary):\n"
                "    def lookup(self, key):\n"
                "        with span(self.machine, 'Good.lookup', op='lookup'):\n"
                "            return None\n"
                "\n"
                "    def insert(self, key, value):\n"
                "        with span(self.machine, 'Good.insert', op='insert'):\n"
                "            return True\n"
                "\n"
                "    def delete(self, key):\n"
                "        with span(self.machine, 'Good.delete', op='delete'):\n"
                "            return False\n"
            ),
        }), select=["COST102"])
        assert hits == []

    def test_span_in_a_transitively_called_helper_satisfies(self, flow_check):
        hits = flow_check(with_scaffold({
            "repro.core.helper": (
                "from repro.pdm.spans import span\n"
                "\n"
                "def run_op(machine, name):\n"
                "    with span(machine, name):\n"
                "        return None\n"
            ),
            "repro.core.indirect": (
                "from repro.core.interface import Dictionary\n"
                "from repro.core.helper import run_op\n"
                "\n"
                "class Indirect(Dictionary):\n"
                "    def lookup(self, key):\n"
                "        return self._op(key)\n"
                "\n"
                "    def insert(self, key, value):\n"
                "        return self._op(key)\n"
                "\n"
                "    def delete(self, key):\n"
                "        return self._op(key)\n"
                "\n"
                "    def _op(self, key):\n"
                "        return run_op(self.machine, 'op')\n"
            ),
        }), select=["COST102"])
        assert hits == []

    def test_delegation_through_the_interface_satisfies(self, flow_check):
        # A facade whose ops call ``self._inner.lookup`` where ``_inner``
        # is annotated as the abstract Dictionary: the concrete target is
        # checked in its own class, not re-checked through the facade.
        hits = flow_check(with_scaffold({
            "repro.core.facade": (
                "from repro.core.interface import Dictionary\n"
                "\n"
                "class Facade(Dictionary):\n"
                "    def __init__(self, inner):\n"
                "        self._inner: Dictionary = inner\n"
                "\n"
                "    def lookup(self, key):\n"
                "        return self._inner.lookup(key)\n"
                "\n"
                "    def insert(self, key, value):\n"
                "        return self._inner.insert(key, value)\n"
                "\n"
                "    def delete(self, key):\n"
                "        return self._inner.delete(key)\n"
            ),
        }), select=["COST102"])
        assert hits == []

    def test_abstract_and_out_of_scope_classes_are_not_checked(self, flow_check):
        hits = flow_check(with_scaffold({
            # partial subclass (insert/delete abstract): not concrete
            "repro.core.partial": (
                "from repro.core.interface import Dictionary\n"
                "\n"
                "class Partial(Dictionary):\n"
                "    def lookup(self, key):\n"
                "        return None\n"
            ),
            # concrete but outside span-scope (repro.hashing)
            "repro.hashing.table": (
                "from repro.core.interface import Dictionary\n"
                "\n"
                "class Table(Dictionary):\n"
                "    def lookup(self, key):\n"
                "        return None\n"
                "\n"
                "    def insert(self, key, value):\n"
                "        return True\n"
                "\n"
                "    def delete(self, key):\n"
                "        return False\n"
            ),
        }), select=["COST102"])
        assert hits == []


class TestCost103UnprotectedStagedWrite:
    def _dict_with_batch(self, batch_body):
        return with_scaffold({
            "repro.core.batched": (
                "from repro.core.interface import Dictionary\n"
                "\n"
                "class Batched(Dictionary):\n"
                "    def lookup(self, key):\n"
                "        return None\n"
                "\n"
                "    def insert(self, key, value):\n"
                "        return True\n"
                "\n"
                "    def delete(self, key):\n"
                "        return False\n"
                "\n"
                "    def batch_insert(self, items):\n"
                + batch_body
            ),
        })

    def test_unprotected_commit_is_flagged(self, flow_check):
        hits = flow_check(self._dict_with_batch(
            "        staged = list(items)\n"
            "        self.level.write_buckets(staged)\n"
        ), select=["COST103"])
        assert hits == ["COST103:src/repro/core/batched.py:15"]

    def test_commit_inside_diskfailure_handler_is_clean(self, flow_check):
        hits = flow_check(self._dict_with_batch(
            "        staged = list(items)\n"
            "        try:\n"
            "            self.level.write_buckets(staged)\n"
            "        except DiskFailure:\n"
            "            return None\n"
        ), select=["COST103"])
        assert hits == []

    def test_handler_for_unrelated_exception_does_not_count(self, flow_check):
        hits = flow_check(self._dict_with_batch(
            "        staged = list(items)\n"
            "        try:\n"
            "            self.level.write_buckets(staged)\n"
            "        except KeyError:\n"
            "            return None\n"
        ), select=["COST103"])
        assert hits == ["COST103:src/repro/core/batched.py:16"]

    def test_non_batch_methods_are_not_checked(self, flow_check):
        hits = flow_check(with_scaffold({
            "repro.core.single": (
                "from repro.core.interface import Dictionary\n"
                "\n"
                "class Single(Dictionary):\n"
                "    def lookup(self, key):\n"
                "        return None\n"
                "\n"
                "    def insert(self, key, value):\n"
                "        self.level.write_buckets([(key, value)])\n"
                "        return True\n"
                "\n"
                "    def delete(self, key):\n"
                "        return False\n"
            ),
        }), select=["COST103"])
        assert hits == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
