"""Shared fixtures for the detlint tests."""

from pathlib import Path

import pytest

from repro.lint.config import Config
from repro.lint.engine import lint_source


@pytest.fixture
def strict_config(tmp_path) -> Config:
    """A config where everything under ``src/repro`` is deterministic,
    mirroring the shipped layout."""
    return Config(root=tmp_path)


@pytest.fixture
def check(strict_config):
    """check(source, rel_path=...) -> list of 'CODE:line' strings."""

    def _check(source, rel_path="src/repro/core/mod.py", select=None):
        cfg = strict_config
        if select is not None:
            cfg.select = set(select)
        findings, _ = lint_source(source, rel_path=rel_path, config=cfg)
        return [f"{f.code}:{f.line}" for f in findings]

    return _check


@pytest.fixture
def codes(check):
    """Like ``check`` but just the set of codes."""

    def _codes(source, **kw):
        return {entry.split(":")[0] for entry in check(source, **kw)}

    return _codes


PROJECT_ROOT = Path(__file__).resolve().parents[2]
