"""Shared fixtures for the detlint tests."""

from pathlib import Path

import pytest

from repro.lint.config import Config
from repro.lint.engine import lint_source


@pytest.fixture
def strict_config(tmp_path) -> Config:
    """A config where everything under ``src/repro`` is deterministic,
    mirroring the shipped layout."""
    return Config(root=tmp_path)


@pytest.fixture
def check(strict_config):
    """check(source, rel_path=...) -> list of 'CODE:line' strings."""

    def _check(source, rel_path="src/repro/core/mod.py", select=None):
        cfg = strict_config
        if select is not None:
            cfg.select = set(select)
        findings, _ = lint_source(source, rel_path=rel_path, config=cfg)
        return [f"{f.code}:{f.line}" for f in findings]

    return _check


@pytest.fixture
def codes(check):
    """Like ``check`` but just the set of codes."""

    def _codes(source, **kw):
        return {entry.split(":")[0] for entry in check(source, **kw)}

    return _codes


@pytest.fixture
def flow_check(strict_config):
    """flow_check({module: source}, select=...) -> list of 'CODE:path:line'.

    Modules are given as dotted names under ``repro`` ("repro.core.mod")
    and placed at the matching ``src/`` path, so the shipped strict and
    scope defaults apply exactly as they do to the real tree.
    """
    from repro.lint import flow

    def _flow_check(modules, select=None):
        sources = [
            (f"src/{mod.replace('.', '/')}.py", src)
            for mod, src in modules.items()
        ]
        findings, _ = flow.check_sources(strict_config, sources, select=select)
        return [f"{f.code}:{f.path}:{f.line}" for f in findings]

    return _flow_check


@pytest.fixture
def flow_codes(flow_check):
    """Like ``flow_check`` but just the set of codes."""

    def _flow_codes(modules, **kw):
        return {entry.split(":")[0] for entry in _check(modules, **kw)}

    _check = flow_check
    return _flow_codes


PROJECT_ROOT = Path(__file__).resolve().parents[2]
