"""Golden fixtures for DET101, the flow-sensitive taint rule.

DET101 exists for the leaks the per-file DET rules cannot see: source
calls hidden behind aliases, taint laundered through helper functions,
``id()``, and iteration over set-typed locals.  The sanctioned sink is a
``repro.bits.mix`` derivation.
"""

import pytest


class TestDet101Aliases:
    def test_module_level_alias_of_a_clock(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "import time\n"
                "\n"
                "now = time.monotonic\n"
                "\n"
                "def stamp():\n"
                "    return now()\n"
            ),
        }, select=["DET101"])
        assert hits == ["DET101:src/repro/core/t.py:6"]

    def test_function_local_alias(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    clock = time.monotonic\n"
                "    return clock()\n"
            ),
        }, select=["DET101"])
        assert hits == ["DET101:src/repro/core/t.py:5"]

    def test_direct_source_call_is_per_file_territory(self, flow_check):
        # the per-file DET004 covers the un-aliased call; DET101 must not
        # duplicate it
        hits = flow_check({
            "repro.core.t": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.monotonic()\n"
            ),
        }, select=["DET101"])
        assert hits == []


class TestDet101HelperLaundering:
    def test_taint_crosses_the_call_graph(self, flow_check):
        hits = flow_check({
            "repro.pdm.clock": (
                "import time\n"
                "\n"
                "def wall_seed():\n"
                "    return time.time_ns()\n"
            ),
            "repro.core.t": (
                "from repro.pdm.clock import wall_seed\n"
                "\n"
                "def layout():\n"
                "    seed = wall_seed()\n"
                "    return seed % 64\n"
            ),
        }, select=["DET101"])
        assert "DET101:src/repro/core/t.py:4" in hits

    def test_taint_crosses_two_helper_hops(self, flow_check):
        hits = flow_check({
            "repro.pdm.clock": (
                "import time\n"
                "\n"
                "def wall_seed():\n"
                "    return time.time_ns()\n"
                "\n"
                "def wrapped_seed():\n"
                "    return wall_seed()\n"
            ),
            "repro.core.t": (
                "from repro.pdm.clock import wrapped_seed\n"
                "\n"
                "def layout():\n"
                "    return wrapped_seed() % 64\n"
            ),
        }, select=["DET101"])
        assert any(h.startswith("DET101:src/repro/core/t.py") for h in hits)

    def test_sanitized_flow_through_mix_is_clean(self, flow_check):
        hits = flow_check({
            "repro.pdm.clock": (
                "import time\n"
                "\n"
                "def wall_seed():\n"
                "    return time.time_ns()\n"
            ),
            "repro.core.t": (
                "from repro.bits.mix import splitmix64\n"
                "from repro.pdm.clock import wall_seed\n"
                "\n"
                "def layout():\n"
                "    seed = splitmix64(wall_seed())\n"
                "    return seed % 64\n"
            ),
        }, select=["DET101"])
        assert hits == []

    def test_helper_returning_clean_value_is_clean(self, flow_check):
        hits = flow_check({
            "repro.pdm.clock": (
                "def fixed_seed():\n"
                "    return 42\n"
            ),
            "repro.core.t": (
                "from repro.pdm.clock import fixed_seed\n"
                "\n"
                "def layout():\n"
                "    return fixed_seed() % 64\n"
            ),
        }, select=["DET101"])
        assert hits == []


class TestDet101IdAndSets:
    def test_id_is_a_source(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "def key_of(obj):\n"
                "    return id(obj)\n"
            ),
        }, select=["DET101"])
        assert hits == ["DET101:src/repro/core/t.py:2"]

    def test_iterating_a_set_local_leaks_hash_order(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "def emit(xs):\n"
                "    pending = set(xs)\n"
                "    out = []\n"
                "    for x in pending:\n"
                "        out.append(x)\n"
                "    return out\n"
            ),
        }, select=["DET101"])
        assert hits == ["DET101:src/repro/core/t.py:4"]

    def test_sorted_iteration_is_clean(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "def emit(xs):\n"
                "    pending = set(xs)\n"
                "    return [x for x in sorted(pending)]\n"
            ),
        }, select=["DET101"])
        assert hits == []

    def test_order_free_reducers_are_clean(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "def probe(xs, target):\n"
                "    pending = set(xs)\n"
                "    return any(x == target for x in pending)\n"
            ),
        }, select=["DET101"])
        assert hits == []

    def test_seeded_random_is_not_a_source(self, flow_check):
        # random.Random(seed) is deterministic; unseeded construction is
        # DET001's finding, not a taint source
        hits = flow_check({
            "repro.core.t": (
                "import random\n"
                "\n"
                "def keys(seed, n):\n"
                "    rng = random.Random(seed)\n"
                "    return [rng.randrange(2**30) for _ in range(n)]\n"
            ),
        }, select=["DET101"])
        assert hits == []


class TestDet101Suppression:
    def test_ignore_pragma_on_the_flow_site(self, flow_check):
        hits = flow_check({
            "repro.core.t": (
                "import time\n"
                "\n"
                "now = time.monotonic\n"
                "\n"
                "def stamp():\n"
                "    return now()  # detlint: ignore[DET101] -- fixture\n"
            ),
        }, select=["DET101"])
        assert hits == []

    def test_non_strict_modules_are_not_checked(self, flow_check, strict_config):
        from repro.lint import flow

        findings, _ = flow.check_sources(strict_config, [(
            "src/tools/t.py",
            "import time\nnow = time.monotonic\n\ndef stamp():\n    return now()\n",
        )], select=["DET101"])
        assert findings == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
