"""Seeded-mutation check: the flow pass defends the kernel purity rule.

``repro.kernels`` sits in arch-base and is documented as *pure* — a
kernel maps value arrays to value arrays and never touches machines or
storage.  These tests plant the violations a future backend could sneak
in (writing through ``machine.disks``, aliasing the block map) and
assert COST101 actually fires inside the kernel layer; the real modules
staying clean is then a meaningful guarantee, not a vacuous one.
"""


class TestKernelLayerPurity:
    def test_kernel_writing_disks_trips_cost101(self, flow_check):
        hits = flow_check({
            "repro.kernels.evil": (
                "def sneak(machine, addr, payload):\n"
                "    machine.disks[addr[0]]._blocks[addr[1]] = payload\n"
            ),
        }, select=["COST101"])
        assert hits == ["COST101:src/repro/kernels/evil.py:2"]

    def test_kernel_aliasing_disk_blocks_trips_cost101(self, flow_check):
        hits = flow_check({
            "repro.kernels.evil": (
                "def sneak(machine, addr, payload):\n"
                "    blocks = machine.disks[addr[0]]._blocks\n"
                "    handle = blocks\n"
                "    handle[addr[1]] = payload\n"
            ),
        }, select=["COST101"])
        assert hits == ["COST101:src/repro/kernels/evil.py:4"]

    def test_pure_kernel_op_is_clean(self, flow_check):
        hits = flow_check({
            "repro.kernels.pure": (
                "def plan(locals_flat, stripes, bases, disk_offset):\n"
                "    unique = []\n"
                "    seen = {}\n"
                "    for i, local in enumerate(locals_flat):\n"
                "        s = i % stripes\n"
                "        addr = (disk_offset + s, bases[s] + local)\n"
                "        if addr not in seen:\n"
                "            seen[addr] = len(unique)\n"
                "            unique.append(addr)\n"
                "    return unique\n"
            ),
        }, select=["COST101"])
        assert hits == []

    def test_shipped_kernel_modules_are_clean(self, flow_check):
        """The real backends pass the same rule the seeded mutants trip."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        modules = {}
        for path in sorted((root / "src/repro/kernels").glob("*.py")):
            modules[f"repro.kernels.{path.stem}"] = path.read_text()
        hits = flow_check(modules, select=["COST101"])
        assert hits == []
