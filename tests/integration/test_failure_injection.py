"""Failure injection and edge cases across the library."""

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.interface import CapacityExceeded
from repro.core.static_dict import StaticDictionary
from repro.expanders.random_graph import SeededRandomExpander
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 14


class TestTinyUniverses:
    def test_universe_of_two(self):
        machine = ParallelDiskMachine(8, 16)
        d = BasicDictionary(
            machine, universe_size=2, capacity=2, degree=8, seed=1
        )
        d.insert(0, "zero")
        d.insert(1, "one")
        assert d.lookup(0).value == "zero"
        assert d.lookup(1).value == "one"

    def test_dense_universe(self):
        """Store the entire universe."""
        machine = ParallelDiskMachine(8, 16)
        d = BasicDictionary(
            machine, universe_size=64, capacity=64, degree=8, seed=1
        )
        for k in range(64):
            d.insert(k, k)
        assert all(d.lookup(k).value == k for k in range(64))


class TestDegenerateParameters:
    def test_zero_capacity_rejected(self):
        machine = ParallelDiskMachine(8, 16)
        with pytest.raises(ValueError):
            BasicDictionary(
                machine, universe_size=U, capacity=0, degree=8
            )

    def test_degree_exceeding_disks_rejected(self):
        machine = ParallelDiskMachine(4, 16)
        with pytest.raises(ValueError):
            DynamicDictionary(
                machine, universe_size=U, capacity=10, sigma=8, degree=8
            )

    def test_static_degree_too_small(self):
        machine = ParallelDiskMachine(4, 16)
        with pytest.raises(ValueError):
            StaticDictionary.build(
                machine, {1: 1}, universe_size=U, sigma=4, case="b",
                degree=2,
            )


class TestBucketOverflowInjection:
    def test_overfull_bucket_is_loud_not_silent(self):
        """Force a bucket array far too small for the key count: the
        structure must raise CapacityExceeded, never corrupt."""
        machine = ParallelDiskMachine(8, 4)  # tiny blocks
        d = BasicDictionary(
            machine,
            universe_size=U,
            capacity=10_000,
            degree=8,
            stripe_size=1,  # 8 buckets x 4 items = 32 slots total
            seed=1,
        )
        with pytest.raises(CapacityExceeded):
            for k in range(200):
                d.insert(k, None)
        # Everything inserted before the failure is still intact.
        for k in range(20):
            result = d.lookup(k)
            assert result.found == (k < 20 and result.found)  # no corruption

    def test_dynamic_level_exhaustion(self):
        machine = ParallelDiskMachine(16, 8)
        d = DynamicDictionary(
            machine,
            universe_size=U,
            capacity=10_000,  # lie about capacity
            sigma=8,
            degree=8,
            stripe_slack=0.02,  # tiny level arrays
            min_stripe=2,
            seed=1,
        )
        with pytest.raises(CapacityExceeded):
            for k in range(5000):
                d.insert(k, k % 256)


class TestSigmaEdges:
    def test_sigma_one(self):
        machine = ParallelDiskMachine(32, 32)
        d = DynamicDictionary(
            machine, universe_size=U, capacity=50, sigma=1, degree=16,
            seed=2,
        )
        d.insert(3, 1)
        d.insert(4, 0)
        assert d.lookup(3).value == 1
        assert d.lookup(4).value == 0

    def test_huge_sigma(self):
        """Records far wider than a key — the full-bandwidth regime."""
        machine = ParallelDiskMachine(32, 64)
        sigma = 1500
        d = DynamicDictionary(
            machine, universe_size=U, capacity=40, sigma=sigma, degree=16,
            seed=2,
        )
        value = (1 << sigma) - 12345
        d.insert(7, value)
        assert d.lookup(7).value == value

    def test_static_sigma_wider_than_block(self):
        machine = ParallelDiskMachine(32, 8)  # 512-bit blocks
        sigma = 700  # record wider than any single block
        items = {k: (k * 7919) % (1 << sigma) for k in range(40)}
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=sigma, case="a",
            degree=16, seed=3,
        )
        assert all(d.lookup(k).value == v for k, v in items.items())
        assert all(d.lookup(k).cost.total_ios == 1 for k in items)


class TestSharedMachine:
    def test_many_structures_one_machine(self):
        """Several dictionaries coexisting on one disk array must not
        interfere (the allocator keeps address ranges disjoint)."""
        machine = ParallelDiskMachine(16, 32)
        a = BasicDictionary(
            machine, universe_size=U, capacity=100, degree=16, seed=1
        )
        b = BasicDictionary(
            machine, universe_size=U, capacity=100, degree=16, seed=2
        )
        for k in range(100):
            a.insert(k, f"a{k}")
            b.insert(k, f"b{k}")
        assert all(a.lookup(k).value == f"a{k}" for k in range(100))
        assert all(b.lookup(k).value == f"b{k}" for k in range(100))


class TestExpanderDegeneracy:
    def test_stripe_size_one(self):
        """All keys share the single bucket per stripe; the d-choice scheme
        must still respect capacity accounting."""
        g = SeededRandomExpander(
            left_size=U, degree=8, stripe_size=1, seed=0
        )
        assert all(
            g.striped_neighbors(x) == tuple((i, 0) for i in range(8))
            for x in range(10)
        )
