"""Worst-case smoothing of global rebuilding (Overmars–van Leeuwen).

The paper's point in choosing the technique: "worst-case efficient global
rebuilding" — no operation, even during a rebuild, pays more than a
constant factor over the base structure."""

import random

from repro.core.basic_dict import BasicDictionary
from repro.core.rebuilding import RebuildingDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16


def factory(capacity, generation):
    machine = ParallelDiskMachine(16, 32)
    return BasicDictionary(
        machine, universe_size=U, capacity=capacity, degree=16,
        seed=300 + generation,
    )


class TestWorstCaseSmoothing:
    def test_no_operation_pays_more_than_a_constant(self):
        d = RebuildingDictionary(
            factory, initial_capacity=16, move_per_op=4
        )
        worst_insert = 0
        worst_lookup = 0
        rng = random.Random(0)
        for i in range(600):
            cost = d.insert(rng.randrange(U), i)
            worst_insert = max(worst_insert, cost.total_ios)
            result = d.lookup(rng.randrange(U))
            worst_lookup = max(worst_lookup, result.cost.total_ios)
        # Base structure: lookup 1, insert 2.  During a rebuild an insert
        # additionally performs: one probe of the old structure, one
        # migration batch of move_per_op items (each lookup 1 + parallel
        # insert/delete 2) -- a fixed constant, never Theta(n).
        move = 4
        assert d.stats.rebuilds_started >= 3  # we really crossed rebuilds
        assert worst_lookup <= 2  # parallel probe of both structures
        assert worst_insert <= 2 + 1 + 2 + move * 3

    def test_rebuild_total_cost_is_linear(self):
        """Amortized sanity: total I/O across n inserts with rebuilds is
        O(n) (each item migrates O(1) times thanks to doubling)."""
        d = RebuildingDictionary(
            factory, initial_capacity=16, move_per_op=4
        )
        total = 0
        for i in range(600):
            total += d.insert(i, None).total_ios
        assert total <= 30 * 600
