"""Threading stress smoke: concurrent readers on one machine.

The RACE2xx flow rules inventory every shared mutable object ahead of the
planned executor split (see docs/static_analysis.md); this smoke is the
dynamic counterpart for the one concurrency shape that is *already*
legal: read-only operations from multiple threads against a sealed
dictionary — the Section 1.1 lock-free-reads claim that
:mod:`repro.analysis.concurrency` quantifies statically (lookups have
empty write footprints, verified below).  Lookups mutate nothing but the
machine's I/O counters (a benign lost-update under the GIL), so every
thread must see exactly the sequentially-inserted values — any wrong or
missing answer is a real shared-state bug, not a tolerated race.

Deliberately excluded, per the guarded() inventory:

* no buffer-pool cache is attached (``repro.pdm.cache`` is
  ``guarded(pool-lock)`` — the lock does not exist yet);
* no span recorder is attached (``repro.pdm.spans`` is
  ``guarded(machine-op)`` — the span stack assumes one operation at a
  time).
"""

import threading

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.recursive_dict import RecursiveLoadBalancedDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18
THREADS = 8
ROUNDS = 3


def _populate(d, n, seed):
    import random

    rng = random.Random(seed)
    live = {}
    while len(live) < n:
        k = rng.randrange(U)
        if k in live:
            continue
        v = rng.randrange(1 << 16)
        d.insert(k, v)
        live[k] = v
    return live


def _hammer(d, live, absent):
    """All threads look up every key at once; collect per-thread errors
    rather than asserting in the thread (a failed assert in a worker
    would otherwise just vanish)."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def reader(tid):
        try:
            barrier.wait(timeout=30)
            for _ in range(ROUNDS):
                for k, v in live.items():
                    res = d.lookup(k)
                    if res.value != v:
                        errors.append((tid, k, v, res.value))
                for k in absent:
                    res = d.lookup(k)
                    if res.value is not None:
                        errors.append((tid, k, None, res.value))
        except Exception as exc:  # noqa: BLE001 - reported via errors
            errors.append((tid, "exception", repr(exc), None))

    threads = [
        threading.Thread(target=reader, args=(t,), name=f"reader-{t}")
        for t in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(not t.is_alive() for t in threads), "reader thread hung"
    return errors


class TestConcurrentReaders:
    def test_basic_dictionary_concurrent_lookups(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=128, degree=16, seed=7
        )
        live = _populate(d, 96, seed=7)
        absent = [k for k in range(100, 100 + 32) if k not in live]
        errors = _hammer(d, live, absent)
        assert errors == [], errors[:10]

    def test_recursive_dictionary_concurrent_lookups(self):
        machine = ParallelDiskMachine(48, 32)
        d = RecursiveLoadBalancedDictionary(
            machine, universe_size=U, capacity=128, sigma=48, degree=16,
            levels=2, seed=11,
        )
        live = _populate(d, 96, seed=11)
        absent = [k for k in range(100, 100 + 32) if k not in live]
        errors = _hammer(d, live, absent)
        assert errors == [], errors[:10]

    def test_lookups_are_lock_free_reads(self):
        """The static claim the stampede relies on: a lookup's write
        footprint is empty (repro.analysis.concurrency), so concurrent
        readers can never invalidate each other's blocks."""
        from repro.analysis.concurrency import footprint_of

        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=128, degree=16, seed=5
        )
        live = _populate(d, 32, seed=5)
        for k in sorted(live)[:8]:
            reads, writes = footprint_of(machine, lambda k=k: d.lookup(k))
            assert writes == set(), (k, writes)
            assert reads  # it did touch storage, through charged paths

    def test_io_accounting_survives_concurrency(self):
        """Counters may lose updates under threads, but must remain
        monotone and usable: a sequential measurement taken after the
        stampede still works and charges a plausible cost."""
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=128, degree=16, seed=3
        )
        live = _populate(d, 64, seed=3)
        before = machine.stats.read_ios
        errors = _hammer(d, live, absent=[])
        assert errors == []
        after = machine.stats.read_ios
        assert after >= before  # monotone despite racy increments
        k, v = next(iter(live.items()))
        assert d.lookup(k).value == v  # machine still fully functional


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
