"""Cross-cutting property-based tests on library invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.static_dict import StaticDictionary, fields_needed
from repro.expanders.base import ExpanderParams
from repro.expanders.random_graph import SeededFlatExpander, SeededRandomExpander
from repro.expanders.telescope import TelescopeProduct
from repro.expanders.verify import verify_definition1_sampled
from repro.pdm.iostats import OpCost
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16

costs = st.builds(
    OpCost,
    read_ios=st.integers(0, 50),
    write_ios=st.integers(0, 50),
    blocks_read=st.integers(0, 500),
    blocks_written=st.integers(0, 500),
)


class TestOpCostAlgebra:
    @given(costs, costs, costs)
    def test_sequential_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(costs)
    def test_zero_identity(self, a):
        assert a + OpCost.zero() == a
        assert OpCost.zero() + a == a

    @given(costs, costs)
    def test_parallel_commutative(self, a, b):
        assert OpCost.parallel(a, b) == OpCost.parallel(b, a)

    @given(costs, costs, costs)
    def test_parallel_associative(self, a, b, c):
        assert OpCost.parallel(OpCost.parallel(a, b), c) == OpCost.parallel(
            a, OpCost.parallel(b, c)
        )

    @given(costs)
    def test_parallel_idempotent_on_rounds(self, a):
        par = OpCost.parallel(a, a)
        assert par.read_ios == a.read_ios
        assert par.write_ios == a.write_ios
        assert par.blocks_read == 2 * a.blocks_read


class TestTelescopeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        d1=st.integers(2, 5),
        d2=st.integers(2, 5),
        v1=st.integers(20, 60),
        v2=st.integers(10, 40),
        seed=st.integers(0, 100),
    )
    def test_composition_geometry(self, d1, d2, v1, v2, seed):
        s1 = SeededFlatExpander(
            left_size=200, degree=d1, right_size=v1, seed=seed
        )
        s2 = SeededFlatExpander(
            left_size=v1, degree=d2, right_size=v2, seed=seed + 1
        )
        t = TelescopeProduct([s1, s2])
        assert t.degree == d1 * d2
        for x in (0, 37, 199):
            ys = t.neighbors(x)
            assert len(ys) == d1 * d2
            assert all(0 <= y < v2 for y in ys)
            # Multi-edge remap: all distinct whenever v2 allows it.
            if d1 * d2 <= v2:
                assert len(set(ys)) == d1 * d2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.01, 0.5), min_size=1, max_size=5))
    def test_composed_eps_bounds(self, eps_list):
        composed = TelescopeProduct.composed_eps(eps_list)
        assert max(eps_list) <= composed + 1e-12
        assert composed <= sum(eps_list) + 1e-12


class TestDefinition1:
    def test_sampled_check_on_good_graph(self):
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=1024, seed=3
        )
        params = ExpanderParams(d=16, eps=1 / 4, delta=0.5)
        report = verify_definition1_sampled(
            g, params, trials=300, max_set_size=300, seed=1
        )
        assert report.is_expander

    def test_delta_branch_caps_requirement(self):
        """Huge sets: the (1-delta)v branch is what must hold (it is what
        Lemma 3's pigeonhole needs)."""
        g = SeededRandomExpander(
            left_size=U, degree=8, stripe_size=64, seed=5
        )
        params = ExpanderParams(d=8, eps=1 / 4, delta=0.5)
        # Sets with d*s far above v: only the v-branch can apply.
        report = verify_definition1_sampled(
            g, params, trials=60, max_set_size=2000, seed=2
        )
        assert report.is_expander


class TestStaticDictionaryProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(2, 80),
        sigma=st.integers(1, 64),
        case=st.sampled_from(["a", "b"]),
        seed=st.integers(0, 50),
    )
    def test_random_instances_roundtrip(self, n, sigma, case, seed):
        rng = random.Random(seed)
        items = {}
        while len(items) < n:
            items[rng.randrange(U)] = rng.randrange(1 << sigma)
        degree = 16
        disks = degree * (2 if case == "a" else 1)
        machine = ParallelDiskMachine(disks, 32)
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=sigma, case=case,
            degree=degree, seed=seed,
        )
        for k, v in items.items():
            result = d.lookup(k)
            assert result.found and result.value == v
            assert result.cost.total_ios == 1
        for _ in range(20):
            probe = rng.randrange(U)
            if probe not in items:
                assert not d.lookup(probe).found

    @settings(max_examples=10, deadline=None)
    @given(d=st.integers(4, 64))
    def test_fields_needed_is_two_thirds(self, d):
        m = fields_needed(d)
        assert 2 * d <= 3 * m < 2 * d + 3
