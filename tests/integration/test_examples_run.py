"""Smoke tests: the example scripts run end-to-end and print their claims.

The heavier examples (filesystem_store drives ~90k inserts twice) are
exercised by the benchmarks that cover the same ground; here we run the
fast ones whole and import-check the rest.
"""

import importlib.util
import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "avg hit lookup I/Os" in out
    assert "paper: exactly 1" in out


def test_load_balancing_demo(capsys):
    out = _run("load_balancing_demo.py", capsys)
    assert "Lemma 3 bound" in out
    assert "d-choice max load" in out


def test_adversarial_demo(capsys):
    out = _run("adversarial_demo.py", capsys)
    assert "worst insert : 2 I/Os" in out


def test_expander_construction(capsys):
    out = _run("expander_construction.py", capsys)
    assert "composed degree" in out
    assert "sampled check   : expander=True" in out


@pytest.mark.parametrize(
    "name", ["filesystem_store.py", "webmail_server.py"]
)
def test_heavy_examples_at_least_compile(name):
    spec = importlib.util.spec_from_file_location(
        name.removesuffix(".py"), EXAMPLES / name
    )
    module = importlib.util.module_from_spec(spec)
    # Import executes top-level code only (defs + constants), not main().
    spec.loader.exec_module(module)
    assert callable(module.main)
