"""Exhaustive certification of Lemma 3 on a tiny instance.

Lemma 3 is a worst-case statement over EVERY subset of the universe and
EVERY on-line arrival order.  On a universe small enough to enumerate, we
check it literally: all subsets up to a size bound, several arrival
permutations each, against the bound computed from the graph's exact
(measured) Definition-1 parameters.
"""

import itertools

from repro.core.load_balancer import DChoiceLoadBalancer, lemma3_bound
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.verify import neighbor_set


class TestExhaustiveLemma3:
    def test_all_subsets_and_orders_tiny(self):
        graph = SeededRandomExpander(
            left_size=10, degree=4, stripe_size=3, seed=2
        )
        d, v = graph.degree, graph.right_size
        # Conservative parameters that certainly hold (checked below per
        # set): eps from the worst small set, delta = 1/2.
        checked = 0
        for n in range(1, 6):
            for S in itertools.combinations(range(10), n):
                gamma = len(neighbor_set(graph, S))
                eps_set = max(1.0 / d, 1 - gamma / (d * n))
                if (1 - eps_set) * d <= 1:
                    continue  # Lemma 3 base condition fails for this eps
                bound = lemma3_bound(
                    n=n, v=v, k=1, d=d, eps=eps_set, delta=0.99
                )
                # Every arrival order (up to 24 permutations).
                for order in itertools.islice(
                    itertools.permutations(S), 24
                ):
                    balancer = DChoiceLoadBalancer(graph, k=1)
                    balancer.place_all(order)
                    assert balancer.max_load <= bound, (
                        f"S={S} order={order}: load {balancer.max_load} "
                        f"> bound {bound:.2f}"
                    )
                    checked += 1
        assert checked > 3000  # we really enumerated

    def test_order_invariance_of_the_bound_not_the_load(self):
        """Different orders may give different loads — but never above the
        bound (the scheme is on-line; the guarantee is order-free)."""
        graph = SeededRandomExpander(
            left_size=12, degree=4, stripe_size=4, seed=7
        )
        S = (0, 3, 5, 7, 9, 11)
        loads = set()
        for order in itertools.permutations(S):
            balancer = DChoiceLoadBalancer(graph, k=1)
            balancer.place_all(order)
            loads.add(balancer.max_load)
        # The measured loads may vary with order ...
        assert len(loads) >= 1
        # ... but all sit below the bound at the set's own parameters.
        gamma = len(neighbor_set(graph, S))
        eps_set = max(1.0 / 4, 1 - gamma / (4 * len(S)))
        bound = lemma3_bound(
            n=len(S), v=graph.right_size, k=1, d=4, eps=eps_set, delta=0.99
        )
        assert max(loads) <= bound
