"""Long-run churn: space and correctness under insert/delete equilibrium.

Deletions must genuinely free storage (fields, bucket slots, payload
superblocks); after thousands of churn operations at a steady live size,
occupied storage must stay bounded by the live set — no leak, no drift.
Also exercises the memory accounting of extsort under a hard capacity.
"""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.recursive_dict import RecursiveLoadBalancedDictionary
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.memory import InternalMemoryExceeded

U = 1 << 18


def churn(d, live_target, operations, value_fn, seed=0):
    rng = random.Random(seed)
    live = {}
    for _ in range(operations):
        if len(live) < live_target or rng.random() < 0.5:
            if len(live) < d.capacity:
                k = rng.randrange(U)
                v = value_fn(rng)
                d.insert(k, v)
                live[k] = v
        elif live:
            k = rng.choice(list(live))
            d.delete(k)
            del live[k]
    return live


class TestChurnStability:
    def test_basic_dict_no_slot_leak(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=200, degree=16, seed=1
        )
        live = churn(d, 100, 3000, lambda rng: rng.randrange(100), seed=1)
        assert len(d) == len(live)
        total_items = sum(d.buckets.loads().values())
        assert total_items == len(live)  # every slot accounted for
        assert all(d.lookup(k).value == v for k, v in live.items())

    def test_dynamic_dict_no_field_leak(self):
        machine = ParallelDiskMachine(32, 32)
        d = DynamicDictionary(
            machine, universe_size=U, capacity=200, sigma=24, degree=16,
            seed=2,
        )
        live = churn(
            d, 100, 2000, lambda rng: rng.randrange(1 << 24), seed=2
        )
        assert len(d) == len(live)
        occupied = sum(d.level_occupancy())
        # Every live key owns exactly m_need fields; none are orphaned.
        assert occupied == len(live) * d.m_need
        assert all(d.lookup(k).value == v for k, v in live.items())

    def test_recursive_dict_no_fragment_leak(self):
        machine = ParallelDiskMachine(48, 32)
        d = RecursiveLoadBalancedDictionary(
            machine, universe_size=U, capacity=150, sigma=48, degree=16,
            levels=2, seed=3,
        )
        live = churn(
            d, 80, 1500, lambda rng: rng.randrange(1 << 48), seed=3
        )
        assert len(d) == len(live)
        fragments = sum(
            sum(store.loads().values()) for store in d.levels_store
        )
        brute = sum(
            len(machine.block_at(addr).payload or [])
            for addr in d._brute_addrs
        )
        # Fragment conservation: k fragments per level-resident key.
        level_keys = len(live) - brute
        assert fragments == level_keys * d.k
        assert all(d.lookup(k).value == v for k, v in live.items())


class TestMemoryBoundedSort:
    def test_extsort_respects_hard_memory_capacity(self):
        """A machine with a hard internal-memory limit must reject a sort
        configured beyond it — loudly, via the accountant."""
        from repro.extsort import ExternalRecordArray, external_merge_sort

        machine = ParallelDiskMachine(4, 8, memory_words=64)
        arr = ExternalRecordArray(machine, record_bits=64)
        arr.extend(range(500))
        with pytest.raises(InternalMemoryExceeded):
            external_merge_sort(machine, arr, memory_records=1000)

    def test_extsort_within_capacity_succeeds(self):
        from repro.extsort import ExternalRecordArray, external_merge_sort

        machine = ParallelDiskMachine(4, 8, memory_words=4096)
        arr = ExternalRecordArray(machine, record_bits=64)
        data = list(range(500, 0, -1))
        arr.extend(data)
        out, _ = external_merge_sort(machine, arr, memory_records=256)
        assert out.read_all() == sorted(data)
