"""Differential executor equivalence (the Issue 9 headline invariant).

Round planning and charging live entirely above the executor seam, so
every backend — in-memory simulator, thread-per-disk real files, process
pool — must produce *bit-identical* deterministic outputs for the same
operation sequence: results, ``IOStats``, trace footprints (the recorded
``RoundPlan`` witness of every batch), healthy and under fault plans.
These tests drive the same seeded workload through all three and compare
everything; the threading smoke at the bottom hammers one file-backed
dictionary from eight concurrent readers.
"""

import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facade import ParallelDiskDictionary
from repro.faults import FaultPlan
from repro.pdm import (
    ParallelDiskHeadMachine,
    ParallelDiskMachine,
    attach_faults,
    create_executor,
)
from repro.pdm.errors import IOFault
from repro.pdm.trace import attach

EXECUTORS = ("simulated", "file", "process")

D = 4
B = 8
BLOCKS_PER_DISK = 6


def _make_executor(name, tmp_path, tag):
    if name == "simulated":
        return None
    return create_executor(name, directory=str(tmp_path / f"{name}-{tag}"))


def _fault_plan(seed):
    plan = FaultPlan.generate(
        seed, num_disks=D, horizon=120, corruption_rate=0.05,
        blocks_per_disk=BLOCKS_PER_DISK,
    )
    victim = seed % D
    return plan.merged(
        FaultPlan.kill_disks([victim], num_disks=D, start=20, end=40)
    )


def _drive(machine, seed, *, faults, steps=24):
    """One seeded workload; returns every deterministic observable.

    The footprint records, per step, the op kind, the served payloads and
    the *types* of the failures — exactly what a caller of the machine
    can see.  The trace events append the charged ``RoundPlan`` witness
    of every batch, and the stats snapshot seals the charged totals.
    """
    rng = random.Random(seed)
    tracer = attach(machine)
    if faults:
        attach_faults(machine, _fault_plan(seed).events, retry_budget=4)
    footprint = []
    for step in range(steps):
        roll = rng.random()
        count = rng.randint(1, 2 * D)
        addrs = list(dict.fromkeys(
            (rng.randrange(D), rng.randrange(BLOCKS_PER_DISK))
            for _ in range(count)
        ))
        if roll < 0.4:
            writes = [
                (addr, [seed, step, i], 24) for i, addr in enumerate(addrs)
            ]
            try:
                machine.write_blocks(writes)
                footprint.append(("write", len(writes)))
            except IOFault as exc:
                footprint.append(("write-fault", type(exc).__name__))
        elif roll < 0.8:
            blocks, failures, plan = machine.read_rounds_degraded(addrs)
            footprint.append((
                "read",
                sorted((a, b.payload) for a, b in blocks.items()),
                sorted((a, type(f).__name__) for a, f in failures.items()),
                plan.rounds,
            ))
        else:
            plan = machine.plan_rounds(machine._plan_requests(addrs))
            footprint.append(("plan", plan.rounds, plan.requested))
    events = [(e.kind, e.addrs, e.rounds) for e in tracer.events]
    return footprint, events, machine.stats.snapshot()


@pytest.mark.parametrize("faults", [False, True], ids=["healthy", "faulted"])
@pytest.mark.parametrize(
    "machine_cls", [ParallelDiskMachine, ParallelDiskHeadMachine]
)
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_three_executors_bit_identical(
    tmp_path, machine_cls, seed, faults
):
    observed = {}
    for name in EXECUTORS:
        machine = machine_cls(
            D, B, executor=_make_executor(name, tmp_path, f"{seed}-{faults}")
        )
        try:
            observed[name] = _drive(machine, seed, faults=faults)
        finally:
            machine.close()
    assert observed["file"] == observed["simulated"]
    assert observed["process"] == observed["simulated"]


@given(seed=st.integers(0, 2**32 - 1), faults=st.booleans())
@settings(max_examples=25, deadline=None)
def test_file_executor_property_parity(tmp_path_factory, seed, faults):
    """Hypothesis sweep: any seed, any fault toggle — the file backend's
    deterministic outputs match the simulator's exactly."""
    observed = {}
    for name in ("simulated", "file"):
        tmp = tmp_path_factory.mktemp("parity")
        machine = ParallelDiskMachine(
            D, B, executor=_make_executor(name, tmp, seed)
        )
        try:
            observed[name] = _drive(machine, seed, faults=faults, steps=12)
        finally:
            machine.close()
    assert observed["file"] == observed["simulated"]


@pytest.mark.parametrize("name", ["file", "process"])
def test_facade_level_parity(tmp_path, name):
    """Same dictionary workload through the facade: identical answers and
    identical aggregated I/O accounting, across rebuild generations."""

    def run(executor=None, executor_dir=None):
        d = ParallelDiskDictionary(
            universe_size=1 << 12, capacity=64, unbounded=True, seed=5,
            executor=executor, executor_dir=executor_dir,
        )
        with d:
            for k in range(0, 300, 3):
                d.insert(k, k * 7)
            for k in range(0, 300, 7):
                d.delete(k)
            answers = [
                (k, d.lookup(k).found, d.lookup(k).value)
                for k in range(0, 300, 2)
            ]
            stats = d.io_stats()
        return answers, (
            stats.read_ios, stats.write_ios,
            stats.blocks_read, stats.blocks_written,
        )

    baseline = run()
    assert run(executor=name, executor_dir=str(tmp_path / name)) == baseline


class TestFileExecutorThreadingSmoke:
    """Eight concurrent readers over one file-backed dictionary: per-disk
    logs are served by stateless ``pread`` calls, so parallel lookups must
    neither crash nor return wrong answers."""

    THREADS = 8
    ROUNDS = 3

    def test_concurrent_readers(self, tmp_path):
        d = ParallelDiskDictionary(
            universe_size=1 << 14, capacity=256, seed=11,
            executor="file", executor_dir=str(tmp_path / "smoke"),
        )
        with d:
            rng = random.Random(11)
            live = sorted(rng.sample(range(1 << 14), 200))
            absent = [k for k in range(1 << 14) if k not in set(live)][:200]
            for k in live:
                d.insert(k, k ^ 0x5A5A)

            errors = []
            barrier = threading.Barrier(self.THREADS)

            def reader(worker):
                try:
                    barrier.wait(timeout=60)
                    for _ in range(self.ROUNDS):
                        for k in live[worker::self.THREADS]:
                            res = d.lookup(k)
                            if not res.found or res.value != (k ^ 0x5A5A):
                                errors.append((worker, k, "wrong hit"))
                        for k in absent[worker::self.THREADS]:
                            if d.lookup(k).found:
                                errors.append((worker, k, "phantom"))
                except Exception as exc:  # pragma: no cover - smoke guard
                    errors.append((worker, None, repr(exc)))

            threads = [
                threading.Thread(target=reader, args=(w,), daemon=True)
                for w in range(self.THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads), "reader hung"
            assert errors == []
