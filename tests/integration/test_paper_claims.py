"""Integration tests: each of the paper's quantitative claims, measured
end-to-end on the simulator (the EXPERIMENTS.md numbers come from the
benchmarks; these are the pass/fail versions)."""

import math
import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.load_balancer import DChoiceLoadBalancer, lemma3_bound
from repro.core.static_dict import StaticDictionary, fields_needed
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.verify import (
    neighbor_set,
    unique_neighbor_set,
    well_assignable_subset,
)
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


class TestLemma3:
    """Max load <= kn/((1-delta)v) + log_{(1-eps)d/k} v."""

    @pytest.mark.parametrize(
        "n,d,stripe,k",
        [(500, 12, 128, 1), (2000, 16, 256, 1), (800, 16, 128, 4)],
    )
    def test_bound_holds(self, n, d, stripe, k):
        g = SeededRandomExpander(
            left_size=U, degree=d, stripe_size=stripe, seed=n + k
        )
        lb = DChoiceLoadBalancer(g, k=k)
        lb.place_all(random.Random(n).sample(range(U), n))
        bound = lemma3_bound(
            n=n, v=g.right_size, k=k, d=d, eps=1 / 12, delta=0.5
        )
        assert lb.max_load <= bound


class TestLemma4:
    """|Phi(S)| >= (1 - 2 eps) d |S| where eps is the measured deficit."""

    def test_unique_neighbors_vs_expansion(self):
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=2048, seed=3
        )
        for n in (50, 200, 500):
            S = random.Random(n).sample(range(U), n)
            gamma = len(neighbor_set(g, S))
            phi = len(unique_neighbor_set(g, S))
            eps_meas = 1 - gamma / (16 * n)
            assert phi >= (1 - 2 * eps_meas) * 16 * n - 1e-9


class TestLemma5:
    """|S'| >= (1 - 2 eps / lambda) |S| at lambda = 1/3."""

    def test_well_assignable_fraction(self):
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=2048, seed=5
        )
        n = 400
        S = random.Random(7).sample(range(U), n)
        gamma = len(neighbor_set(g, S))
        eps_meas = max(1e-6, 1 - gamma / (16 * n))
        s_prime = well_assignable_subset(g, S, 1 / 3)
        assert len(s_prime) >= (1 - 2 * eps_meas / (1 / 3)) * n

    def test_paper_setting_covers_half(self):
        """With eps ~ 1/12 and lambda = 1/3, at least half of S qualifies
        — the engine of the Theorem 6 construction recursion."""
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=2048, seed=5
        )
        S = random.Random(9).sample(range(U), 400)
        assert len(well_assignable_subset(g, S, 1 / 3)) >= 200


class TestSection41:
    """O(1) worst case; 1-I/O lookups and 2-I/O updates for B=Omega(log N)."""

    def test_worst_case_over_full_workload(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=1000, degree=16, seed=2
        )
        keys = random.Random(2).sample(range(U), 1000)
        worst_update = max(d.insert(k, k).total_ios for k in keys)
        worst_lookup = max(d.lookup(k).cost.total_ios for k in keys)
        assert worst_update == 2  # read + write, the best possible
        assert worst_lookup == 1


class TestTheorem6:
    """Static dictionary: 1-I/O lookups, construction O(sort(nd)),
    space per cases (a)/(b)."""

    def test_case_a_space_bound(self):
        n, sigma = 300, 64
        machine = ParallelDiskMachine(32, 32)
        rng = random.Random(1)
        items = {rng.randrange(U): rng.randrange(1 << sigma) for _ in range(n)}
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=sigma, case="a",
            degree=16, seed=1,
        )
        # O(n (log u + sigma)) bits with a modest constant.
        assert d.space_bits <= 64 * len(items) * (math.log2(U) + sigma)

    def test_case_b_space_bound(self):
        n, sigma = 300, 64
        machine = ParallelDiskMachine(16, 32)
        rng = random.Random(1)
        items = {rng.randrange(U): rng.randrange(1 << sigma) for _ in range(n)}
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=sigma, case="b",
            degree=16, seed=1,
        )
        # O(n log u log n + n sigma) bits.
        bound = 64 * len(items) * (
            math.log2(U) * math.log2(len(items)) + sigma
        )
        assert d.space_bits <= bound

    def test_two_thirds_assignment(self):
        machine = ParallelDiskMachine(16, 32)
        rng = random.Random(4)
        items = {rng.randrange(U): 0 for _ in range(200)}
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=1, case="b", degree=16,
            seed=4,
        )
        m = fields_needed(16)
        assert all(len(s) == m for s in d.assignment.values())
        # 2/3 of the degree, as the paper prescribes.
        assert m == math.ceil(2 * 16 / 3)


class TestTheorem7:
    """1 I/O unsuccessful, 1+eps successful avg, 2+eps update avg,
    O(log n) worst case."""

    @pytest.fixture(scope="class")
    def loaded(self):
        machine = ParallelDiskMachine(32, 32)
        d = DynamicDictionary(
            machine, universe_size=U, capacity=800, sigma=40, degree=16,
            seed=6,
        )
        rng = random.Random(6)
        ref = {}
        while len(ref) < 800:
            k, v = rng.randrange(U), rng.randrange(1 << 40)
            d.insert(k, v)
            ref[k] = v
        return d, ref

    def test_unsuccessful_exactly_one(self, loaded):
        d, ref = loaded
        rng = random.Random(1)
        count = 0
        while count < 300:
            probe = rng.randrange(U)
            if probe in ref:
                continue
            assert d.lookup(probe).cost.total_ios == 1
            count += 1

    def test_successful_one_plus_eps(self, loaded):
        d, ref = loaded
        costs = [d.lookup(k).cost.total_ios for k in ref]
        assert sum(costs) / len(costs) <= 1.25

    def test_update_two_plus_eps(self, loaded):
        d, _ = loaded
        assert d.stats.avg_insert_ios <= 2.3

    def test_worst_case_logarithmic(self, loaded):
        d, ref = loaded
        worst = max(d.lookup(k).cost.total_ios for k in ref)
        assert worst <= 2 + math.ceil(math.log2(800))


class TestDeterminism:
    """The paper's selling point: identical runs, no randomness at runtime."""

    def test_identical_io_traces(self):
        def run():
            machine = ParallelDiskMachine(32, 32)
            d = DynamicDictionary(
                machine, universe_size=U, capacity=300, sigma=24,
                degree=16, seed=13,
            )
            keys = random.Random(5).sample(range(U), 300)
            for k in keys:
                d.insert(k, k % (1 << 24))
            return (
                machine.stats.read_ios,
                machine.stats.write_ios,
                sorted(d.level_occupancy()),
            )

        assert run() == run()

    def test_no_global_random_state_dependence(self):
        random.seed(999)  # detlint: ignore[DET001] -- deliberate pollution of global state
        a = self._trace()
        random.seed(123)  # detlint: ignore[DET001] -- deliberate pollution of global state
        b = self._trace()
        assert a == b

    @staticmethod
    def _trace():
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=100, degree=16, seed=3
        )
        for k in range(100):
            d.insert(k, k)
        return machine.stats.read_ios, machine.stats.write_ios


class TestNoDataMovement:
    """Section 1.1: without deletions, "no piece of data is ever moved,
    once inserted" — references to data stay valid."""

    def test_static_fields_never_move(self):
        machine = ParallelDiskMachine(32, 32)
        d = DynamicDictionary(
            machine, universe_size=U, capacity=200, sigma=24, degree=16,
            seed=8,
        )
        d.insert(42, 1000)
        level0, head0 = d.membership.lookup(42).value
        for k in random.Random(0).sample(range(U), 199):
            if k != 42:
                d.insert(k, 1)
        level1, head1 = d.membership.lookup(42).value
        assert (level0, head0) == (level1, head1)
