"""Hypothesis stateful testing: every dictionary against a dict model.

One rule-based state machine drives insert/delete/lookup with arbitrary
interleavings; each dictionary class gets its own concrete machine class so
failures name the culprit.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.btree import BTreeDictionary
from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.hashing import (
    CuckooDictionary,
    DGMPDictionary,
    FolkloreDictionary,
    StripedHashTable,
)
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 14
CAPACITY = 80

keys = st.integers(0, 200)  # small key space forces collisions
values = st.integers(0, (1 << 20) - 1)


class DictionaryMachine(RuleBasedStateMachine):
    """Abstract model-based test; subclasses provide make_dict()."""

    def __init__(self):
        super().__init__()
        self.dut = self.make_dict()
        self.model = {}

    def make_dict(self):  # pragma: no cover - abstract
        raise NotImplementedError

    @rule(key=keys, value=values)
    def insert(self, key, value):
        if len(self.model) >= CAPACITY and key not in self.model:
            return  # respect the declared capacity
        self.dut.insert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        self.dut.delete(key)
        self.model.pop(key, None)

    @rule(key=keys)
    def lookup(self, key):
        result = self.dut.lookup(key)
        assert result.found == (key in self.model)
        if result.found:
            assert result.value == self.model[key]

    @invariant()
    def sizes_agree(self):
        assert len(self.dut) == len(self.model)


def _machine_for(cls, **kw):
    pdm_disks = kw.pop("disks", 16)

    class Concrete(DictionaryMachine):
        def make_dict(self):
            machine = ParallelDiskMachine(pdm_disks, 32, item_bits=64)
            return cls(
                machine,
                universe_size=U,
                capacity=CAPACITY,
                seed=5,
                **kw,
            )

    Concrete.__name__ = f"{cls.__name__}Machine"
    return Concrete


from repro.core.head_model_dict import HeadModelDictionary
from repro.core.recursive_dict import RecursiveLoadBalancedDictionary

_CONFIGS = [
    (BasicDictionary, {"degree": 16}),
    (StripedHashTable, {}),
    (CuckooDictionary, {}),
    (DGMPDictionary, {}),
    (FolkloreDictionary, {}),
    (DynamicDictionary, {"degree": 16, "sigma": 20, "disks": 32}),
    (HeadModelDictionary, {"degree": 16}),
    (
        RecursiveLoadBalancedDictionary,
        {"degree": 8, "sigma": 20, "levels": 2, "disks": 24},
    ),
]


@pytest.mark.parametrize(
    "cls,kw", _CONFIGS, ids=[c.__name__ for c, _ in _CONFIGS]
)
def test_stateful_against_model(cls, kw):
    machine_cls = _machine_for(cls, **dict(kw))
    run = settings(
        max_examples=12, stateful_step_count=40, deadline=None
    )
    from hypothesis.stateful import run_state_machine_as_test

    run_state_machine_as_test(machine_cls, settings=run)


class BTreeMachine(DictionaryMachine):
    def make_dict(self):
        machine = ParallelDiskMachine(4, 4, item_bits=64)
        return BTreeDictionary(
            machine, universe_size=U, capacity=CAPACITY * 4
        )


def test_btree_stateful():
    from hypothesis.stateful import run_state_machine_as_test

    run_state_machine_as_test(
        BTreeMachine,
        settings=settings(
            max_examples=12, stateful_step_count=40, deadline=None
        ),
    )
