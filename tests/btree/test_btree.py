"""Tests for the striped B-tree baseline."""

import random

import pytest

from repro.btree import BTreeDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def make(disks=4, block=4, capacity=2000, **kw):
    machine = ParallelDiskMachine(disks, block, item_bits=64)
    return BTreeDictionary(
        machine, universe_size=U, capacity=capacity, **kw
    )


class TestCorrectness:
    def test_roundtrip(self):
        bt = make()
        rng = random.Random(0)
        ref = {}
        while len(ref) < 1500:
            k, v = rng.randrange(U), rng.randrange(100)
            bt.insert(k, v)
            ref[k] = v
        assert all(bt.lookup(k).value == v for k, v in ref.items())
        assert len(bt) == 1500

    def test_sorted_insertion_order(self):
        bt = make()
        for k in range(1000):
            bt.insert(k, k)
        assert all(bt.lookup(k).value == k for k in range(0, 1000, 37))

    def test_reverse_insertion_order(self):
        bt = make()
        for k in reversed(range(1000)):
            bt.insert(k, k)
        assert all(bt.lookup(k).found for k in range(0, 1000, 37))

    def test_misses(self):
        bt = make()
        for k in range(0, 2000, 2):
            bt.insert(k, None)
        assert all(not bt.lookup(k).found for k in range(1, 200, 2))

    def test_overwrite(self):
        bt = make()
        bt.insert(5, "a")
        bt.insert(5, "b")
        assert bt.lookup(5).value == "b"
        assert len(bt) == 1

    def test_delete(self):
        bt = make()
        for k in range(500):
            bt.insert(k, k)
        for k in range(0, 500, 5):
            bt.delete(k)
        assert len(bt) == 400
        assert not bt.lookup(0).found
        assert bt.lookup(1).value == 1

    def test_stored_keys(self):
        bt = make()
        keys = set(random.Random(1).sample(range(U), 200))
        for k in keys:
            bt.insert(k, None)
        assert set(bt.stored_keys()) == keys


class TestIOShape:
    def test_lookup_cost_equals_height(self):
        bt = make()
        for k in range(1500):
            bt.insert(k, None)
        h = bt.height()
        assert h >= 3  # enough data to form a real tree at this fan-out
        assert bt.lookup(700).cost.total_ios == h

    def test_height_is_logarithmic(self):
        import math

        bt = make(capacity=4000)
        for k in range(4000):
            bt.insert(k, None)
        # Height <= log_{ceil(children/2)} of leaves + 1-ish; generous cap:
        assert bt.height() <= 2 * math.log(4000, bt.max_children // 2) + 2

    def test_wide_superblocks_flatten_tree(self):
        """The striping benefit: BD fan-out shrinks the height — but never
        to 1 I/O for large n, which is the paper's whole point."""
        narrow = make(disks=4, block=4, capacity=3000)
        wide = make(disks=16, block=32, capacity=3000)
        for k in range(3000):
            narrow.insert(k, None)
            wide.insert(k, None)
        assert wide.height() < narrow.height()
        assert wide.height() >= 2

    def test_node_arena_exhaustion_is_loud(self):
        bt = make(capacity=50, max_nodes=2)
        with pytest.raises(OverflowError):
            for k in range(500):
                bt.insert(k, None)
