"""Properties of the cost algebra and the non-charging probe paths.

Two contracts guard the accounting that every theorem check rests on:

* :meth:`Disk.peek` / :meth:`ParallelDiskMachine.peek_at` are *free* probes —
  they never materialise storage, so space audits (``touched_blocks``,
  ``high_water``, footprint) and I/O counters are untouched by them;
* :class:`OpCost` / :class:`IOStats` form the algebra the span tree and the
  composite dictionaries rely on: ``+`` (sequential) is associative with
  identity zero, :meth:`OpCost.parallel` is associative and commutative,
  and the recovery counters (``retry_ios`` / ``repair_ios``) ride through
  every combination the same way their parent counters do.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.disk import Disk
from repro.pdm.iostats import IOStats, OpCost, measure
from repro.pdm.machine import ParallelDiskMachine

counter = st.integers(min_value=0, max_value=1_000)
opcosts = st.builds(
    OpCost,
    read_ios=counter,
    write_ios=counter,
    blocks_read=counter,
    blocks_written=counter,
    retry_ios=counter,
    repair_ios=counter,
)

FIELDS = (
    "read_ios",
    "write_ios",
    "blocks_read",
    "blocks_written",
    "retry_ios",
    "repair_ios",
)


def _stats(cost: OpCost) -> IOStats:
    s = IOStats()
    s.add(cost)
    return s


# -- free probes ---------------------------------------------------------------


class TestPeekIsFree:
    def test_disk_peek_never_materialises(self):
        disk = Disk(0, 64)
        assert disk.peek(17) is None
        assert disk.touched_blocks == 0
        assert disk.high_water == 0
        # block() at the same index *does* materialise — peek stays exact.
        disk.block(17)
        assert disk.touched_blocks == 1
        assert disk.high_water == 18
        assert disk.peek(17) is not None

    def test_machine_peek_at_charges_nothing(self, machine):
        before = machine.stats.snapshot()
        touched = machine.touched_blocks
        for d in range(machine.num_disks):
            assert machine.peek_at((d, 5)) is None
        assert machine.touched_blocks == touched
        assert all(disk.high_water == 0 for disk in machine.disks)
        assert machine.stats.since(before) == OpCost.zero()

    def test_peek_sees_written_data_without_io(self, machine):
        payload = [7] + [None] * (machine.block_items - 1)
        machine.write_blocks([((2, 3), payload, machine.block_bits)])
        before = machine.stats.snapshot()
        blk = machine.peek_at((2, 3))
        assert blk is not None and blk.payload[0] == 7
        assert machine.stats.since(before) == OpCost.zero()

    def test_reading_unwritten_blocks_stays_unmaterialised(self, machine):
        """The charged read path shares peek's discipline: a read of a
        never-written block is charged as I/O but leaves no footprint."""
        before = machine.stats.snapshot()
        machine.read_blocks([(0, 9), (1, 9)])
        assert machine.stats.since(before).read_ios == 1
        assert machine.touched_blocks == 0


# -- OpCost algebra ------------------------------------------------------------


@given(opcosts, opcosts, opcosts)
def test_sequential_add_is_associative(a, b, c):
    assert (a + b) + c == a + (b + c)


@given(opcosts, opcosts)
def test_sequential_add_is_commutative(a, b):
    assert a + b == b + a


@given(opcosts)
def test_zero_is_identity_for_both_compositions(a):
    assert a + OpCost.zero() == a
    assert OpCost.parallel(a, OpCost.zero()) == a


@given(opcosts, opcosts)
def test_sub_inverts_add(a, b):
    assert (a + b) - b == a


@given(opcosts, opcosts, opcosts)
def test_parallel_is_associative(a, b, c):
    flat = OpCost.parallel(a, b, c)
    assert OpCost.parallel(OpCost.parallel(a, b), c) == flat
    assert OpCost.parallel(a, OpCost.parallel(b, c)) == flat


@given(opcosts, opcosts)
def test_parallel_is_commutative(a, b):
    assert OpCost.parallel(a, b) == OpCost.parallel(b, a)


@given(opcosts)
def test_parallel_is_idempotent_on_rounds(a):
    """Probing the same cost twice in parallel doubles data volume but not
    rounds — the distinction the composite dictionaries exist to exploit."""
    both = OpCost.parallel(a, a)
    assert both.read_ios == a.read_ios
    assert both.write_ios == a.write_ios
    assert both.retry_ios == a.retry_ios
    assert both.repair_ios == a.repair_ios
    assert both.blocks_read == 2 * a.blocks_read
    assert both.blocks_written == 2 * a.blocks_written


@given(opcosts, opcosts)
def test_recovery_ios_tracks_its_parents(a, b):
    """``recovery_ios`` is derived, never double-counted: it composes under
    ``+`` and ``parallel`` exactly as retry/repair themselves do."""
    seq = a + b
    assert seq.recovery_ios == a.recovery_ios + b.recovery_ios
    par = OpCost.parallel(a, b)
    assert par.retry_ios == max(a.retry_ios, b.retry_ios)
    assert par.repair_ios == max(a.repair_ios, b.repair_ios)
    assert par.recovery_ios <= seq.recovery_ios


# -- IOStats merge / snapshot round-trips --------------------------------------


@given(opcosts, opcosts)
def test_merge_is_commutative(a, b):
    left = _stats(a).merge(_stats(b))
    right = _stats(b).merge(_stats(a))
    assert all(getattr(left, f) == getattr(right, f) for f in FIELDS)


@given(opcosts, opcosts, opcosts)
def test_merge_is_associative(a, b, c):
    sa, sb, sc = _stats(a), _stats(b), _stats(c)
    left = sa.merge(sb).merge(sc)
    right = sa.merge(sb.merge(sc))
    assert all(getattr(left, f) == getattr(right, f) for f in FIELDS)


@given(opcosts, opcosts)
def test_merge_agrees_with_sequential_opcost(a, b):
    """Merging two machines' histories is the sequential composition of
    their costs — the documented convention."""
    merged = _stats(a).merge(_stats(b))
    seq = a + b
    assert all(getattr(merged, f) == getattr(seq, f) for f in FIELDS)


@given(opcosts, opcosts)
def test_snapshot_since_add_round_trip(base, delta):
    """since() recovers exactly what add() folded in after a snapshot —
    including the recovery counters."""
    stats = _stats(base)
    snap = stats.snapshot()
    stats.add(delta)
    assert stats.since(snap) == delta
    # And folding the recovered cost into the snapshot reproduces the stats.
    snap.add(delta)
    assert all(getattr(snap, f) == getattr(stats, f) for f in FIELDS)


@given(opcosts)
def test_snapshot_is_a_copy_not_a_view(a):
    stats = _stats(a)
    snap = stats.snapshot()
    stats.add(OpCost(read_ios=1, retry_ios=1))
    assert snap.read_ios == a.read_ios
    assert snap.retry_ios == a.retry_ios


# -- measure() over real machines ----------------------------------------------


@settings(max_examples=25)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 15)),
                min_size=1, max_size=20))
def test_measure_across_machines_is_sequential_sum(batch):
    m1 = ParallelDiskMachine(6, 8)
    m2 = ParallelDiskMachine(6, 8)
    with measure(m1, m2) as both:
        m1.read_blocks(batch)
        m2.read_blocks(batch)
        m2.read_blocks(batch)
    with measure(m1) as solo:
        m1.read_blocks(batch)
    assert both.cost == solo.cost + solo.cost + solo.cost
    assert both.cost.recovery_ios == 0
