"""Property-based model tests for the striped field array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import BitVector
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.striping import StripedFieldArray

STRIPES, STRIPE_SIZE, FIELD_BITS = 6, 20, 32

loc = st.tuples(st.integers(0, STRIPES - 1), st.integers(0, STRIPE_SIZE - 1))
value = st.one_of(st.none(), st.integers(0, 2**16), st.text(max_size=4))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(loc, value), max_size=40))
def test_field_array_matches_dict_model(writes):
    machine = ParallelDiskMachine(STRIPES, 16, item_bits=64)
    array = StripedFieldArray(
        machine,
        stripes=STRIPES,
        stripe_size=STRIPE_SIZE,
        field_bits=FIELD_BITS,
    )
    model = {}
    for location, val in writes:
        array.write_fields({location: val})
        if val is None:
            model.pop(location, None)
        else:
            model[location] = val
    all_locs = [
        (s, i) for s in range(STRIPES) for i in range(STRIPE_SIZE)
    ]
    contents = array.read_fields(all_locs)
    for location in all_locs:
        assert contents[location] == model.get(location)
    assert array.occupied_fields() == len(model)


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(loc, st.integers(0, 100), min_size=1, max_size=30)
)
def test_bulk_write_equals_pointwise_writes(assignments):
    m1 = ParallelDiskMachine(STRIPES, 16)
    a1 = StripedFieldArray(
        m1, stripes=STRIPES, stripe_size=STRIPE_SIZE, field_bits=FIELD_BITS
    )
    a1.write_fields(assignments)

    m2 = ParallelDiskMachine(STRIPES, 16)
    a2 = StripedFieldArray(
        m2, stripes=STRIPES, stripe_size=STRIPE_SIZE, field_bits=FIELD_BITS
    )
    for location, val in assignments.items():
        a2.write_fields({location: val})

    locs = list(assignments)
    assert a1.read_fields(locs) == a2.read_fields(locs)
    # Bulk never costs more write rounds than pointwise.
    assert m1.stats.write_ios <= m2.stats.write_ios


@settings(max_examples=30, deadline=None)
@given(st.sets(loc, min_size=1, max_size=STRIPES))
def test_one_per_stripe_reads_are_one_round(locations):
    """Any batch with at most one field per stripe is one parallel I/O."""
    by_stripe = {}
    for (s, i) in locations:
        by_stripe[s] = (s, i)  # keep one per stripe
    probe = list(by_stripe.values())
    machine = ParallelDiskMachine(STRIPES, 16)
    array = StripedFieldArray(
        machine, stripes=STRIPES, stripe_size=STRIPE_SIZE,
        field_bits=FIELD_BITS,
    )
    array.read_fields(probe)
    assert machine.stats.read_ios == 1
