"""Property-based tests of the machine cost models themselves."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.machine import ParallelDiskHeadMachine, ParallelDiskMachine

D = 6
addr = st.tuples(st.integers(0, D - 1), st.integers(0, 30))
batches = st.lists(addr, min_size=1, max_size=40)


@given(batches)
def test_pdm_read_cost_is_max_per_disk_multiplicity(batch):
    machine = ParallelDiskMachine(D, 8)
    machine.read_blocks(batch)
    unique = set(batch)
    per_disk = Counter(disk for (disk, _blk) in unique)
    assert machine.stats.read_ios == max(per_disk.values())
    assert machine.stats.blocks_read == len(unique)


@given(batches)
def test_head_model_cost_is_ceil_over_heads(batch):
    machine = ParallelDiskHeadMachine(D, 8)
    machine.read_blocks(batch)
    unique = len(set(batch))
    assert machine.stats.read_ios == -(-unique // D)


@given(batches)
def test_head_model_never_beats_pdm_lower_bound(batch):
    """Both models are sandwiched: ceil(m/D) <= cost <= m."""
    for cls in (ParallelDiskMachine, ParallelDiskHeadMachine):
        machine = cls(D, 8)
        machine.read_blocks(batch)
        m = len(set(batch))
        assert -(-m // D) <= machine.stats.read_ios <= m


@settings(max_examples=30)
@given(batches)
def test_write_and_read_cost_models_agree(batch):
    """Writing a batch costs the same rounds as reading it."""
    unique = list(dict.fromkeys(batch))
    reader = ParallelDiskMachine(D, 8)
    reader.read_blocks(unique)
    writer = ParallelDiskMachine(D, 8)
    writer.write_blocks([(a, [0], 8) for a in unique])
    assert writer.stats.write_ios == reader.stats.read_ios


@given(batches)
def test_utilization_bounds(batch):
    machine = ParallelDiskMachine(D, 8)
    machine.read_blocks(batch)
    util = machine.stats.utilization(D)
    assert 0 < util <= 1.0
