"""The M-bounded buffer pool: invariants, durability, determinism, faults.

What the pool promises (see ``src/repro/pdm/cache.py``):

* occupancy never exceeds ``capacity_blocks``, and the capacity itself is
  charged against internal memory — a pool past ``⌊M/B⌋`` cannot even be
  constructed;
* write-back is durable: every absorbed write reaches the disk by
  eviction, explicit flush, or detach — as ordinary *charged* writes;
* hits cost zero I/Os and round plans cover only the misses;
* eviction order is deterministic (pure LRU, no clocks);
* the fault layer always wins: corruption invalidates cached copies, a
  peek never resurrects a block the fault layer scrambled on disk, and
  degraded verdicts match the uncached machine exactly.
"""

from __future__ import annotations

import pytest

from repro.pdm.cache import attach_cache, detach_cache, max_cache_blocks
from repro.pdm.faults import (
    DiskOutage,
    SilentCorruption,
    attach_faults,
    detach_faults,
)
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.memory import InternalMemoryExceeded

D = 4
B = 8


def _machine(cache_blocks=None, *, memory_words=None, num_disks=D):
    return ParallelDiskMachine(
        num_disks, B, memory_words=memory_words, cache_blocks=cache_blocks
    )


def _payload(tag):
    return [tag] * B


# -- capacity and the M bound --------------------------------------------------


class TestCapacityBound:
    def test_pool_larger_than_m_over_b_is_rejected(self):
        m = _machine(memory_words=4 * B)
        assert max_cache_blocks(m.memory, B) == 4
        with pytest.raises(InternalMemoryExceeded):
            attach_cache(m, 5)

    def test_pool_charges_internal_memory(self):
        m = _machine(memory_words=4 * B)
        before = m.memory.used_words
        pool = attach_cache(m, 3)
        assert m.memory.used_words == before + 3 * B
        detach_cache(m)
        assert m.memory.used_words == before
        assert pool.capacity_blocks == 3

    def test_occupancy_never_exceeds_capacity(self):
        m = _machine(cache_blocks=3)
        for i in range(20):
            addr = (i % D, i)
            m.write_blocks([(addr, _payload(i), 64)])
            m.read_blocks([addr, ((i + 1) % D, (i * 7) % 20)])
            assert len(m.cache) <= 3

    def test_double_attach_is_rejected(self):
        m = _machine(cache_blocks=2)
        with pytest.raises(RuntimeError):
            attach_cache(m, 2)


# -- write-back durability -----------------------------------------------------


class TestWriteBackDurability:
    def test_absorbed_writes_cost_zero_until_eviction(self):
        m = _machine(cache_blocks=2)
        m.write_blocks([((0, 0), _payload("a"), 64)])
        m.write_blocks([((1, 0), _payload("b"), 64)])
        assert m.stats.write_ios == 0
        assert m.stats.blocks_written == 0
        assert set(m.cache.dirty_addresses()) == {(0, 0), (1, 0)}
        # Third distinct block evicts the LRU dirty entry: a charged write.
        m.write_blocks([((2, 0), _payload("c"), 64)])
        assert m.stats.write_ios == 1
        assert m.stats.blocks_written == 1
        assert m.disks[0].peek(0).payload == _payload("a")

    def test_every_absorbed_write_survives_detach(self):
        m = _machine(cache_blocks=4)
        writes = {(i % D, i // D): _payload(i) for i in range(10)}
        for addr, payload in writes.items():
            m.write_blocks([(addr, payload, 64)])
        detach_cache(m)
        for (disk, index), payload in writes.items():
            assert m.disks[disk].peek(index).payload == payload
        # ... and the charged writes add up to every distinct block.
        assert m.stats.blocks_written == len(writes)

    def test_explicit_flush_keeps_entries_cached_and_clean(self):
        m = _machine(cache_blocks=4)
        m.write_blocks([((0, 0), _payload("x"), 64)])
        flushed = m.cache.flush(m)
        assert flushed == 1
        assert m.cache.dirty_addresses() == []
        assert m.cache.contains((0, 0))
        assert m.disks[0].peek(0).payload == _payload("x")
        # The flush was an ordinary accounted write.
        assert m.stats.write_ios == 1

    def test_read_after_absorbed_write_sees_new_data_for_free(self):
        m = _machine(cache_blocks=4)
        m.write_blocks([((0, 0), _payload("new"), 64)])
        before = m.stats.total_ios
        blocks = m.read_blocks([(0, 0)])
        assert blocks[(0, 0)].payload == _payload("new")
        assert m.stats.total_ios == before  # hit: zero charged rounds


# -- hits, misses, and round plans ---------------------------------------------


class TestChargingSemantics:
    def test_hits_cost_zero_rounds(self):
        m = _machine(cache_blocks=4)
        m.write_blocks([((0, 5), _payload(5), 64)])
        m.cache.flush(m)
        before = m.stats.total_ios
        m.read_blocks([(0, 5)])
        m.read_blocks([(0, 5)])
        assert m.stats.total_ios == before
        assert m.cache.stats.hits == 2

    def test_round_plan_covers_only_misses(self):
        m = _machine(cache_blocks=4)
        for i in range(3):
            m.write_blocks([((i, 0), _payload(i), 64)])
        m.cache.flush(m)
        # (0,0).. (2,0) cached; (3,0) is not.
        m.write_blocks([((3, 0), _payload(3), 64)])
        m.cache.invalidate((3, 0))
        before = m.stats.total_ios
        blocks, plan = m.read_rounds([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert len(blocks) == 4
        assert plan.num_rounds == 1  # only the miss is scheduled
        assert m.stats.total_ios - before == plan.num_rounds

    def test_uncached_and_cached_reads_agree(self):
        plain = _machine()
        cached = _machine(cache_blocks=2)
        for m in (plain, cached):
            for i in range(6):
                m.write_blocks([((i % D, i // D), _payload(i), 64)])
        if cached.cache is not None:
            cached.cache.flush(cached)
        addrs = [(i % D, i // D) for i in range(6)] * 2
        a = plain.read_blocks(addrs)
        b = cached.read_blocks(addrs)
        assert {k: v.payload for k, v in a.items()} == {
            k: v.payload for k, v in b.items()
        }


# -- deterministic eviction ----------------------------------------------------


class TestDeterminism:
    def _drive(self):
        m = _machine(cache_blocks=3)
        trace = []
        for i in range(30):
            addr = ((i * 5) % D, (i * 3) % 7)
            if i % 3 == 0:
                m.write_blocks([(addr, _payload(i), 64)])
            else:
                m.read_blocks([addr])
            trace.append(tuple(m.cache.cached_addresses()))
        return trace, m.cache.stats.as_dict(), m.stats.total_ios

    def test_identical_runs_evict_identically(self):
        t1, s1, io1 = self._drive()
        t2, s2, io2 = self._drive()
        assert t1 == t2
        assert s1 == s2
        assert io1 == io2

    def test_lru_order_is_access_order(self):
        m = _machine(cache_blocks=2)
        m.write_blocks([((0, 0), _payload("a"), 64)])
        m.write_blocks([((1, 0), _payload("b"), 64)])
        m.read_blocks([(0, 0)])  # bump (0,0) to MRU
        m.write_blocks([((2, 0), _payload("c"), 64)])  # evicts (1,0), the LRU
        assert m.cache.contains((0, 0))
        assert not m.cache.contains((1, 0))


# -- pinning -------------------------------------------------------------------


class TestPinning:
    def test_pinned_entries_survive_pressure_and_writes_spill(self):
        m = _machine(cache_blocks=2)
        m.write_blocks([((0, 0), _payload("a"), 64)])
        m.write_blocks([((1, 0), _payload("b"), 64)])
        m.cache.pin((0, 0))
        m.cache.pin((1, 0))
        before = m.stats.write_ios
        m.write_blocks([((2, 0), _payload("c"), 64)])  # pool full+pinned
        assert m.stats.write_ios > before  # wrote through
        assert m.disks[2].peek(0).payload == _payload("c")
        assert m.cache.contains((0, 0)) and m.cache.contains((1, 0))
        m.cache.unpin((0, 0))
        m.write_blocks([((3, 0), _payload("d"), 64)])  # (0,0) now evictable
        assert not m.cache.contains((0, 0))


# -- faults: invalidation, write-through, peek parity --------------------------


class TestFaultParity:
    def test_corruption_invalidates_cached_copy(self):
        m = _machine(cache_blocks=4)
        m.write_blocks([((0, 0), _payload("clean"), 64)])
        m.cache.flush(m)
        m.read_blocks([(0, 0)])  # cached and clean
        clock = m.stats.total_ios
        attach_faults(
            m, [SilentCorruption(disk=0, round=clock, block=0, salt=1)]
        )
        # The checksummed re-read must see the scrambled medium (a typed
        # corruption failure), not the stale clean copy the pool held.
        blocks, failures = m.read_blocks_degraded([(0, 0)])
        assert (0, 0) in failures
        assert m.cache.stats.invalidations >= 1

    def test_peek_never_resurrects_corrupted_block(self):
        """Satellite regression: after the injector scrambles a block on
        disk, ``peek_at`` must show the scrambled medium — not a stale
        clean copy the pool happened to hold."""
        cached = _machine(cache_blocks=4)
        plain = _machine()
        for m in (cached, plain):
            m.write_blocks([((0, 0), _payload("clean"), 64)])
            if m.cache is not None:
                m.cache.flush(m)
            m.read_blocks([(0, 0)])  # cached machine now holds a copy
            clock = m.stats.total_ios
            attach_faults(
                m, [SilentCorruption(disk=0, round=clock, block=0, salt=7)]
            )
            m.read_blocks([(1, 0)])  # any read fires the due corruption
        want = plain.peek_at((0, 0)).payload
        got = cached.peek_at((0, 0)).payload
        assert got == want
        assert got != _payload("clean")

    def test_outage_hit_is_discarded_and_matches_uncached(self):
        cached = _machine(cache_blocks=4)
        plain = _machine()
        results = {}
        for name, m in (("cached", cached), ("plain", plain)):
            m.write_blocks([((0, 0), _payload("v"), 64)])
            if m.cache is not None:
                m.cache.flush(m)
            m.read_blocks([(0, 0)])
            clock = m.stats.total_ios
            attach_faults(
                m, [DiskOutage(disk=0, start=clock, end=clock + 100)]
            )
            blocks, failures = m.read_blocks_degraded([(0, 0), (1, 0)])
            results[name] = (
                sorted(blocks), sorted(failures),
                {a: type(f).__name__ for a, f in failures.items()},
            )
        assert results["cached"] == results["plain"]
        assert (0, 0) in dict(results["cached"][2].items())

    def test_attach_faults_flips_write_through_and_back(self):
        m = _machine(cache_blocks=4)
        m.write_blocks([((0, 0), _payload("a"), 64)])
        assert m.cache.dirty_addresses() == [(0, 0)]
        attach_faults(m, [DiskOutage(disk=3, start=1000, end=1001)])
        # Attaching flushed the pool and flipped to write-through.
        assert m.cache.write_through
        assert m.cache.dirty_addresses() == []
        assert m.disks[0].peek(0).payload == _payload("a")
        before = m.stats.write_ios
        m.write_blocks([((1, 0), _payload("b"), 64)])
        assert m.stats.write_ios > before  # charged immediately
        detach_faults(m)
        assert not m.cache.write_through

    def test_degraded_dictionary_verdicts_match_uncached(self):
        """End-to-end: the basic dictionary under a dead disk answers
        identically with and without a pool."""
        from repro.core.basic_dict import BasicDictionary
        from repro.faults.plan import FaultPlan

        def build(cache_blocks):
            m = ParallelDiskMachine(8, 16, cache_blocks=cache_blocks)
            d = BasicDictionary(
                m, universe_size=1 << 16, capacity=128, degree=8, seed=5
            )
            keys = [(7 + i * 97) % (1 << 16) for i in range(48)]
            for k in keys:
                d.upsert(k, f"v{k}")
            return m, d, keys

        outcomes = {}
        for tag, cb in (("plain", None), ("cached", 16)):
            m, d, keys = build(cb)
            attach_faults(
                m, FaultPlan.kill_disks([0, 1], num_disks=8).events
            )
            per_key = {}
            for k in keys:
                try:
                    r = d.lookup(k)
                    per_key[k] = ("ok", r.found, r.value)
                except Exception as exc:
                    per_key[k] = ("err", type(exc).__name__)
            outcomes[tag] = per_key
        assert outcomes["cached"] == outcomes["plain"]
        assert any(v[0] == "err" for v in outcomes["plain"].values())


# -- peek coherence ------------------------------------------------------------


class TestPeekCoherence:
    def test_peek_sees_absorbed_write_before_flush(self):
        m = _machine(cache_blocks=4)
        m.write_blocks([((0, 0), _payload("mem-only"), 64)])
        assert m.disks[0].peek(0) is None  # not on disk yet
        assert m.peek_at((0, 0)).payload == _payload("mem-only")

    def test_peek_does_not_perturb_lru(self):
        m = _machine(cache_blocks=2)
        m.write_blocks([((0, 0), _payload("a"), 64)])
        m.write_blocks([((1, 0), _payload("b"), 64)])
        m.peek_at((0, 0))  # no bump: (0,0) stays LRU
        m.write_blocks([((2, 0), _payload("c"), 64)])
        assert not m.cache.contains((0, 0))
        assert m.cache.contains((1, 0))

    def test_peek_of_uncached_address_falls_back_to_disk(self):
        m = _machine(cache_blocks=2)
        m.write_blocks([((0, 0), _payload("z"), 64)])
        m.cache.flush(m)
        m.cache.invalidate((0, 0))
        assert m.peek_at((0, 0)).payload == _payload("z")
