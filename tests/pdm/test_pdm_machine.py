"""Unit tests for the PDM machines: cost model, addressing, allocation."""

import pytest

from repro.pdm.block import BlockOverflowError
from repro.pdm.machine import ParallelDiskHeadMachine, ParallelDiskMachine


class TestConstruction:
    def test_rejects_zero_disks(self):
        with pytest.raises(ValueError):
            ParallelDiskMachine(0, 16)

    def test_rejects_zero_block_capacity(self):
        with pytest.raises(ValueError):
            ParallelDiskMachine(4, 0)

    def test_rejects_zero_item_bits(self):
        with pytest.raises(ValueError):
            ParallelDiskMachine(4, 16, item_bits=0)

    def test_paper_aliases(self, machine):
        assert machine.D == machine.num_disks == 8
        assert machine.B == machine.block_items == 16

    def test_block_bits_is_items_times_item_bits(self, machine):
        assert machine.block_bits == 16 * 64


class TestReadCostModel:
    def test_one_block_costs_one_io(self, machine):
        machine.read_blocks([(0, 0)])
        assert machine.stats.read_ios == 1
        assert machine.stats.blocks_read == 1

    def test_one_block_per_disk_costs_one_io(self, machine):
        machine.read_blocks([(i, 5) for i in range(machine.D)])
        assert machine.stats.read_ios == 1
        assert machine.stats.blocks_read == machine.D

    def test_two_blocks_same_disk_cost_two_ios(self, machine):
        machine.read_blocks([(3, 0), (3, 1)])
        assert machine.stats.read_ios == 2

    def test_cost_is_max_per_disk_multiplicity(self, machine):
        # 3 blocks on disk 0, 1 block on each other disk: 3 rounds.
        addrs = [(0, i) for i in range(3)] + [(d, 0) for d in range(1, 8)]
        machine.read_blocks(addrs)
        assert machine.stats.read_ios == 3

    def test_duplicate_addresses_collapse(self, machine):
        machine.read_blocks([(0, 0), (0, 0), (0, 0)])
        assert machine.stats.read_ios == 1
        assert machine.stats.blocks_read == 1

    def test_empty_batch_is_free(self, machine):
        assert machine.read_blocks([]) == {}
        assert machine.stats.read_ios == 0

    def test_out_of_range_disk_rejected(self, machine):
        with pytest.raises(IndexError):
            machine.read_blocks([(8, 0)])

    def test_negative_block_rejected(self, machine):
        with pytest.raises(IndexError):
            machine.read_blocks([(0, -1)])


class TestWriteCostModel:
    def test_write_one_block(self, machine):
        machine.write_blocks([((0, 0), [1, 2, 3], 3 * 64)])
        assert machine.stats.write_ios == 1
        assert machine.stats.blocks_written == 1

    def test_write_round_trip(self, machine):
        machine.write_blocks([((2, 7), ["payload"], 64)])
        block = machine.read_blocks([(2, 7)])[(2, 7)]
        assert block.payload == ["payload"]
        assert block.used_bits == 64

    def test_write_striped_batch_one_io(self, machine):
        writes = [((d, 0), [d], 64) for d in range(machine.D)]
        machine.write_blocks(writes)
        assert machine.stats.write_ios == 1

    def test_duplicate_write_address_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.write_blocks([((0, 0), [1], 64), ((0, 0), [2], 64)])

    def test_overfull_payload_rejected(self, machine):
        with pytest.raises(BlockOverflowError):
            machine.write_blocks([((0, 0), [0], machine.block_bits + 1)])

    def test_empty_write_batch_is_free(self, machine):
        machine.write_blocks([])
        assert machine.stats.write_ios == 0


class TestHeadModel:
    def test_d_blocks_anywhere_cost_one_io(self, head_machine):
        # All on the same disk: still one round in the head model.
        head_machine.read_blocks([(0, i) for i in range(head_machine.D)])
        assert head_machine.stats.read_ios == 1

    def test_ceil_division(self, head_machine):
        head_machine.read_blocks([(0, i) for i in range(head_machine.D + 1)])
        assert head_machine.stats.read_ios == 2

    def test_head_model_dominates_pdm(self):
        """For any batch, the head model never costs more than the PDM."""
        pdm = ParallelDiskMachine(4, 8)
        head = ParallelDiskHeadMachine(4, 8)
        batch = [(0, 0), (0, 1), (0, 2), (1, 0), (2, 0)]
        pdm.read_blocks(batch)
        head.read_blocks(batch)
        assert head.stats.read_ios <= pdm.stats.read_ios


class TestAllocator:
    def test_allocations_are_disjoint(self, machine):
        a = machine.allocate(0, 10)
        b = machine.allocate(0, 5)
        assert b >= a + 10

    def test_allocations_per_disk_independent(self, machine):
        a = machine.allocate(0, 10)
        b = machine.allocate(1, 10)
        assert a == 0 and b == 0

    def test_negative_count_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.allocate(0, -1)

    def test_bad_disk_rejected(self, machine):
        with pytest.raises(IndexError):
            machine.allocate(99, 1)


class TestSpaceAudit:
    def test_footprint_counts_touched_blocks(self, machine):
        machine.write_blocks([((0, 0), [1], 64), ((1, 3), [2], 64)])
        assert machine.touched_blocks == 2
        assert machine.footprint_bits == 2 * machine.block_bits
        assert machine.used_bits == 128

    def test_block_at_does_not_charge_io(self, machine):
        machine.block_at((0, 0))
        assert machine.stats.total_ios == 0
