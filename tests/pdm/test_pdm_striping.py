"""Unit tests for striped field arrays and item buckets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.striping import StripedFieldArray, StripedItemBuckets


@pytest.fixture
def array(machine):
    return StripedFieldArray(
        machine, stripes=8, stripe_size=64, field_bits=32
    )


class TestFieldArrayGeometry:
    def test_num_fields(self, array):
        assert array.num_fields == 8 * 64

    def test_fields_per_block(self, array, machine):
        assert array.fields_per_block == machine.block_bits // 32

    def test_field_too_wide_rejected(self, machine):
        with pytest.raises(ValueError):
            StripedFieldArray(
                machine,
                stripes=8,
                stripe_size=4,
                field_bits=machine.block_bits + 1,
            )

    def test_too_many_stripes_rejected(self, machine):
        with pytest.raises(ValueError):
            StripedFieldArray(
                machine, stripes=machine.num_disks + 1, stripe_size=4,
                field_bits=32,
            )

    def test_out_of_range_location_rejected(self, array):
        with pytest.raises(IndexError):
            array.read_fields([(8, 0)])
        with pytest.raises(IndexError):
            array.read_fields([(0, 64)])


class TestFieldArrayIO:
    def test_unwritten_fields_read_none(self, array):
        out = array.read_fields([(0, 0), (3, 17)])
        assert out == {(0, 0): None, (3, 17): None}

    def test_write_then_read(self, array):
        array.write_fields({(2, 5): "hello", (7, 63): 1234})
        out = array.read_fields([(2, 5), (7, 63)])
        assert out[(2, 5)] == "hello"
        assert out[(7, 63)] == 1234

    def test_one_field_per_stripe_is_one_io(self, array, machine):
        locs = [(s, 7) for s in range(8)]
        snap = machine.stats.snapshot()
        array.read_fields(locs)
        assert machine.stats.since(snap).read_ios == 1

    def test_write_none_clears(self, array):
        array.write_fields({(1, 1): "x"})
        array.write_fields({(1, 1): None})
        assert array.read_fields([(1, 1)])[(1, 1)] is None

    def test_fields_in_same_block_one_io(self, array, machine):
        # Indices 0 and 1 of a stripe share a block (fields_per_block = 32).
        snap = machine.stats.snapshot()
        array.read_fields([(0, 0), (0, 1)])
        assert machine.stats.since(snap).read_ios == 1

    def test_fields_in_different_blocks_same_stripe_two_ios(
        self, array, machine
    ):
        far = array.fields_per_block  # first index of the second block
        assert far <= 63, "test geometry assumption"
        snap = machine.stats.snapshot()
        array.read_fields([(0, 0), (0, far)])
        assert machine.stats.since(snap).read_ios == 2

    def test_peek_matches_read_without_io(self, array, machine):
        array.write_fields({(4, 4): "z"})
        snap = machine.stats.snapshot()
        assert array.peek((4, 4)) == "z"
        assert machine.stats.since(snap).total_ios == 0

    def test_occupied_fields_counts(self, array):
        array.write_fields({(0, 0): "a", (1, 1): "b", (1, 2): "c"})
        assert array.occupied_fields() == 3

    def test_bit_accounting(self, array, machine):
        array.write_fields({(0, 0): "a", (0, 1): "b"})
        blk = machine.block_at((0, array._base[0]))
        assert blk.used_bits == 2 * 32


class TestTwoArraysShareMachine:
    def test_no_address_collision(self, machine):
        a = StripedFieldArray(machine, stripes=8, stripe_size=8, field_bits=64)
        b = StripedFieldArray(machine, stripes=8, stripe_size=8, field_bits=64)
        a.write_fields({(0, 0): "from-a"})
        b.write_fields({(0, 0): "from-b"})
        assert a.read_fields([(0, 0)])[(0, 0)] == "from-a"
        assert b.read_fields([(0, 0)])[(0, 0)] == "from-b"


@pytest.fixture
def buckets(machine):
    return StripedItemBuckets(
        machine, stripes=8, stripe_size=16, capacity_items=16
    )


class TestItemBuckets:
    def test_empty_bucket_reads_empty(self, buckets):
        assert buckets.read_buckets([(0, 0)])[(0, 0)] == []

    def test_write_read_roundtrip(self, buckets):
        buckets.write_buckets({(3, 3): [(1, "a"), (2, "b")]})
        assert buckets.read_buckets([(3, 3)])[(3, 3)] == [(1, "a"), (2, "b")]

    def test_one_bucket_per_stripe_one_io(self, buckets, machine):
        snap = machine.stats.snapshot()
        buckets.read_buckets([(s, s) for s in range(8)])
        assert machine.stats.since(snap).read_ios == 1

    def test_overflow_raises(self, buckets):
        with pytest.raises(OverflowError):
            buckets.write_buckets({(0, 0): list(range(17))})

    def test_loads_audit(self, buckets):
        buckets.write_buckets({(0, 0): [1], (5, 2): [1, 2, 3]})
        assert buckets.loads() == {(0, 0): 1, (5, 2): 3}

    def test_single_block_bucket_geometry(self, buckets):
        assert buckets.blocks_per_bucket == 1


class TestMultiBlockBuckets:
    """The small-B regime: buckets hold more than one block's items."""

    def test_blocks_per_bucket(self, machine):
        b = StripedItemBuckets(
            machine, stripes=4, stripe_size=4, capacity_items=40
        )  # 16 items per block -> 3 blocks
        assert b.blocks_per_bucket == 3

    def test_roundtrip_across_blocks(self, machine):
        b = StripedItemBuckets(
            machine, stripes=4, stripe_size=4, capacity_items=40
        )
        items = [(i, i * i) for i in range(40)]
        b.write_buckets({(1, 2): items})
        assert b.read_buckets([(1, 2)])[(1, 2)] == items

    def test_read_costs_blocks_per_bucket_ios(self, machine):
        b = StripedItemBuckets(
            machine, stripes=4, stripe_size=4, capacity_items=40
        )
        snap = machine.stats.snapshot()
        b.read_buckets([(0, 0)])
        assert machine.stats.since(snap).read_ios == 3

    def test_shrinking_bucket_clears_tail_blocks(self, machine):
        b = StripedItemBuckets(
            machine, stripes=4, stripe_size=4, capacity_items=40
        )
        b.write_buckets({(0, 0): [(i, None) for i in range(40)]})
        b.write_buckets({(0, 0): [(0, None)]})
        assert b.read_buckets([(0, 0)])[(0, 0)] == [(0, None)]


@settings(max_examples=25, deadline=None)
@given(
    assignments=st.dictionaries(
        st.tuples(st.integers(0, 7), st.integers(0, 15)),
        st.lists(st.integers(), max_size=16),
        max_size=20,
    )
)
def test_bucket_state_matches_model(assignments):
    """Property: after arbitrary writes, reads agree with a plain dict."""
    machine = ParallelDiskMachine(8, 16, item_bits=64)
    buckets = StripedItemBuckets(
        machine, stripes=8, stripe_size=16, capacity_items=16
    )
    model = {}
    for loc, items in assignments.items():
        buckets.write_buckets({loc: items})
        model[loc] = items
    for loc, items in model.items():
        assert buckets.read_buckets([loc])[loc] == items
