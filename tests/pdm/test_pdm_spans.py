"""Tests for hierarchical operation spans (repro.pdm.spans)."""

import pytest

from repro.pdm.iostats import OpCost, measure
from repro.pdm.spans import (
    Span,
    SpanRecorder,
    attach_spans,
    detach_spans,
    span,
)


def _read(machine, n=1, disk=0):
    machine.read_blocks([(disk, i) for i in range(n)])


class TestSpanContextManager:
    def test_unrecorded_span_measures_like_measure(self, machine):
        with span(machine, "op") as h:
            _read(machine)
        assert machine.spans is None
        assert h.span is None
        assert h.total_ios == 1
        assert h.cost.read_ios == 1

    def test_handle_mirrors_measure_totals(self, machine):
        with measure(machine) as legacy:
            with span(machine, "op") as h:
                _read(machine, 3)
                machine.write_blocks([((0, 0), [1], 64)])
        assert h.cost == legacy.cost
        assert h.read_ios == legacy.read_ios
        assert h.write_ios == legacy.write_ios

    def test_annotate_is_noop_when_unrecorded(self, machine):
        with span(machine, "op") as h:
            h.annotate(hit=True)  # must not raise
        assert h.span is None

    def test_cost_captured_on_exception(self, machine):
        recorder = attach_spans(machine)
        with pytest.raises(RuntimeError):
            with span(machine, "op") as h:
                _read(machine)
                raise RuntimeError("boom")
        assert h.total_ios == 1
        # the recorder's stack unwound: a new root can open cleanly
        assert recorder.depth == 0
        with span(machine, "op2"):
            pass
        assert [r.name for r in recorder.roots] == ["op", "op2"]


class TestRecording:
    def test_attach_detach(self, machine):
        recorder = attach_spans(machine)
        assert machine.spans is recorder
        detach_spans(machine)
        assert machine.spans is None

    def test_nesting_builds_tree(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "root"):
            with span(machine, "child_a"):
                _read(machine)
            with span(machine, "child_b"):
                _read(machine, 2)
        (root,) = recorder.roots
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        # child_b reads 2 same-disk blocks = 2 rounds
        assert root.cost.read_ios == 3
        assert root.children[1].cost.blocks_read == 2

    def test_root_cost_equals_legacy_measure_total(self, machine):
        """Acceptance: the root of a span tree reports exactly what the
        legacy measure() context reports over the same window."""
        recorder = attach_spans(machine)
        with measure(machine) as legacy:
            with span(machine, "root"):
                with span(machine, "inner"):
                    _read(machine, 2)
                machine.write_blocks([((1, 0), [1], 64)])
        (root,) = recorder.roots
        assert root.cost == legacy.cost

    def test_indices_are_preorder_logical_time(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "a"):
            with span(machine, "b"):
                pass
        with span(machine, "c"):
            pass
        assert [s.index for s in recorder.iter_spans()] == [0, 1, 2]
        assert [s.name for s in recorder.iter_spans()] == ["a", "b", "c"]

    def test_attrs_and_annotate(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "op", kind="lookup") as h:
            h.annotate(hit=False)
        (root,) = recorder.roots
        assert root.attrs == {"kind": "lookup", "hit": False}

    def test_clear_rejects_open_spans(self, machine):
        recorder = attach_spans(machine)
        with pytest.raises(RuntimeError):
            with span(machine, "op"):
                recorder.clear()

    def test_totals_aggregates_per_name(self, machine):
        recorder = attach_spans(machine)
        for _ in range(3):
            with span(machine, "op"):
                _read(machine)
        totals = recorder.totals()
        assert totals["op"]["count"] == 3
        assert totals["op"]["read_ios"] == 3
        assert totals["op"]["effective_ios"] == 3

    def test_determinism_two_identical_runs(self, machine, wide_machine):
        def run(m):
            rec = attach_spans(m)
            with span(m, "root", parallel=True):
                with span(m, "a"):
                    m.read_blocks([(0, 0)])
                with span(m, "b"):
                    m.read_blocks([(1, 0)])
            return [r.to_dict() for r in rec.roots]

        assert run(machine) == run(wide_machine)


class TestEffectiveCost:
    def test_leaf_effective_is_raw(self):
        s = Span(index=0, name="leaf", cost=OpCost(read_ios=2))
        assert s.effective_cost == s.cost

    def test_sequential_children_sum(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "root"):
            with span(machine, "a"):
                _read(machine)
            with span(machine, "b"):
                _read(machine)
        (root,) = recorder.roots
        assert root.effective_cost.total_ios == 2
        assert root.effective_cost == root.cost

    def test_parallel_children_max_rounds_sum_blocks(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "root", parallel=True):
            with span(machine, "a"):
                _read(machine, 1, disk=0)
            with span(machine, "b"):
                _read(machine, 2, disk=1)  # 2 same-disk blocks = 2 rounds
        (root,) = recorder.roots
        # raw: 3 read rounds; effective: max(1, 2) = 2 rounds
        assert root.cost.read_ios == 3
        assert root.effective_cost.read_ios == 2
        # block volume always sums
        assert root.effective_cost.blocks_read == 3

    def test_residual_io_stays_sequential(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "root", parallel=True):
            with span(machine, "a"):
                _read(machine)
            with span(machine, "b"):
                _read(machine)
            _read(machine)  # outside any child
        (root,) = recorder.roots
        # parallel children collapse to 1 round; the residual adds 1
        assert root.effective_cost.read_ios == 2
        assert root.cost.read_ios == 3

    def test_effective_matches_opcost_parallel_algebra(self, machine):
        recorder = attach_spans(machine)
        with span(machine, "root", parallel=True):
            with span(machine, "a"):
                _read(machine, 2, disk=0)
            with span(machine, "b"):
                machine.write_blocks([((1, 0), [1], 64)])
        (root,) = recorder.roots
        a, b = root.children
        assert root.effective_cost == OpCost.parallel(
            a.effective_cost, b.effective_cost
        )
