"""Tests for I/O tracing and the concurrency-analysis helpers."""

from repro.analysis.concurrency import (
    conflict_rate,
    footprint_of,
    footprints,
    max_block_contention,
)
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.trace import attach, detach


class TestTraceRecorder:
    def test_records_reads_and_writes(self, machine):
        recorder = attach(machine)
        machine.read_blocks([(0, 0), (1, 2)])
        machine.write_blocks([((0, 0), [1], 64)])
        assert len(recorder.events) == 2
        assert recorder.events[0].kind == "read"
        assert recorder.events[1].kind == "write"
        assert recorder.rounds == 2

    def test_footprints(self, machine):
        recorder = attach(machine)
        machine.read_blocks([(0, 0), (1, 2)])
        machine.write_blocks([((1, 2), [1], 64)])
        assert recorder.read_footprint() == {(0, 0), (1, 2)}
        assert recorder.write_footprint() == {(1, 2)}

    def test_footprints_preserve_first_touch_order(self, machine):
        """Footprints iterate in first-touch order (no set-iteration
        nondeterminism) while staying set-like for comparisons."""
        recorder = attach(machine)
        machine.read_blocks([(3, 0), (1, 0)])
        machine.read_blocks([(2, 0), (3, 0)])
        assert list(recorder.blocks_touched()) == [(3, 0), (1, 0), (2, 0)]
        assert list(recorder.read_footprint()) == [(3, 0), (1, 0), (2, 0)]
        # set-like semantics are preserved
        assert recorder.blocks_touched() == {(1, 0), (2, 0), (3, 0)}
        assert recorder.blocks_touched() & {(1, 0)} == {(1, 0)}

    def test_footprint_kind_filter_ordered(self, machine):
        recorder = attach(machine)
        machine.write_blocks([((5, 1), [1], 64)])
        machine.read_blocks([(0, 0)])
        machine.write_blocks([((4, 0), [1], 64)])
        assert list(recorder.write_footprint()) == [(5, 1), (4, 0)]
        assert list(recorder.blocks_touched()) == [(5, 1), (0, 0), (4, 0)]

    def test_detach_stops_recording(self, machine):
        recorder = attach(machine)
        detach(machine)
        machine.read_blocks([(0, 0)])
        assert recorder.events == []

    def test_no_tracer_no_overhead(self, machine):
        machine.read_blocks([(0, 0)])  # must simply work
        assert machine.tracer is None

    def test_utilization_metric(self, machine):
        machine.read_blocks([(d, 0) for d in range(machine.D)])  # striped
        assert machine.stats.utilization(machine.D) == 1.0
        machine.stats.reset()
        machine.read_blocks([(0, i) for i in range(4)])  # one disk
        assert machine.stats.utilization(machine.D) == 4 / (4 * machine.D)


class TestConcurrencyAnalysis:
    def test_footprint_of(self, machine):
        reads, writes = footprint_of(
            machine,
            lambda: machine.write_blocks([((2, 3), [1], 64)]),
        )
        assert writes == {(2, 3)} and reads == set()

    def test_conflict_rate_disjoint(self, machine):
        ops = [
            (lambda d=d: machine.write_blocks([((d, 0), [1], 64)]))
            for d in range(4)
        ]
        prints = footprints(machine, ops)
        assert conflict_rate(prints) == 0.0

    def test_conflict_rate_hot_block(self, machine):
        ops = [
            (lambda: machine.write_blocks([((0, 0), [1], 64)]))
            for _ in range(4)
        ]
        prints = footprints(machine, ops)
        assert conflict_rate(prints) == 1.0
        assert max_block_contention(prints) == 4

    def test_read_write_mode(self, machine):
        prints = [
            ({(0, 0)}, set()),  # reader of block (0,0)
            (set(), {(0, 0)}),  # writer of block (0,0)
        ]
        assert conflict_rate(prints, mode="write-write") == 0.0
        assert conflict_rate(prints, mode="read-write") == 1.0

    def test_single_op_no_pairs(self):
        assert conflict_rate([(set(), {(0, 0)})]) == 0.0
