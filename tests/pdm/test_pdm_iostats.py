"""Unit tests for I/O accounting: snapshots, deltas, parallel combination."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pdm.iostats import IOStats, OpCost, measure
from repro.pdm.machine import ParallelDiskMachine


class TestIOStats:
    def test_starts_at_zero(self):
        s = IOStats()
        assert s.total_ios == 0

    def test_snapshot_is_independent_copy(self):
        s = IOStats()
        snap = s.snapshot()
        s.read_ios += 5
        assert snap.read_ios == 0

    def test_since_computes_delta(self):
        s = IOStats()
        snap = s.snapshot()
        s.read_ios += 3
        s.write_ios += 2
        delta = s.since(snap)
        assert delta.read_ios == 3
        assert delta.write_ios == 2
        assert delta.total_ios == 5

    def test_add_folds_cost_back(self):
        s = IOStats()
        s.add(OpCost(read_ios=1, write_ios=2, blocks_read=3, blocks_written=4))
        assert (s.read_ios, s.write_ios) == (1, 2)
        assert (s.blocks_read, s.blocks_written) == (3, 4)

    def test_reset(self):
        s = IOStats(read_ios=9)
        s.reset()
        assert s.total_ios == 0


class TestOpCost:
    def test_sequential_composition_adds(self):
        a = OpCost(read_ios=1, write_ios=1)
        b = OpCost(read_ios=2)
        c = a + b
        assert c.read_ios == 3 and c.write_ios == 1

    def test_parallel_composition_takes_max_rounds(self):
        a = OpCost(read_ios=1, write_ios=2, blocks_read=8)
        b = OpCost(read_ios=3, write_ios=1, blocks_read=4)
        c = OpCost.parallel(a, b)
        assert c.read_ios == 3 and c.write_ios == 2

    def test_parallel_composition_sums_block_volume(self):
        a = OpCost(blocks_read=8, blocks_written=1)
        b = OpCost(blocks_read=4, blocks_written=2)
        c = OpCost.parallel(a, b)
        assert c.blocks_read == 12 and c.blocks_written == 3

    def test_parallel_of_nothing_is_zero(self):
        assert OpCost.parallel() == OpCost.zero()

    @given(
        st.tuples(*(st.integers(0, 100) for _ in range(4))),
        st.tuples(*(st.integers(0, 100) for _ in range(4))),
    )
    def test_parallel_bounded_by_sequential(self, t1, t2):
        """Parallel rounds never exceed sequential rounds (and never drop
        below either operand) — the basic sanity of the cost algebra."""
        a, b = OpCost(*t1), OpCost(*t2)
        par = OpCost.parallel(a, b)
        seq = a + b
        assert par.total_ios <= seq.total_ios
        assert par.read_ios >= max(a.read_ios, b.read_ios)
        assert par.write_ios >= max(a.write_ios, b.write_ios)


class TestUtilizationGuards:
    def test_iostats_utilization_rejects_zero_disks(self):
        with pytest.raises(ValueError):
            IOStats(read_ios=1).utilization(0)

    def test_iostats_utilization_rejects_negative_disks(self):
        with pytest.raises(ValueError):
            IOStats().utilization(-4)

    def test_opcost_utilization_matches_iostats(self):
        cost = OpCost(read_ios=2, write_ios=1, blocks_read=10, blocks_written=2)
        stats = IOStats()
        stats.add(cost)
        assert cost.utilization(4) == stats.utilization(4) == 12 / (3 * 4)

    def test_opcost_utilization_rejects_zero_disks(self):
        with pytest.raises(ValueError):
            OpCost(read_ios=1).utilization(0)

    def test_opcost_utilization_idle_is_zero(self):
        assert OpCost().utilization(8) == 0.0


class TestCompositionLaws:
    """The span algebra rests on these identities."""

    def test_subtraction_inverts_addition(self):
        a = OpCost(1, 2, 3, 4)
        b = OpCost(5, 6, 7, 8)
        assert (a + b) - b == a
        assert (a + b) - a == b

    def test_zero_is_identity_for_both_compositions(self):
        a = OpCost(2, 3, 5, 7)
        assert a + OpCost.zero() == a
        assert OpCost.parallel(a, OpCost.zero()) == OpCost(
            a.read_ios, a.write_ios, a.blocks_read, a.blocks_written
        )

    def test_sequential_is_associative_and_commutative(self):
        a, b, c = OpCost(1, 0, 2, 0), OpCost(0, 3, 0, 1), OpCost(2, 2, 2, 2)
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a

    def test_parallel_is_associative(self):
        a, b, c = OpCost(1, 0, 2, 0), OpCost(0, 3, 0, 1), OpCost(2, 2, 2, 2)
        assert OpCost.parallel(OpCost.parallel(a, b), c) == OpCost.parallel(
            a, b, c
        )

    @given(
        st.tuples(*(st.integers(0, 100) for _ in range(4))),
        st.tuples(*(st.integers(0, 100) for _ in range(4))),
    )
    def test_parallel_rounds_max_blocks_sum(self, t1, t2):
        a, b = OpCost(*t1), OpCost(*t2)
        par = OpCost.parallel(a, b)
        assert par.read_ios == max(a.read_ios, b.read_ios)
        assert par.write_ios == max(a.write_ios, b.write_ios)
        assert par.blocks_read == a.blocks_read + b.blocks_read
        assert par.blocks_written == a.blocks_written + b.blocks_written


class TestMeasure:
    def test_measure_captures_cost(self):
        m = ParallelDiskMachine(4, 8)
        with measure(m) as cost:
            m.read_blocks([(0, 0)])
            m.write_blocks([((0, 0), [1], 64)])
        assert cost.total_ios == 2
        assert cost.read_ios == 1
        assert cost.write_ios == 1

    def test_measure_multiple_machines_sums(self):
        m1 = ParallelDiskMachine(4, 8)
        m2 = ParallelDiskMachine(4, 8)
        with measure(m1, m2) as cost:
            m1.read_blocks([(0, 0)])
            m2.read_blocks([(0, 0)])
        assert cost.total_ios == 2

    def test_measure_is_delta_not_cumulative(self):
        m = ParallelDiskMachine(4, 8)
        m.read_blocks([(0, 0)])  # before the measurement window
        with measure(m) as cost:
            m.read_blocks([(1, 0)])
        assert cost.total_ios == 1

    def test_measure_captures_on_exception(self):
        m = ParallelDiskMachine(4, 8)
        with pytest.raises(RuntimeError):
            with measure(m) as cost:
                m.read_blocks([(0, 0)])
                raise RuntimeError("boom")
        assert cost.total_ios == 1
