"""Unit tests for blocks, disks and internal-memory accounting."""

import pytest

from repro.pdm.block import Block, BlockOverflowError
from repro.pdm.disk import Disk
from repro.pdm.memory import InternalMemory, InternalMemoryExceeded


class TestBlock:
    def test_new_block_is_empty(self):
        b = Block(128)
        assert b.is_empty
        assert b.free_bits == 128

    def test_store_and_clear(self):
        b = Block(128)
        b.store([1, 2], 100)
        assert not b.is_empty
        assert b.used_bits == 100
        assert b.free_bits == 28
        b.clear()
        assert b.is_empty

    def test_store_at_exact_capacity(self):
        b = Block(128)
        b.store("x", 128)
        assert b.free_bits == 0

    def test_overflow_rejected(self):
        b = Block(128)
        with pytest.raises(BlockOverflowError):
            b.store("x", 129)

    def test_negative_size_rejected(self):
        b = Block(128)
        with pytest.raises(ValueError):
            b.store("x", -1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Block(0)


class TestDisk:
    def test_blocks_materialise_lazily(self):
        d = Disk(0, 128)
        assert d.touched_blocks == 0
        d.block(100)
        assert d.touched_blocks == 1
        assert d.high_water == 101

    def test_same_block_returned(self):
        d = Disk(0, 128)
        assert d.block(3) is d.block(3)

    def test_negative_index_rejected(self):
        d = Disk(0, 128)
        with pytest.raises(IndexError):
            d.block(-1)

    def test_used_bits_aggregates(self):
        d = Disk(0, 128)
        d.block(0).store("a", 10)
        d.block(5).store("b", 20)
        assert d.used_bits == 30


class TestInternalMemory:
    def test_unbounded_tracks_peak(self):
        m = InternalMemory()
        m.charge(10)
        m.charge(5)
        m.release(12)
        assert m.used_words == 3
        assert m.peak_words == 15

    def test_capacity_enforced(self):
        m = InternalMemory(capacity_words=10)
        m.charge(10)
        with pytest.raises(InternalMemoryExceeded):
            m.charge(1)

    def test_release_more_than_used_rejected(self):
        m = InternalMemory()
        m.charge(5)
        with pytest.raises(ValueError):
            m.release(6)

    def test_negative_amounts_rejected(self):
        m = InternalMemory()
        with pytest.raises(ValueError):
            m.charge(-1)
        with pytest.raises(ValueError):
            m.release(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            InternalMemory(capacity_words=0)
