"""The round-packing scheduler: exact costs, invariants, determinism.

``pack_rounds`` is the constructive witness of what the machines *charge*
for a batch — these tests pin the exact round counts the ISSUE demands
(disk-disjoint batches pack to ``⌈m/D⌉``; an adversarial all-same-disk
batch degrades to ``m`` rounds and never deadlocks), the PDM discipline
(never two same-disk requests in a round, never more than ``D`` wide), and
the agreement ``plan_rounds(a).num_rounds == batch_rounds(a)``.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdm.machine import (
    ParallelDiskHeadMachine,
    ParallelDiskMachine,
    pack_rounds,
)

D = 8
addr = st.tuples(st.integers(0, D - 1), st.integers(0, 30))
batches = st.lists(addr, min_size=0, max_size=60)


class TestExactCounts:
    def test_empty_batch_zero_rounds(self):
        plan = pack_rounds([], num_disks=D)
        assert plan.num_rounds == 0
        assert plan.unique_blocks == 0
        assert plan.max_width == 0

    def test_disk_disjoint_single_round(self):
        # One block on each of the D disks: exactly one parallel round.
        plan = pack_rounds([(d, 5) for d in range(D)], num_disks=D)
        assert plan.num_rounds == 1
        assert plan.max_width == D

    @pytest.mark.parametrize("m", [1, D - 1, D, D + 1, 3 * D, 3 * D + 2])
    def test_round_robin_batch_packs_to_ceil_m_over_d(self, m):
        # m blocks dealt round-robin over the disks — the disk-disjoint
        # regime: multiplicity ceil(m/D) is both the bound and the plan.
        addrs = [(i % D, i // D) for i in range(m)]
        plan = pack_rounds(addrs, num_disks=D)
        assert plan.num_rounds == -(-m // D)

    @pytest.mark.parametrize("m", [1, 2, 7, 19])
    def test_all_same_disk_degrades_to_m_rounds(self, m):
        # Adversarial batch: every request on disk 3.  The PDM can move
        # one of them per round — m rounds, one request each, and the
        # packer terminates (no deadlock) with every request scheduled.
        addrs = [(3, b) for b in range(m)]
        plan = pack_rounds(addrs, num_disks=D)
        assert plan.num_rounds == m
        assert all(len(r) == 1 for r in plan.rounds)
        assert sorted(a for r in plan.rounds for a in r) == addrs

    def test_duplicates_collapse(self):
        plan = pack_rounds([(0, 1)] * 10 + [(1, 2)] * 5, num_disks=D)
        assert plan.requested == 15
        assert plan.unique_blocks == 2
        assert plan.duplicates == 13
        assert plan.num_rounds == 1

    def test_head_model_ignores_disk_conflicts(self):
        # 2D requests on one disk: the head model still packs ceil(2D/D)=2.
        addrs = [(0, b) for b in range(2 * D)]
        plan = pack_rounds(addrs, num_disks=D, distinct_disks=False)
        assert plan.num_rounds == 2
        assert plan.max_width == D


class TestInvariants:
    @given(batches)
    @settings(max_examples=200)
    def test_pdm_rounds_respect_discipline(self, batch):
        """Never two same-disk requests in a round, never more than D."""
        plan = pack_rounds(batch, num_disks=D)
        for rnd in plan.rounds:
            disks = [disk for (disk, _b) in rnd]
            assert len(disks) == len(set(disks)), "same-disk conflict"
            assert len(rnd) <= D
        scheduled = sorted(a for r in plan.rounds for a in r)
        assert scheduled == sorted(set(map(tuple, batch)))

    @given(batches)
    @settings(max_examples=200)
    def test_head_rounds_respect_width_cap(self, batch):
        plan = pack_rounds(batch, num_disks=D, distinct_disks=False)
        assert all(len(r) <= D for r in plan.rounds)
        assert plan.unique_blocks == len(set(map(tuple, batch)))

    @given(batches)
    @settings(max_examples=200)
    def test_plan_matches_charged_cost_both_models(self, batch):
        """plan_rounds is the witness of batch_rounds — and of what
        read_blocks actually charges."""
        for cls in (ParallelDiskMachine, ParallelDiskHeadMachine):
            machine = cls(D, 8)
            plan = machine.plan_rounds(batch)
            assert plan.num_rounds == machine.batch_rounds(batch)
            if batch:
                machine.read_blocks(batch)
                assert machine.stats.read_ios == plan.num_rounds

    @given(batches)
    @settings(max_examples=200)
    def test_pdm_plan_is_optimal(self, batch):
        """Greedy packing achieves the max-multiplicity lower bound."""
        plan = pack_rounds(batch, num_disks=D)
        unique = set(map(tuple, batch))
        if unique:
            per_disk = Counter(disk for (disk, _b) in unique)
            assert plan.num_rounds == max(per_disk.values())

    @given(batches, st.randoms())
    @settings(max_examples=100)
    def test_schedule_is_order_independent(self, batch, rnd):
        """The plan depends on the address *set*, not iteration order."""
        shuffled = list(batch)
        rnd.shuffle(shuffled)
        assert pack_rounds(batch, num_disks=D) == pack_rounds(
            shuffled, num_disks=D
        )

    def test_salt_changes_order_not_cost(self):
        addrs = [(i % D, i // D) for i in range(3 * D)]
        a = pack_rounds(addrs, num_disks=D, salt=0)
        b = pack_rounds(addrs, num_disks=D, salt=1)
        assert a.num_rounds == b.num_rounds
        assert a != b  # different deterministic orderings

    def test_rejects_nonpositive_disks(self):
        with pytest.raises(ValueError):
            pack_rounds([(0, 0)], num_disks=0)


class TestMachineBatchSurface:
    def test_read_rounds_returns_blocks_and_plan(self, machine):
        addrs = [(d, 0) for d in range(4)]
        machine.write_blocks([(a, [("x", a)], 64) for a in addrs])
        before = machine.stats.read_ios
        blocks, plan = machine.read_rounds(addrs + addrs)
        assert plan.num_rounds == 1
        assert plan.duplicates == 4
        assert machine.stats.read_ios - before == 1
        assert set(blocks) == set(addrs)

    def test_batch_rounds_empty_is_zero(self, machine, head_machine):
        assert machine.batch_rounds([]) == 0
        assert head_machine.batch_rounds([]) == 0
