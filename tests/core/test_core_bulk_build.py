"""Tests for bulk construction of the dynamic structures."""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.interface import CapacityExceeded
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def make_basic(capacity=500, degree=16):
    machine = ParallelDiskMachine(degree, 32)
    return BasicDictionary(
        machine, universe_size=U, capacity=capacity, degree=degree, seed=7
    )


def make_dynamic(capacity=400, sigma=32, degree=16):
    machine = ParallelDiskMachine(2 * degree, 32)
    return DynamicDictionary(
        machine, universe_size=U, capacity=capacity, sigma=sigma,
        degree=degree, seed=7,
    )


def items_for(n, sigma=32, seed=0):
    rng = random.Random(seed)
    out = {}
    while len(out) < n:
        out[rng.randrange(U)] = rng.randrange(1 << sigma)
    return out


class TestBasicBulkBuild:
    def test_contents_match_incremental(self):
        items = items_for(300)
        bulk = make_basic()
        bulk.bulk_build(items)
        assert all(bulk.lookup(k).value == v for k, v in items.items())
        assert len(bulk) == 300

    def test_cheaper_than_incremental(self):
        items = items_for(400)
        bulk = make_basic()
        cost = bulk.bulk_build(items)
        # Incremental: 2 I/Os per key = 800. Bulk: one batched write.
        assert cost.total_ios < 800 / 4

    def test_identical_placement_to_sorted_inserts(self):
        """Bulk placement equals inserting the same keys in sorted order —
        the greedy rule is the same code path conceptually."""
        items = items_for(200)
        bulk = make_basic()
        bulk.bulk_build(items)
        incr = make_basic()
        for k in sorted(items):
            incr.insert(k, items[k])
        assert bulk.buckets.loads() == incr.buckets.loads()

    def test_requires_empty(self):
        d = make_basic()
        d.insert(1, None)
        with pytest.raises(ValueError):
            d.bulk_build({2: None})

    def test_capacity_check(self):
        d = make_basic(capacity=10)
        with pytest.raises(CapacityExceeded):
            d.bulk_build(items_for(11))

    def test_load_bound_still_enforced(self):
        machine = ParallelDiskMachine(8, 4)
        d = BasicDictionary(
            machine, universe_size=U, capacity=10_000, degree=8,
            stripe_size=1, seed=1,
        )
        with pytest.raises(CapacityExceeded):
            d.bulk_build(items_for(500))

    def test_updates_after_bulk(self):
        items = items_for(100)
        d = make_basic()
        d.bulk_build(items)
        key = next(iter(items))
        d.insert(key, 999)
        assert d.lookup(key).value == 999
        assert len(d) == 100
        d.delete(key)
        assert len(d) == 99


class TestDynamicBulkLoad:
    def test_roundtrip(self):
        items = items_for(300)
        d = make_dynamic()
        d.bulk_load(items)
        assert len(d) == 300
        assert all(d.lookup(k).value == v for k, v in items.items())

    def test_everything_lands_on_level_one(self):
        items = items_for(300, seed=3)
        d = make_dynamic()
        d.bulk_load(items)
        occ = d.level_occupancy()
        assert occ[0] > 0
        # The unique-neighbor assignment targets level 1 exclusively
        # (overflow would spill deeper; with sane slack there is none).
        assert sum(occ[1:]) == 0

    def test_lookups_after_bulk_are_one_io(self):
        items = items_for(200, seed=4)
        d = make_dynamic()
        d.bulk_load(items)
        costs = [d.lookup(k).cost.total_ios for k in items]
        assert max(costs) == 1  # all at level 1: speculative read wins

    def test_cheaper_than_incremental(self):
        items = items_for(300, seed=5)
        bulk = make_dynamic()
        cost = bulk.bulk_load(items)
        # Incremental: >= 2 I/Os per key.
        assert cost.total_ios < 2 * 300 / 4

    def test_updates_and_deletes_after_bulk(self):
        items = items_for(150, seed=6)
        d = make_dynamic()
        d.bulk_load(items)
        key = next(iter(items))
        d.insert(key, 123)
        assert d.lookup(key).value == 123
        d.delete(key)
        assert not d.lookup(key).found
        assert len(d) == 149
        # And new inserts still work.
        fresh = next(k for k in range(U) if k not in items)
        d.insert(fresh, 7)
        assert d.lookup(fresh).value == 7

    def test_requires_empty(self):
        d = make_dynamic()
        d.insert(1, 1)
        with pytest.raises(ValueError):
            d.bulk_load({2: 2})

    def test_capacity_check(self):
        d = make_dynamic(capacity=10)
        with pytest.raises(CapacityExceeded):
            d.bulk_load(items_for(11))
