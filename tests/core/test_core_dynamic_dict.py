"""Tests for the Theorem 7 dynamic dictionary (Section 4.3)."""

import random

import pytest

from repro.core.dynamic_dict import DynamicDictionary
from repro.core.interface import CapacityExceeded
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def make(capacity=400, sigma=32, degree=16, seed=7, **kw):
    machine = ParallelDiskMachine(2 * degree, 32, item_bits=64)
    return DynamicDictionary(
        machine,
        universe_size=U,
        capacity=capacity,
        sigma=sigma,
        degree=degree,
        seed=seed,
        **kw,
    )


def fill(d, n, seed=0):
    rng = random.Random(seed)
    ref = {}
    while len(ref) < n:
        k = rng.randrange(U)
        v = rng.randrange(1 << d.sigma)
        d.insert(k, v)
        ref[k] = v
    return ref


class TestBasics:
    def test_insert_lookup_roundtrip(self):
        d = make()
        ref = fill(d, 400)
        for k, v in ref.items():
            result = d.lookup(k)
            assert result.found and result.value == v

    def test_missing_keys(self):
        d = make()
        fill(d, 100)
        rng = random.Random(42)
        for _ in range(100):
            probe = rng.randrange(U)
            if probe not in set(d.stored_keys()):
                assert not d.lookup(probe).found

    def test_update_in_place(self):
        d = make()
        d.insert(5, 100)
        d.insert(5, 200)
        assert d.lookup(5).value == 200
        assert len(d) == 1

    def test_update_clears_old_chain(self):
        d = make(capacity=50)
        d.insert(5, 100)
        occupied_before = sum(d.level_occupancy())
        d.insert(5, 200)
        assert sum(d.level_occupancy()) == occupied_before

    def test_delete(self):
        d = make()
        ref = fill(d, 100)
        victim = next(iter(ref))
        d.delete(victim)
        assert not d.lookup(victim).found
        assert len(d) == 99

    def test_delete_frees_fields(self):
        d = make(capacity=50)
        d.insert(1, 11)
        before = sum(d.level_occupancy())
        d.insert(2, 22)
        d.delete(2)
        assert sum(d.level_occupancy()) == before

    def test_delete_missing_noop(self):
        d = make()
        cost = d.delete(3)
        assert cost.write_ios == 0

    def test_value_validation(self):
        d = make(sigma=8)
        with pytest.raises(ValueError):
            d.insert(1, 256)
        with pytest.raises(ValueError):
            d.insert(1, None)

    def test_sigma_zero_rejected(self):
        with pytest.raises(ValueError):
            make(sigma=0)

    def test_capacity_enforced(self):
        d = make(capacity=10)
        fill(d, 10)
        with pytest.raises(CapacityExceeded):
            d.insert(U - 1, 1)


class TestTheorem7Costs:
    """unsuccessful 1 I/O; successful 1+eps avg; updates 2+eps avg."""

    def test_unsuccessful_search_is_one_io(self):
        d = make()
        ref = fill(d, 400)
        rng = random.Random(3)
        for _ in range(200):
            probe = rng.randrange(U)
            if probe in ref:
                continue
            result = d.lookup(probe)
            assert not result.found
            assert result.cost.total_ios == 1

    def test_successful_search_average(self):
        d = make()
        ref = fill(d, 400)
        costs = [d.lookup(k).cost.total_ios for k in ref]
        avg = sum(costs) / len(costs)
        assert avg <= 1.25  # 1 + eps with eps well under 1/4

    def test_insert_average(self):
        d = make()
        fill(d, 400)
        assert d.stats.avg_insert_ios <= 2.25

    def test_worst_case_is_logarithmic_not_linear(self):
        d = make()
        ref = fill(d, 400)
        worst = max(d.lookup(k).cost.total_ios for k in ref)
        assert worst <= 2 + d.num_levels  # O(log n), nowhere near n

    def test_level_histogram_geometric(self):
        d = make()
        fill(d, 400)
        hist = d.stats.level_histogram
        assert hist.get(0, 0) >= 0.7 * 400  # most keys at level 1
        assert sum(hist.values()) == d.stats.inserts


class TestLevels:
    def test_level_sizes_shrink_geometrically(self):
        d = make(capacity=1000)
        sizes = [arr.stripe_size for arr in d.levels]
        for a, b in zip(sizes, sizes[1:]):
            assert b <= max(a * d.ratio + 1, d.levels[-1].stripe_size)

    def test_each_level_has_distinct_expander(self):
        d = make()
        x = 12345
        neighbor_sets = [g.striped_neighbors(x) for g in d.level_graphs]
        assert len({tuple(ns) for ns in neighbor_sets}) > 1

    def test_first_fit_fills_level_one_first(self):
        d = make(capacity=100)
        fill(d, 50)
        occ = d.level_occupancy()
        assert occ[0] > 0
        assert sum(occ[1:]) <= occ[0]

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            make(ratio=1.5)


class TestInterleavedWorkload:
    def test_mixed_ops_match_reference(self):
        d = make(capacity=300)
        rng = random.Random(8)
        model = {}
        for step in range(900):
            op = rng.random()
            key = rng.randrange(U)
            if op < 0.55 and len(model) < 300:
                value = rng.randrange(1 << 32)
                d.insert(key, value)
                model[key] = value
            elif op < 0.75 and model:
                victim = rng.choice(list(model))
                d.delete(victim)
                del model[victim]
            else:
                result = d.lookup(key)
                assert result.found == (key in model)
                if result.found:
                    assert result.value == model[key]
        assert len(d) == len(model)
        for k, v in model.items():
            assert d.lookup(k).value == v
