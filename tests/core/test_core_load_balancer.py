"""Tests for the Section 3 deterministic load balancing scheme (Lemma 3)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load_balancer import (
    DChoiceLoadBalancer,
    lemma3_bound,
)
from repro.expanders.random_graph import SeededRandomExpander


def make_graph(u=1 << 14, d=12, stripe=512, seed=0):
    return SeededRandomExpander(
        left_size=u, degree=d, stripe_size=stripe, seed=seed
    )


class TestLemma3Bound:
    def test_formula(self):
        # mu + log_{(1-eps)d/k}(v)
        got = lemma3_bound(n=100, v=200, k=1, d=12, eps=1 / 12, delta=0.5)
        expected = 100 / (0.5 * 200) + math.log(200, 11)
        assert got == pytest.approx(expected)

    def test_requires_expansion_beats_k(self):
        with pytest.raises(ValueError):
            lemma3_bound(n=10, v=10, k=12, d=12, eps=1 / 12, delta=0.5)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            lemma3_bound(n=-1, v=10, k=1, d=4, eps=0.3, delta=0.5)


class TestScheme:
    def test_items_placed_on_neighbors_only(self):
        g = make_graph()
        lb = DChoiceLoadBalancer(g, k=3)
        for x in range(50):
            chosen = lb.place(x)
            assert len(chosen) == 3
            assert set(chosen) <= set(g.neighbors(x))

    def test_load_conservation(self):
        g = make_graph()
        lb = DChoiceLoadBalancer(g, k=2)
        lb.place_all(range(200))
        assert int(lb.loads.sum()) == 400
        assert lb.items_placed == 400

    def test_replacing_vertex_rejected(self):
        lb = DChoiceLoadBalancer(make_graph(), k=1)
        lb.place(5)
        with pytest.raises(ValueError):
            lb.place(5)

    def test_k_must_be_below_degree(self):
        with pytest.raises(ValueError):
            DChoiceLoadBalancer(make_graph(d=4, stripe=16), k=4)

    def test_deterministic(self):
        a = DChoiceLoadBalancer(make_graph(seed=5), k=2)
        b = DChoiceLoadBalancer(make_graph(seed=5), k=2)
        xs = list(range(300))
        a.place_all(xs)
        b.place_all(xs)
        assert (a.loads == b.loads).all()
        assert a.placements == b.placements

    def test_greedy_prefers_lighter_bucket(self):
        """After placing, no item sits in a bucket that was strictly heavier
        than a sibling choice at placement time.  Spot-check: the first
        vertex lands on loads of zero everywhere."""
        lb = DChoiceLoadBalancer(make_graph(), k=1)
        (b,) = lb.place(0)
        assert lb.loads[b] == 1
        assert lb.max_load == 1

    def test_histogram_sums_to_buckets(self):
        g = make_graph(d=8, stripe=64)
        lb = DChoiceLoadBalancer(g, k=1)
        lb.place_all(range(100))
        hist = lb.load_histogram()
        assert sum(hist.values()) == g.right_size
        assert sum(load * cnt for load, cnt in hist.items()) == 100


class TestLemma3Holds:
    """The headline guarantee, measured."""

    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_max_load_within_bound(self, k):
        d, stripe = 12, 256
        g = make_graph(u=1 << 14, d=d, stripe=stripe, seed=k)
        lb = DChoiceLoadBalancer(g, k=k)
        n = 2000
        xs = random.Random(k).sample(range(g.left_size), n)
        lb.place_all(xs)
        bound = lemma3_bound(
            n=n, v=g.right_size, k=k, d=d, eps=1 / 12, delta=0.5
        )
        assert lb.max_load <= bound

    def test_heavily_loaded_case(self):
        """n >> v: deviation from the average stays additive O(log v) —
        the deterministic analogue of Berenbrink et al. [3]."""
        g = make_graph(u=1 << 14, d=12, stripe=32, seed=9)
        lb = DChoiceLoadBalancer(g, k=1)
        n = 6000
        lb.place_all(random.Random(1).sample(range(g.left_size), n))
        avg = n / g.right_size
        assert lb.max_load <= avg + math.log2(g.right_size) + 1

    def test_adversarial_insertion_order_irrelevant_to_bound(self):
        """Sorted, reversed and interleaved orders all respect the bound
        (the scheme is on-line; Lemma 3 holds for any order)."""
        d, stripe, n = 12, 128, 1200
        base = random.Random(3).sample(range(1 << 14), n)
        orders = [sorted(base), sorted(base, reverse=True), base]
        maxima = []
        for idx, order in enumerate(orders):
            g = make_graph(u=1 << 14, d=d, stripe=stripe, seed=77)
            lb = DChoiceLoadBalancer(g, k=1)
            lb.place_all(order)
            maxima.append(lb.max_load)
        bound = lemma3_bound(
            n=n, v=d * stripe, k=1, d=d, eps=1 / 12, delta=0.5
        )
        assert all(m <= bound for m in maxima)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(1, 400),
    k=st.integers(1, 3),
    seed=st.integers(0, 100),
)
def test_property_load_sum_and_bound(n, k, seed):
    g = make_graph(u=1 << 12, d=10, stripe=128, seed=seed)
    lb = DChoiceLoadBalancer(g, k=k)
    xs = random.Random(seed).sample(range(g.left_size), n)
    report = lb.place_all(xs)
    assert int(lb.loads.sum()) == k * n
    assert report.max_load <= lemma3_bound(
        n=n, v=g.right_size, k=k, d=10, eps=1 / 12, delta=0.5
    )
