"""Batch/sequential equivalence: a batch is the same answers, cheaper.

For every dictionary variant, ``batch_lookup(keys)`` must agree with the
sequential ``lookup(k)`` results key by key — on a healthy machine
(identical found/value) and under seeded fault plans (the same keys
degrade, with the same typed error and the same preserved ``membership``
knowledge).  Mutating batches must leave the structure in the state the
sequential ops would have produced.  Fault plans use permanent outages
(``FaultPlan.kill_disks``) because transient windows live on the I/O
clock, which batching legitimately compresses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.interface import DegradedLookupError, LookupResult
from repro.core.static_dict import StaticDictionary, fault_tolerance
from repro.faults.plan import FaultPlan
from repro.pdm.faults import attach_faults
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16


def _items(n, *, stride=97, sigma=16):
    return {(7 + i * stride) % U: (i * 31) % (1 << sigma) for i in range(n)}


def _build_basic(num_disks=8, capacity=128, n=48, cache_blocks=None):
    machine = ParallelDiskMachine(num_disks, 16, cache_blocks=cache_blocks)
    d = BasicDictionary(
        machine, universe_size=U, capacity=capacity, degree=num_disks, seed=5
    )
    items = {k: f"v{k}" for k in sorted(_items(n))}
    for k, v in items.items():
        d.upsert(k, v)
    return machine, d, items


def _build_dynamic(num_disks=32, capacity=64, n=32, cache_blocks=None):
    machine = ParallelDiskMachine(num_disks, 32, cache_blocks=cache_blocks)
    d = DynamicDictionary(
        machine, universe_size=U, capacity=capacity, sigma=16, seed=9
    )
    items = _items(n)
    for k, v in sorted(items.items()):
        d.insert(k, v)
    return machine, d, items


def _build_static(num_disks=8, n=32, redundancy="replicate", case="b"):
    machine = ParallelDiskMachine(num_disks, 16)
    items = _items(n)
    sd = StaticDictionary.build(
        machine,
        items,
        universe_size=U,
        sigma=16,
        case=case,
        redundancy=redundancy,
        seed=3,
    )
    return machine, sd, items


def _assert_same_outcome(key, batch_res, seq_outcome):
    """Batch per-key outcome vs sequential result-or-raised-exception."""
    if isinstance(seq_outcome, Exception):
        assert isinstance(batch_res, Exception), (
            f"key {key}: sequential raised {type(seq_outcome).__name__}, "
            f"batch returned {batch_res!r}"
        )
        assert type(batch_res) is type(seq_outcome)
        if isinstance(seq_outcome, DegradedLookupError):
            assert batch_res.membership == seq_outcome.membership
    else:
        assert isinstance(batch_res, LookupResult), (
            f"key {key}: sequential answered, batch errored {batch_res!r}"
        )
        assert batch_res.found == seq_outcome.found
        assert batch_res.value == seq_outcome.value


def _sequential_lookup(d, key):
    try:
        return d.lookup(key)
    except Exception as exc:  # typed degraded errors are outcomes here
        return exc


# -- healthy equivalence (property-based) -------------------------------------


class TestHealthyLookupEquivalence:
    @given(st.lists(st.integers(0, U - 1), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_basic(self, probes):
        machine, d, items = _build_basic()
        probes = probes + list(items)[:5]  # always mix in some hits
        outcomes, _cost = d.batch_lookup(probes)
        assert set(outcomes) == set(probes)
        for key in set(probes):
            _assert_same_outcome(key, outcomes[key], d.lookup(key))

    @given(st.lists(st.integers(0, U - 1), max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_dynamic(self, probes):
        machine, d, items = _build_dynamic()
        probes = probes + list(items)[:5]
        outcomes, _cost = d.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, outcomes[key], d.lookup(key))

    @pytest.mark.parametrize(
        "case,redundancy", [("b", "replicate"), ("b", "standard"), ("a", "standard")]
    )
    def test_static_all_layouts(self, case, redundancy):
        machine, sd, items = _build_static(case=case, redundancy=redundancy)
        probes = sorted(items) + [k + 1 for k in sorted(items)[:10]]
        outcomes, _cost = sd.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, outcomes[key], sd.lookup(key))

    def test_batch_is_cheaper_than_sequential(self):
        machine, d, items = _build_basic()
        keys = sorted(items)
        seq = sum(d.lookup(k).cost.total_ios for k in keys)
        _, cost = d.batch_lookup(keys)
        assert cost.total_ios < seq


# -- degraded equivalence (seeded fault plans) --------------------------------


class TestDegradedLookupEquivalence:
    def test_basic_per_key_errors_match(self):
        machine, d, items = _build_basic()
        attach_faults(
            machine,
            FaultPlan.kill_disks([0, 1], num_disks=machine.num_disks).events,
        )
        probes = sorted(items) + [k + 1 for k in sorted(items)[:8]]
        seq = {k: _sequential_lookup(d, k) for k in set(probes)}
        outcomes, _cost = d.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, outcomes[key], seq[key])
        # The plan must actually bite: at least one key degrades.
        assert any(isinstance(r, Exception) for r in outcomes.values())

    def test_static_replicate_within_tolerance_no_errors(self):
        machine, sd, items = _build_static(redundancy="replicate")
        tol = fault_tolerance(sd.degree)
        key = sorted(items)[0]
        doomed = sorted(sd.assignment[key])[:tol]
        attach_faults(
            machine,
            FaultPlan.kill_disks(doomed, num_disks=machine.num_disks).events,
        )
        probes = sorted(items)
        seq = {k: _sequential_lookup(sd, k) for k in probes}
        outcomes, _cost = sd.batch_lookup(probes)
        for k in probes:
            _assert_same_outcome(k, outcomes[k], seq[k])
            assert isinstance(outcomes[k], LookupResult)  # within tolerance

    def test_static_standard_membership_survives_value_loss(self):
        machine, sd, items = _build_static(redundancy="standard")
        attach_faults(
            machine,
            FaultPlan.kill_disks([2], num_disks=machine.num_disks).events,
        )
        probes = sorted(items)
        seq = {k: _sequential_lookup(sd, k) for k in probes}
        outcomes, _cost = sd.batch_lookup(probes)
        for k in probes:
            _assert_same_outcome(k, outcomes[k], seq[k])
        degraded = [
            k for k, r in outcomes.items() if isinstance(r, Exception)
        ]
        assert degraded, "killing a stripe must cost some values"
        assert all(outcomes[k].membership is True for k in degraded)

    def test_dynamic_per_key_errors_match(self):
        machine, d, items = _build_dynamic()
        # Kill one retrieval disk of level 0: chains crossing it degrade,
        # the rest answer normally — identically in both paths.
        dead = d.levels[0].disk_offset
        attach_faults(
            machine, FaultPlan.kill_disks([dead], num_disks=32).events
        )
        probes = sorted(items) + [k + 1 for k in sorted(items)[:8]]
        seq = {k: _sequential_lookup(d, k) for k in set(probes)}
        outcomes, _cost = d.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, outcomes[key], seq[key])

    def test_batch_never_fails_wholesale(self):
        machine, d, items = _build_basic()
        attach_faults(
            machine,
            FaultPlan.kill_disks([0, 1, 2], num_disks=machine.num_disks).events,
        )
        outcomes, _cost = d.batch_lookup(sorted(items))
        # Typed per-key outcomes — some degraded, but the call returned.
        assert len(outcomes) == len(items)
        assert any(isinstance(r, Exception) for r in outcomes.values())


# -- cached equivalence (buffer pool attached) ---------------------------------


class TestCachedEquivalence:
    """A machine with a buffer pool must give the same *answers* as an
    uncached one — batched and sequential — while charging no more rounds.
    A tiny pool keeps evictions and write-backs constantly in play."""

    @given(st.lists(st.integers(0, U - 1), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_basic_cached_matches_uncached(self, probes):
        _, plain, items = _build_basic()
        cmachine, cached, _ = _build_basic(cache_blocks=8)
        probes = probes + list(items)[:5]
        plain_out, plain_cost = plain.batch_lookup(probes)
        cached_out, cached_cost = cached.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, cached_out[key], plain_out[key])
            _assert_same_outcome(key, cached_out[key], cached.lookup(key))
        # Hits make read rounds only cheaper; write rounds may appear in
        # the cached window (write-back deferring the build's writes).
        assert cached_cost.read_ios <= plain_cost.read_ios
        assert cmachine.cache is not None and len(cmachine.cache) <= 8

    def test_dynamic_cached_matches_uncached(self):
        _, plain, items = _build_dynamic()
        _, cached, _ = _build_dynamic(cache_blocks=8)
        probes = sorted(items) + [k + 1 for k in sorted(items)[:8]]
        plain_out, _ = plain.batch_lookup(probes)
        cached_out, _ = cached.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, cached_out[key], plain_out[key])

    def test_cached_mutations_reach_same_state(self):
        _, a, _ = _build_basic(n=0, cache_blocks=8)
        _, b, _ = _build_basic(n=0)
        items = {k: f"v{k}" for k in sorted(_items(30))}
        deletes = list(items)[10:20]
        a.batch_insert(items)
        a.batch_delete(deletes)
        b.batch_insert(items)
        b.batch_delete(deletes)
        assert len(a) == len(b)
        for k in items:
            ra, rb = a.lookup(k), b.lookup(k)
            assert ra.found == rb.found
            assert ra.value == rb.value

    def test_cached_degraded_outcomes_match(self):
        machine_p, plain, items = _build_basic()
        machine_c, cached, _ = _build_basic(cache_blocks=8)
        plan = FaultPlan.kill_disks([0, 1], num_disks=machine_p.num_disks)
        attach_faults(machine_p, plan.events)
        attach_faults(machine_c, plan.events)
        probes = sorted(items) + [k + 1 for k in sorted(items)[:8]]
        plain_out, _ = plain.batch_lookup(probes)
        cached_out, _ = cached.batch_lookup(probes)
        for key in set(probes):
            _assert_same_outcome(key, cached_out[key], plain_out[key])
        assert any(isinstance(r, Exception) for r in cached_out.values())


# -- mutation equivalence ------------------------------------------------------


class TestMutationEquivalence:
    def test_basic_batch_state_equals_sequential(self):
        machine_a, a, _ = _build_basic(n=0)
        machine_b, b, _ = _build_basic(n=0)
        items = {k: f"v{k}" for k in sorted(_items(30))}
        updates = {k: f"w{k}" for k in list(items)[:10]}
        deletes = list(items)[10:20]

        outcomes, _cost = a.batch_insert(items)
        assert all(not isinstance(r, Exception) for r in outcomes.values())
        out2, _cost = a.batch_insert(updates)
        assert all(r[0] for r in out2.values())  # all were present
        out3, _cost = a.batch_delete(deletes)
        assert all(r is True for r in out3.values())

        for k, v in items.items():
            b.upsert(k, v)
        for k, v in updates.items():
            b.upsert(k, v)
        for k in deletes:
            b.delete(k)

        assert len(a) == len(b)
        reference = {**items, **updates}
        for k in deletes:
            reference.pop(k)
        for k in items:
            ra, rb = a.lookup(k), b.lookup(k)
            assert ra.found == rb.found == (k in reference)
            if ra.found:
                assert ra.value == rb.value == reference[k]

    def test_dynamic_batch_state_equals_sequential(self):
        machine_a, a, _ = _build_dynamic(n=0)
        machine_b, b, _ = _build_dynamic(n=0)
        items = _items(28)
        updates = {k: (v + 1) % (1 << 16) for k, v in list(items.items())[:9]}
        deletes = list(items)[9:18]

        assert all(
            not isinstance(r, Exception)
            for r in a.batch_insert(items)[0].values()
        )
        assert all(r[0] for r in a.batch_insert(updates)[0].values())
        assert all(r is True for r in a.batch_delete(deletes)[0].values())

        for k, v in sorted(items.items()):
            b.insert(k, v)
        for k, v in updates.items():
            b.insert(k, v)
        for k in deletes:
            b.delete(k)

        assert len(a) == len(b)
        assert set(a.stored_keys()) == set(b.stored_keys())
        for k in a.stored_keys():
            assert a.lookup(k).value == b.lookup(k).value

    def test_basic_duplicate_keys_last_value_wins(self):
        machine, d, _ = _build_basic(n=0)
        outcomes, _cost = d.batch_insert({10: "first"})
        outcomes, _cost = d.batch_insert(
            dict([(10, "second"), (10, "third")])
        )
        assert d.lookup(10).value == "third"
        assert len(d) == 1

    def test_basic_degraded_refuses_mutations_per_key(self):
        machine, d, items = _build_basic()
        attach_faults(
            machine,
            FaultPlan.kill_disks([0], num_disks=machine.num_disks).events,
        )
        size_before = len(d)
        outcomes, _cost = d.batch_insert({k: "x" for k in sorted(items)[:10]})
        # degree == num_disks: every key has a candidate bucket on the dead
        # disk, so every mutation is refused upfront — and state unchanged.
        assert all(isinstance(r, Exception) for r in outcomes.values())
        assert len(d) == size_before

    def test_capacity_errors_are_per_key(self):
        machine, d, _ = _build_basic(capacity=4, n=0)
        outcomes, _cost = d.batch_insert({k: "v" for k in range(10, 90, 10)})
        ok = [k for k, r in outcomes.items() if not isinstance(r, Exception)]
        errs = [k for k, r in outcomes.items() if isinstance(r, Exception)]
        assert len(ok) == 4 and len(errs) == 4
        assert len(d) == 4
        for k in ok:
            assert d.lookup(k).found
