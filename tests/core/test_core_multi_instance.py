"""Tests for the parallel-instances wrapper (Section 4 observations)."""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.multi_instance import MultiInstanceDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16


def factory(i):
    machine = ParallelDiskMachine(16, 32, item_bits=64)
    return BasicDictionary(
        machine, universe_size=U, capacity=200, degree=16, seed=50 + i
    )


def make(c=4):
    return MultiInstanceDictionary(factory, instances=c)


class TestBatchInsert:
    def test_batch_costs_one_insert(self):
        """The headline: c insertions in the parallel I/Os of ONE insert."""
        d = make(4)
        cost = d.insert_batch([(1, "a"), (2, "b"), (3, "c"), (4, "d")])
        assert cost.read_ios == 1
        assert cost.write_ios == 1
        assert len(d) == 4

    def test_batch_contents_retrievable(self):
        d = make(4)
        d.insert_batch([(k, k * 10) for k in range(4)])
        for k in range(4):
            assert d.lookup(k).value == k * 10

    def test_oversized_batch_rejected(self):
        d = make(2)
        with pytest.raises(ValueError):
            d.insert_batch([(1, None), (2, None), (3, None)])

    def test_duplicate_keys_in_batch_rejected(self):
        d = make(3)
        with pytest.raises(ValueError):
            d.insert_batch([(1, "a"), (1, "b")])

    def test_stale_key_in_batch_rejected(self):
        d = make(3)
        d.insert(5, "x")
        with pytest.raises(ValueError):
            d.insert_batch([(5, "y")])

    def test_load_spreads_across_instances(self):
        d = make(4)
        for base in range(0, 200, 4):
            d.insert_batch([(base + j, None) for j in range(4)])
        sizes = [len(inst) for inst in d.instances]
        assert max(sizes) - min(sizes) <= 1


class TestLookupAndUpsert:
    def test_lookup_cost_matches_single_instance(self):
        d = make(4)
        d.insert_batch([(k, k) for k in range(4)])
        cost = d.lookup(2).cost
        assert cost.read_ios == 1  # parallel over instances

    def test_miss(self):
        d = make(3)
        assert not d.lookup(99).found

    def test_upsert_routes_to_owner(self):
        d = make(3)
        d.insert(7, "old")
        d.insert(7, "new")
        assert d.lookup(7).value == "new"
        assert len(d) == 1
        copies = sum(1 for inst in d.instances if inst.contains(7))
        assert copies == 1

    def test_delete_fans_out(self):
        d = make(3)
        d.insert_batch([(k, None) for k in range(3)])
        cost = d.delete(1)
        assert cost.read_ios == 1  # parallel
        assert not d.lookup(1).found
        assert len(d) == 2

    def test_reinsert_after_delete_allowed_in_batch(self):
        d = make(2)
        d.insert(1, "a")
        d.delete(1)
        d.insert_batch([(1, "b")])
        assert d.lookup(1).value == "b"


class TestModelConformance:
    def test_mixed_workload(self):
        d = make(4)
        model = {}
        rng = random.Random(0)
        for _ in range(80):
            op = rng.random()
            if op < 0.5:
                batch = []
                for _ in range(rng.randint(1, 4)):
                    k = rng.randrange(500)
                    if k not in model and all(k != b[0] for b in batch):
                        batch.append((k, rng.randrange(100)))
                if batch:
                    d.insert_batch(batch)
                    model.update(dict(batch))
            elif op < 0.75 and model:
                k = rng.choice(list(model))
                d.delete(k)
                del model[k]
            else:
                k = rng.randrange(500)
                result = d.lookup(k)
                assert result.found == (k in model)
                if result.found:
                    assert result.value == model[k]
        assert len(d) == len(model)
        assert set(d.stored_keys()) == set(model)

    def test_instance_count_validation(self):
        with pytest.raises(ValueError):
            MultiInstanceDictionary(factory, instances=0)
