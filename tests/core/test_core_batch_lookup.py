"""Tests for batched lookups on the §4.1 dictionary."""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def make(capacity=400, degree=16):
    machine = ParallelDiskMachine(degree, 32)
    return BasicDictionary(
        machine, universe_size=U, capacity=capacity, degree=degree, seed=5
    )


class TestLookupBatch:
    def test_results_match_single_lookups(self):
        d = make()
        rng = random.Random(0)
        ref = {}
        while len(ref) < 300:
            k, v = rng.randrange(U), rng.randrange(100)
            d.insert(k, v)
            ref[k] = v
        probes = list(ref)[:50] + [k for k in range(100) if k not in ref][:50]
        results, _cost = d.lookup_batch(probes)
        for key in probes:
            single = d.lookup(key)
            assert results[key].found == single.found
            assert results[key].value == single.value

    def test_distinct_keys_cost_at_most_one_round_each(self):
        d = make()
        keys = random.Random(1).sample(range(U), 200)
        for k in keys:
            d.insert(k, None)
        batch = keys[:32]
        _, cost = d.lookup_batch(batch)
        assert cost.read_ios <= len(batch)
        assert cost.write_ios == 0

    def test_repeated_key_costs_one_round(self):
        d = make()
        d.insert(7, "x")
        _, cost = d.lookup_batch([7] * 50)
        assert cost.read_ios == 1

    def test_skewed_batch_dedupes(self):
        """Zipf-ish repetition: far fewer rounds than batch size."""
        d = make()
        keys = random.Random(2).sample(range(U), 20)
        for k in keys:
            d.insert(k, None)
        skewed = [keys[i % 5] for i in range(100)]  # 5 hot keys, 100 probes
        _, cost = d.lookup_batch(skewed)
        assert cost.read_ios <= 5

    def test_empty_batch(self):
        d = make()
        results, cost = d.lookup_batch([])
        assert results == {}
        assert cost.total_ios == 0

    def test_key_validation(self):
        d = make()
        with pytest.raises(KeyError):
            d.lookup_batch([U])

    def test_batch_with_fragmented_values(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=50, degree=16,
            k_fragments=4, seed=3,
        )
        d.insert(1, "abcdefgh")
        d.insert(2, "ijklmnop")
        results, _ = d.lookup_batch([1, 2, 3])
        assert results[1].value == "abcdefgh"
        assert results[2].value == "ijklmnop"
        assert not results[3].found
