"""Tests for the Section 6 recursive full-bandwidth structure."""

import random

import pytest

from repro.core.interface import CapacityExceeded
from repro.core.recursive_dict import RecursiveLoadBalancedDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def make(capacity=300, sigma=120, degree=16, levels=2, seed=3, **kw):
    machine = ParallelDiskMachine((levels + 1) * degree, 32)
    return RecursiveLoadBalancedDictionary(
        machine,
        universe_size=U,
        capacity=capacity,
        sigma=sigma,
        degree=degree,
        levels=levels,
        seed=seed,
        **kw,
    )


def fill(d, n, seed=0):
    rng = random.Random(seed)
    ref = {}
    while len(ref) < n:
        k = rng.randrange(U)
        v = rng.randrange(1 << d.sigma)
        d.insert(k, v)
        ref[k] = v
    return ref


class TestOneIOLookups:
    def test_every_lookup_is_one_io(self):
        """The open problem's target: 1 parallel I/O worst case, hits and
        misses, at full record bandwidth."""
        d = make()
        ref = fill(d, 300)
        assert all(
            d.lookup(k).cost.total_ios == 1 for k in list(ref)[:100]
        )
        rng = random.Random(9)
        for _ in range(100):
            probe = rng.randrange(U)
            if probe not in ref:
                assert d.lookup(probe).cost.total_ios == 1

    def test_roundtrip(self):
        d = make()
        ref = fill(d, 300)
        assert all(d.lookup(k).value == v for k, v in ref.items())

    def test_wide_records(self):
        d = make(capacity=60, sigma=900)
        ref = fill(d, 60, seed=2)
        assert all(d.lookup(k).value == v for k, v in ref.items())
        assert all(d.lookup(k).cost.total_ios == 1 for k in ref)


class TestUpdatesAndDeletes:
    def test_update_in_place(self):
        d = make()
        d.insert(5, 111)
        d.insert(5, 222)
        assert d.lookup(5).value == 222
        assert len(d) == 1

    def test_update_leaves_no_ghost_fragments(self):
        d = make(capacity=50)
        d.insert(5, 111)
        occupied = sum(
            sum(s.loads().values()) for s in d.levels_store
        )
        d.insert(5, 222)
        assert sum(
            sum(s.loads().values()) for s in d.levels_store
        ) == occupied

    def test_delete(self):
        d = make()
        ref = fill(d, 100)
        victim = next(iter(ref))
        d.delete(victim)
        assert not d.lookup(victim).found
        assert len(d) == 99

    def test_delete_missing_noop(self):
        d = make()
        cost = d.delete(3)
        assert cost.write_ios == 0


class TestSpillBehaviour:
    def test_tight_levels_spill_to_brute_force(self):
        d = make(capacity=400, stripe_slack=0.25, levels=2)
        fill(d, 400, seed=5)
        assert d.stats.spill_fraction > 0
        # Everything still correct, still one probe.
        keys = list(d.stored_keys())
        assert all(d.lookup(k).cost.total_ios == 1 for k in keys[:50])

    def test_brute_force_overflow_is_loud(self):
        d = make(capacity=5000, stripe_slack=0.02, levels=1, degree=8)
        with pytest.raises(CapacityExceeded):
            fill(d, 5000, seed=6)

    def test_level_histogram_accounts_everything(self):
        d = make()
        fill(d, 200, seed=7)
        placed = sum(d.stats.level_histogram.values())
        assert placed + d.stats.brute_inserts == d.stats.inserts


class TestGeometry:
    def test_disk_budget(self):
        d = make(levels=3, degree=8)
        assert d.disks_used == 4 * 8

    def test_k_is_two_thirds_d(self):
        d = make(degree=18)
        assert d.k == 12

    def test_capacity_enforced(self):
        d = make(capacity=5)
        fill(d, 5)
        with pytest.raises(CapacityExceeded):
            d.insert(U - 1, 0)

    def test_parameter_validation(self):
        machine = ParallelDiskMachine(8, 32)
        with pytest.raises(ValueError):
            RecursiveLoadBalancedDictionary(
                machine, universe_size=U, capacity=10, sigma=8,
                degree=16, levels=2,
            )
        with pytest.raises(ValueError):
            make(levels=0)


class TestReferenceModel:
    def test_mixed_ops(self):
        d = make(capacity=120)
        model = {}
        rng = random.Random(11)
        for _ in range(400):
            op = rng.random()
            key = rng.randrange(U)
            if op < 0.5 and (key in model or len(model) < 120):
                value = rng.randrange(1 << d.sigma)
                d.insert(key, value)
                model[key] = value
            elif op < 0.7 and model:
                victim = rng.choice(list(model))
                d.delete(victim)
                del model[victim]
            else:
                result = d.lookup(key)
                assert result.found == (key in model)
                if result.found:
                    assert result.value == model[key]
        assert len(d) == len(model)
