"""Tests for pointer-indirected satellite storage."""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.interface import CapacityExceeded
from repro.core.pointer_store import PointerStore
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16


def make(capacity=64, degree=16, B=32):
    index = BasicDictionary(
        ParallelDiskMachine(degree, B),
        universe_size=U,
        capacity=capacity,
        degree=degree,
        seed=9,
    )
    return PointerStore(
        index, ParallelDiskMachine(degree, B), capacity=capacity
    )


class TestPointerStore:
    def test_roundtrip_full_superblock(self):
        store = make()
        payload = list(range(store.payload_capacity_items))
        store.insert(5, payload)
        result = store.lookup(5)
        assert result.found and result.value == payload

    def test_lookup_costs_index_plus_one(self):
        store = make()
        store.insert(5, ["a", "b"])
        result = store.lookup(5)
        # 1 (index, one-probe) + 1 (payload superblock).
        assert result.cost.read_ios == 2

    def test_pointer_only_lookup_is_native_cost(self):
        store = make()
        store.insert(5, ["a"])
        assert store.lookup_pointer(5).cost.read_ios == 1

    def test_miss_costs_index_only(self):
        store = make()
        result = store.lookup(7)
        assert not result.found
        assert result.cost.read_ios == 1

    def test_update_reuses_slot(self):
        store = make()
        store.insert(5, ["old"])
        slot_before = store.lookup_pointer(5).value
        store.insert(5, ["new", "payload"])
        assert store.lookup_pointer(5).value == slot_before
        assert store.lookup(5).value == ["new", "payload"]
        assert len(store) == 1

    def test_delete_recycles_slot(self):
        store = make(capacity=2)
        store.insert(1, ["a"])
        store.insert(2, ["b"])
        store.delete(1)
        store.insert(3, ["c"])  # must reuse the freed slot
        assert store.lookup(3).value == ["c"]
        assert not store.lookup(1).found

    def test_capacity_exhaustion(self):
        store = make(capacity=2)
        store.insert(1, ["a"])
        store.insert(2, ["b"])
        with pytest.raises(CapacityExceeded):
            store.insert(3, ["c"])

    def test_payload_too_large_rejected(self):
        store = make()
        with pytest.raises(ValueError):
            store.insert(1, list(range(store.payload_capacity_items + 1)))

    def test_many_records(self):
        store = make(capacity=64)
        rng = random.Random(1)
        ref = {}
        while len(ref) < 64:
            k = rng.randrange(U)
            v = [rng.randrange(100) for _ in range(rng.randrange(1, 20))]
            store.insert(k, v)
            ref[k] = v
        assert all(store.lookup(k).value == v for k, v in ref.items())
        assert set(store.stored_keys()) == set(ref)

    def test_bandwidth_is_full_bd(self):
        store = make(degree=16, B=32)
        assert store.payload_capacity_items == 16 * 32
