"""Bit-level layout checks of the Theorem 6 field encodings.

These tests pin the on-disk formats by decoding raw field contents by
hand, independent of the library's own decoders — so any change to the
layout (the identifiers of case (b), the unary chains of case (a)) breaks
loudly here rather than silently elsewhere.
"""

import math
import random

import pytest

from repro.bits.bitvector import BitReader
from repro.core.static_dict import StaticDictionary, fields_needed
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def build(case, items, sigma, degree=16, seed=4):
    disks = degree * (2 if case == "a" else 1)
    machine = ParallelDiskMachine(disks, 32)
    return StaticDictionary.build(
        machine, items, universe_size=U, sigma=sigma, case=case,
        degree=degree, seed=seed,
    )


class TestCaseBLayout:
    def test_field_holds_identifier_and_fragment(self):
        rng = random.Random(1)
        items = {rng.randrange(U): rng.randrange(1 << 24) for _ in range(50)}
        d = build("b", items, sigma=24)
        keys_sorted = sorted(items)
        m = fields_needed(d.degree)
        frag_w = math.ceil(24 / m)
        for key in keys_sorted[:10]:
            ident = keys_sorted.index(key)
            stripes = d.assignment[key]
            idx = dict(d.graph.striped_neighbors(key))
            # Manually reassemble the record from raw fields.
            record_bits = ""
            for stripe in stripes:
                field = d.array.peek((stripe, idx[stripe]))
                assert field is not None
                stored_ident, frag = field
                assert stored_ident == ident
                assert len(frag) <= frag_w
                record_bits += frag.to01()
            assert int(record_bits[:24], 2) == items[key]

    def test_exactly_m_fields_per_key(self):
        rng = random.Random(2)
        items = {rng.randrange(U): 0 for _ in range(60)}
        d = build("b", items, sigma=8)
        m = fields_needed(d.degree)
        assert d.array.occupied_fields() == m * len(items)

    def test_unassigned_fields_stay_none(self):
        items = {5: 1, 900: 2}
        d = build("b", items, sigma=8)
        m = fields_needed(d.degree)
        assert d.array.occupied_fields() == 2 * m


class TestCaseALayout:
    def test_chain_walk_by_hand(self):
        """Walk a stored chain with a hand-rolled unary parser and recover
        the record, byte for byte."""
        rng = random.Random(3)
        items = {rng.randrange(U): rng.randrange(1 << 40) for _ in range(40)}
        sigma = 40
        d = build("a", items, sigma=sigma)
        for key in list(items)[:10]:
            head = d.membership.lookup(key).value
            idx = dict(d.graph.striped_neighbors(key))
            stripe = head
            data_bits = ""
            hops = 0
            while True:
                field = d.array.peek((stripe, idx[stripe]))
                reader = BitReader(field)
                delta = 0
                while reader.read_bit():
                    delta += 1
                data_bits += reader.read_rest().to01()
                hops += 1
                if delta == 0:
                    break
                stripe += delta
            assert hops == fields_needed(d.degree)
            assert int(data_bits[:sigma], 2) == items[key]

    def test_head_pointer_is_smallest_assigned_stripe(self):
        rng = random.Random(5)
        items = {rng.randrange(U): 1 for _ in range(30)}
        d = build("a", items, sigma=8)
        for key in items:
            head = d.membership.lookup(key).value
            assert head == min(d.assignment[key])

    def test_field_width_matches_paper_formula_large_sigma(self):
        """For sigma >> d the width is ceil(3 sigma/(2d)) + 4 exactly."""
        rng = random.Random(6)
        sigma, degree = 4000, 16
        items = {rng.randrange(U): rng.randrange(1 << sigma)
                 for _ in range(10)}
        d = build("a", items, sigma=sigma)
        assert d.field_bits == math.ceil(3 * sigma / (2 * degree)) + 4

    def test_pointer_overhead_under_2d_bits(self):
        """Paper: 'the entire space occupied by the pointer data is less
        than 2d bits per element'."""
        rng = random.Random(7)
        items = {rng.randrange(U): rng.randrange(1 << 40)
                 for _ in range(40)}
        d = build("a", items, sigma=40)
        for key in list(items)[:15]:
            idx = dict(d.graph.striped_neighbors(key))
            pointer_bits = 0
            for stripe in d.assignment[key]:
                field = d.array.peek((stripe, idx[stripe]))
                reader = BitReader(field)
                while reader.read_bit():
                    pointer_bits += 1
                pointer_bits += 1  # the terminating 0
            assert pointer_bits < 2 * d.degree
