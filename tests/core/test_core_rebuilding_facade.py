"""Tests for global rebuilding and the user-facing facade."""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.facade import ParallelDiskDictionary
from repro.core.rebuilding import RebuildingDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 16


def basic_factory(capacity, generation):
    machine = ParallelDiskMachine(16, 32, item_bits=64)
    return BasicDictionary(
        machine,
        universe_size=U,
        capacity=capacity,
        degree=16,
        seed=100 + generation,
    )


class TestRebuilding:
    def test_grows_past_initial_capacity(self):
        d = RebuildingDictionary(basic_factory, initial_capacity=16)
        for k in range(200):
            d.insert(k, k * 3)
        assert len(d) == 200
        assert all(d.lookup(k).value == k * 3 for k in range(200))

    def test_rebuild_stats(self):
        d = RebuildingDictionary(basic_factory, initial_capacity=16)
        for k in range(100):
            d.insert(k, None)
        assert d.stats.rebuilds_started >= 1
        assert d.stats.items_migrated > 0

    def test_lookup_during_rebuild_consults_both(self):
        d = RebuildingDictionary(
            basic_factory, initial_capacity=32, move_per_op=2
        )
        for k in range(33):  # just tip into rebuilding
            d.insert(k, k)
        assert d.building is not None  # mid-rebuild
        assert all(d.lookup(k).found for k in range(33))

    def test_delete_during_rebuild(self):
        d = RebuildingDictionary(
            basic_factory, initial_capacity=32, move_per_op=2
        )
        for k in range(40):
            d.insert(k, k)
        d.delete(5)
        d.delete(38)
        assert not d.lookup(5).found
        assert not d.lookup(38).found
        assert len(d) == 38

    def test_update_during_rebuild_no_stale_copy(self):
        d = RebuildingDictionary(
            basic_factory, initial_capacity=32, move_per_op=2
        )
        for k in range(33):
            d.insert(k, "old")
        assert d.building is not None
        d.insert(0, "new")  # 0 may still live in the draining structure
        # Drain fully.
        for k in range(100, 160):
            d.insert(k, "fill")
        assert d.lookup(0).value == "new"

    def test_stored_keys_union(self):
        d = RebuildingDictionary(
            basic_factory, initial_capacity=32, move_per_op=2
        )
        for k in range(50):
            d.insert(k, None)
        assert set(d.stored_keys()) == set(range(50))

    def test_migration_outruns_inserts(self):
        """move_per_op >= 2 guarantees rebuilds finish before the next one
        must start."""
        d = RebuildingDictionary(
            basic_factory, initial_capacity=16, move_per_op=4
        )
        for k in range(500):
            d.insert(k, None)
        assert d.stats.rebuilds_finished == d.stats.rebuilds_started or (
            d.stats.rebuilds_finished == d.stats.rebuilds_started - 1
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RebuildingDictionary(basic_factory, initial_capacity=0)
        with pytest.raises(ValueError):
            RebuildingDictionary(basic_factory, move_per_op=1)
        with pytest.raises(ValueError):
            RebuildingDictionary(basic_factory, growth=1.0)


class TestFacade:
    @pytest.mark.parametrize("mode", ["basic", "full-bandwidth"])
    def test_modes_roundtrip(self, mode):
        d = ParallelDiskDictionary(
            universe_size=U, capacity=256, mode=mode, sigma=24, seed=4
        )
        rng = random.Random(0)
        ref = {}
        while len(ref) < 200:
            k = rng.randrange(U)
            v = rng.randrange(1 << 24)
            d.insert(k, v)
            ref[k] = v
        assert all(d.lookup(k).value == v for k, v in ref.items())
        assert len(d) == 200

    def test_unbounded_growth_with_deletes(self):
        d = ParallelDiskDictionary(
            universe_size=U, capacity=32, mode="basic", unbounded=True, seed=1
        )
        for k in range(300):
            d.insert(k, k)
        for k in range(0, 300, 3):
            d.delete(k)
        assert len(d) == 200
        assert not d.lookup(0).found
        assert d.lookup(1).value == 1

    def test_default_degree_is_logarithmic(self):
        d = ParallelDiskDictionary(universe_size=1 << 20, capacity=64)
        assert d.degree == 40  # 2 * log2(2^20)

    def test_io_stats_aggregate(self):
        d = ParallelDiskDictionary(universe_size=U, capacity=64, seed=2)
        d.insert(1, None)
        d.lookup(1)
        stats = d.io_stats()
        assert stats.read_ios >= 2
        assert stats.write_ios >= 1

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ParallelDiskDictionary(universe_size=U, mode="nope")
