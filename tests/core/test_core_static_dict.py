"""Tests for the Theorem 6 static dictionary (Section 4.2)."""

import random

import pytest

from repro.core.interface import CapacityExceeded
from repro.core.static_dict import (
    StaticDictionary,
    assign_unique_neighbors,
    fields_needed,
)
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.verify import unique_neighbor_set
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def build(case, n=300, sigma=30, degree=16, seed=2, **kw):
    rng = random.Random(seed)
    items = {}
    while len(items) < n:
        items[rng.randrange(U)] = rng.randrange(1 << sigma)
    disks = degree * (2 if case == "a" else 1)
    machine = ParallelDiskMachine(disks, 32, item_bits=64)
    d = StaticDictionary.build(
        machine,
        items,
        universe_size=U,
        sigma=sigma,
        case=case,
        degree=degree,
        seed=seed,
        **kw,
    )
    return d, items


class TestFieldsNeeded:
    def test_ceil_two_thirds(self):
        assert fields_needed(12) == 8
        assert fields_needed(16) == 11
        assert fields_needed(13) == 9


class TestAssignment:
    def test_every_key_assigned_enough_unique_stripes(self):
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=1200, seed=4
        )
        keys = random.Random(4).sample(range(U), 300)
        result = assign_unique_neighbors(g, keys)
        assert not result.overflow
        m = fields_needed(16)
        for key, stripes in result.assignment.items():
            assert len(stripes) == m
            assert list(stripes) == sorted(set(stripes))

    def test_assigned_stripes_are_neighbors(self):
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=1200, seed=4
        )
        keys = random.Random(4).sample(range(U), 200)
        result = assign_unique_neighbors(g, keys)
        for key, stripes in result.assignment.items():
            neighbor_stripes = {i for (i, j) in g.striped_neighbors(key)}
            assert set(stripes) <= neighbor_stripes

    def test_round_one_uses_global_unique_neighbors(self):
        """Keys assigned in round one take fields from Phi(S) — unique with
        respect to the FULL set, hence untouchable by later rounds."""
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=1200, seed=4
        )
        keys = random.Random(9).sample(range(U), 250)
        result = assign_unique_neighbors(g, keys)
        phi = unique_neighbor_set(g, keys)
        stripe_index = {
            key: dict(g.striped_neighbors(key)) for key in keys
        }
        first_round_count = result.round_sizes[0]
        # Reconstruct round-1 membership: keys whose assignment is a subset
        # of the global Phi.
        in_phi = 0
        for key, stripes in result.assignment.items():
            flat = {
                s * g.stripe_size + stripe_index[key][s] for s in stripes
            }
            if flat <= phi:
                in_phi += 1
        assert in_phi >= first_round_count

    def test_rounds_shrink_geometrically(self):
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=1600, seed=4
        )
        keys = random.Random(5).sample(range(U), 400)
        result = assign_unique_neighbors(g, keys)
        # Lemma 5 with lambda = 1/3: at least half assigned per round.
        remaining = 400
        for size in result.round_sizes:
            assert size >= remaining * 0.4  # slack under the paper's 1/2
            remaining -= size

    def test_disjoint_field_assignment(self):
        """No two keys ever share an assigned (stripe, index) field."""
        g = SeededRandomExpander(
            left_size=U, degree=16, stripe_size=1200, seed=4
        )
        keys = random.Random(6).sample(range(U), 300)
        result = assign_unique_neighbors(g, keys)
        used = set()
        for key, stripes in result.assignment.items():
            idx = dict(g.striped_neighbors(key))
            for s in stripes:
                loc = (s, idx[s])
                assert loc not in used
                used.add(loc)


@pytest.mark.parametrize("case", ["a", "b"])
class TestLookup:
    def test_all_present_keys_found(self, case):
        d, items = build(case)
        for k, v in items.items():
            result = d.lookup(k)
            assert result.found and result.value == v

    def test_lookups_cost_one_io(self, case):
        d, items = build(case)
        for k in list(items)[:50]:
            assert d.lookup(k).cost.total_ios == 1

    def test_misses_cost_one_io_and_not_found(self, case):
        d, items = build(case)
        rng = random.Random(99)
        for _ in range(100):
            probe = rng.randrange(U)
            if probe in items:
                continue
            result = d.lookup(probe)
            assert not result.found
            assert result.cost.total_ios == 1

    def test_insert_rejected(self, case):
        d, _ = build(case, n=50)
        with pytest.raises(NotImplementedError):
            d.insert(1, 2)


class TestCaseSpecifics:
    def test_case_b_field_width(self):
        d, _ = build("b", n=300, sigma=30, degree=16)
        import math

        assert d.field_bits == math.ceil(math.log2(300)) + math.ceil(
            30 / fields_needed(16)
        )

    def test_case_a_uses_two_disk_groups(self):
        d, _ = build("a")
        assert d.membership is not None
        assert d.array.disk_offset == d.degree

    def test_case_b_has_no_membership_structure(self):
        d, _ = build("b")
        assert d.membership is None

    def test_case_a_membership_only_when_sigma_zero(self):
        rng = random.Random(0)
        items = {rng.randrange(U): 0 for _ in range(100)}
        machine = ParallelDiskMachine(32, 32)
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=0, case="a", degree=16,
        )
        assert d.array is None
        for k in items:
            assert d.lookup(k).found

    def test_space_accounting_linearish(self):
        """Case (a) space: O(n (log u + sigma)) bits, constant <= 64."""
        n, sigma = 400, 40
        d, _ = build("a", n=n, sigma=sigma)
        import math

        per_key = d.space_bits / n
        assert per_key <= 64 * (math.log2(U) + sigma)

    def test_single_key_dictionary(self):
        machine = ParallelDiskMachine(32, 32)
        d = StaticDictionary.build(
            machine, {123: 7}, universe_size=U, sigma=8, case="a", degree=16
        )
        assert d.lookup(123).value == 7
        assert not d.lookup(124).found

    def test_value_out_of_sigma_range_rejected(self):
        machine = ParallelDiskMachine(16, 32)
        with pytest.raises(ValueError):
            StaticDictionary.build(
                machine, {1: 256}, universe_size=U, sigma=8, case="b",
                degree=16,
            )

    def test_invalid_case_rejected(self):
        machine = ParallelDiskMachine(16, 32)
        with pytest.raises(ValueError):
            StaticDictionary.build(
                machine, {1: 1}, universe_size=U, sigma=8, case="c",
                degree=16,
            )

    def test_empty_items_rejected(self):
        machine = ParallelDiskMachine(16, 32)
        with pytest.raises(ValueError):
            StaticDictionary.build(
                machine, {}, universe_size=U, sigma=8, case="b", degree=16
            )

    def test_strict_overflow_raises(self):
        """With a pathologically small array the assignment cannot finish;
        strict mode must say so loudly."""
        machine = ParallelDiskMachine(16, 32)
        rng = random.Random(0)
        items = {rng.randrange(U): 0 for _ in range(200)}
        with pytest.raises(CapacityExceeded):
            StaticDictionary.build(
                machine,
                items,
                universe_size=U,
                sigma=8,
                case="b",
                degree=16,
                stripe_slack=0.05,  # v << n: impossible
            )


class TestMajorityDecoding:
    def test_no_false_positives_across_probes(self):
        """A missing key must never reach majority, even when its neighbor
        fields are full of other keys' identifiers."""
        d, items = build("b", n=500, degree=16)
        rng = random.Random(123)
        false_positives = 0
        for _ in range(500):
            probe = rng.randrange(U)
            if probe in items:
                continue
            if d.lookup(probe).found:
                false_positives += 1
        assert false_positives == 0
