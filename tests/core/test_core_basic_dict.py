"""Tests for the Section 4.1 dictionary."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_dict import (
    BasicDictionary,
    _join_fragments,
    _split_value,
)
from repro.core.interface import CapacityExceeded
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def make(machine=None, *, capacity=500, degree=16, k=1, **kw):
    if machine is None:
        machine = ParallelDiskMachine(degree, 32, item_bits=64)
    return BasicDictionary(
        machine,
        universe_size=U,
        capacity=capacity,
        degree=degree,
        k_fragments=k,
        seed=11,
        **kw,
    )


class TestFragments:
    def test_split_join_str(self):
        parts = _split_value("hello world!", 4)
        assert len(parts) == 4
        assert _join_fragments(parts) == "hello world!"

    def test_split_join_bytes(self):
        parts = _split_value(b"abcdef", 3)
        assert _join_fragments(parts) == b"abcdef"

    def test_split_join_list(self):
        parts = _split_value([1, 2, 3, 4, 5], 2)
        assert _join_fragments(parts) == [1, 2, 3, 4, 5]

    def test_k_one_passthrough(self):
        assert _split_value(12345, 1) == [12345]
        assert _join_fragments([12345]) == 12345

    def test_unsliceable_with_k_rejected(self):
        with pytest.raises(TypeError):
            _split_value(12345, 3)


class TestBasicOperations:
    def test_insert_lookup(self):
        d = make()
        d.insert(42, "forty-two")
        result = d.lookup(42)
        assert result.found and result.value == "forty-two"

    def test_missing_key(self):
        d = make()
        assert not d.lookup(7).found

    def test_overwrite(self):
        d = make()
        d.insert(1, "a")
        d.insert(1, "b")
        assert d.lookup(1).value == "b"
        assert len(d) == 1

    def test_upsert_reports_old_value(self):
        d = make()
        d.insert(1, "a")
        was_present, old, _ = d.upsert(1, "b")
        assert was_present and old == "a"

    def test_delete(self):
        d = make()
        d.insert(5, "x")
        d.delete(5)
        assert not d.lookup(5).found
        assert len(d) == 0

    def test_delete_missing_is_noop(self):
        d = make()
        cost = d.delete(5)
        assert cost.read_ios == 1 and cost.write_ios == 0

    def test_contains_protocol(self):
        d = make()
        d.insert(9, None)
        assert 9 in d
        assert 10 not in d

    def test_key_validation(self):
        d = make()
        with pytest.raises(KeyError):
            d.lookup(U)
        with pytest.raises(TypeError):
            d.lookup("x")

    def test_capacity_enforced(self):
        d = make(capacity=3)
        for k in range(3):
            d.insert(k, None)
        with pytest.raises(CapacityExceeded):
            d.insert(99, None)
        # ... but overwriting existing keys is still allowed.
        d.insert(0, "new")


class TestIOCosts:
    """The Figure 1 row: O(1) worst case; 1 I/O lookups, 2 I/O updates."""

    def test_lookup_is_one_io(self):
        d = make()
        for k in range(100):
            d.insert(k, k)
        for k in list(range(100)) + list(range(1000, 1100)):
            cost = d.lookup(k).cost
            assert cost.read_ios == 1
            assert cost.write_ios == 0

    def test_insert_is_two_ios(self):
        d = make()
        for k in range(200):
            cost = d.insert(k, k)
            assert cost.read_ios == 1
            assert cost.write_ios == 1

    def test_delete_is_two_ios(self):
        d = make()
        d.insert(3, "x")
        cost = d.delete(3)
        assert cost.total_ios == 2

    def test_one_probe_flag(self):
        d = make()
        assert d.one_probe

    def test_small_blocks_multi_block_buckets(self):
        """B below log N: buckets span O(1) blocks; lookups are O(1) but
        not one-probe (the paper's atomic-heap regime)."""
        machine = ParallelDiskMachine(16, 4, item_bits=64)  # tiny blocks
        d = BasicDictionary(
            machine,
            universe_size=U,
            capacity=400,
            degree=16,
            bucket_capacity=12,  # 3 blocks per bucket
            stripe_size=12,
            seed=1,
        )
        assert not d.one_probe
        for k in range(300):
            d.insert(k, None)
        cost = d.lookup(5).cost
        assert cost.read_ios == d.buckets.blocks_per_bucket  # O(1), constant
        assert all(d.lookup(k).found for k in range(300))


class TestLoadBalancing:
    def test_max_load_stays_within_blocks(self):
        d = make(capacity=1000)
        keys = random.Random(0).sample(range(U), 1000)
        for k in keys:
            d.insert(k, None)
        assert d.current_max_load() <= d.buckets.capacity_items
        assert d.max_load_seen == d.current_max_load()

    def test_load_spread_beats_single_choice(self):
        """d-choice placement: max load well below the single-choice
        balls-in-bins maximum."""
        d = make(capacity=2000)
        for k in random.Random(1).sample(range(U), 2000):
            d.insert(k, None)
        avg = 2000 / d.num_buckets
        assert d.current_max_load() <= avg + 5


class TestSatelliteVariant:
    def test_fragments_roundtrip(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine,
            universe_size=U,
            capacity=200,
            degree=16,
            k_fragments=8,
            seed=3,
        )
        payload = "x" * 64
        d.insert(10, payload)
        result = d.lookup(10)
        assert result.found and result.value == payload
        assert result.cost.read_ios == 1  # all fragments in one probe

    def test_many_keys_with_fragments(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine,
            universe_size=U,
            capacity=150,
            degree=16,
            k_fragments=8,
            seed=3,
        )
        ref = {}
        rng = random.Random(5)
        for _ in range(150):
            k = rng.randrange(U)
            v = bytes(rng.randrange(256) for _ in range(24))
            d.insert(k, v)
            ref[k] = v
        assert all(d.lookup(k).value == v for k, v in ref.items())

    def test_update_replaces_all_fragments(self):
        machine = ParallelDiskMachine(16, 32)
        d = BasicDictionary(
            machine, universe_size=U, capacity=50, degree=16,
            k_fragments=4, seed=3,
        )
        d.insert(1, "aaaabbbb")
        d.insert(1, "ccccdddd")
        assert d.lookup(1).value == "ccccdddd"
        assert len(d) == 1


class TestAudits:
    def test_stored_keys(self):
        d = make()
        keys = {3, 17, 99}
        for k in keys:
            d.insert(k, None)
        assert set(d.stored_keys()) == keys


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(0, 99),
            st.integers(0, 1000),
        ),
        max_size=60,
    )
)
def test_matches_dict_reference_model(ops):
    """Property: any op sequence behaves exactly like a Python dict."""
    machine = ParallelDiskMachine(12, 16, item_bits=64)
    d = BasicDictionary(
        machine, universe_size=U, capacity=200, degree=12, seed=2
    )
    model = {}
    for op, key, value in ops:
        if op == "insert":
            d.insert(key, value)
            model[key] = value
        elif op == "delete":
            d.delete(key)
            model.pop(key, None)
        else:
            result = d.lookup(key)
            assert result.found == (key in model)
            if result.found:
                assert result.value == model[key]
    assert len(d) == len(model)
    assert set(d.stored_keys()) == set(model)
