"""Tests for the disk-head-model dictionary and the Section 5 -> Section 4
integration (dictionaries running on semi-explicit expanders)."""

import random

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.head_model_dict import HeadModelDictionary
from repro.core.interface import CapacityExceeded
from repro.core.static_dict import StaticDictionary
from repro.expanders.semi_explicit import SemiExplicitExpander
from repro.expanders.striping import TriviallyStripedExpander
from repro.pdm.machine import ParallelDiskHeadMachine, ParallelDiskMachine

U = 1 << 16


class TestHeadModelDictionary:
    def make(self, machine=None, **kw):
        if machine is None:
            machine = ParallelDiskHeadMachine(16, 32)
        return HeadModelDictionary(
            machine, universe_size=U, capacity=300, degree=16, seed=2, **kw
        )

    def test_roundtrip(self):
        d = self.make()
        rng = random.Random(0)
        ref = {}
        while len(ref) < 300:
            k, v = rng.randrange(U), rng.randrange(100)
            d.insert(k, v)
            ref[k] = v
        assert all(d.lookup(k).value == v for k, v in ref.items())

    def test_one_io_without_striping(self):
        """The Section 5 point: D >= d heads make any d-block probe one
        I/O, no striping and no factor-d space."""
        d = self.make()
        for k in range(100):
            d.insert(k, k)
        assert all(
            d.lookup(k).cost.total_ios == 1 for k in range(0, 200, 7)
        )
        assert all(
            d.insert(k, k).total_ios == 2 for k in range(100, 150)
        )

    def test_same_layout_on_pdm_collides(self):
        """On the ordinary PDM the flat layout can hit one disk multiple
        times, showing why striping matters there."""
        pdm = ParallelDiskMachine(4, 32)  # fewer disks than the degree
        d = HeadModelDictionary(
            pdm, universe_size=U, capacity=100, degree=16, seed=2
        )
        d.insert(5, None)
        assert d.lookup(5).cost.total_ios > 1

    def test_delete(self):
        d = self.make()
        d.insert(7, "x")
        d.delete(7)
        assert not d.lookup(7).found
        assert len(d) == 0

    def test_capacity(self):
        machine = ParallelDiskHeadMachine(16, 32)
        d = HeadModelDictionary(
            machine, universe_size=U, capacity=2, degree=16, seed=2
        )
        d.insert(1, None)
        d.insert(2, None)
        with pytest.raises(CapacityExceeded):
            d.insert(3, None)

    def test_stored_keys_and_load(self):
        d = self.make()
        for k in (1, 5, 9):
            d.insert(k, None)
        assert set(d.stored_keys()) == {1, 5, 9}
        assert d.current_max_load() >= 1


class TestSemiExplicitIntegration:
    """Closing the paper's loop: 'the presented dictionary structures may
    become a practical choice if and when explicit and efficient
    constructions of unbalanced expander graphs appear' — run them on the
    Section 5 construction today."""

    @pytest.fixture(scope="class")
    def semi(self):
        return SemiExplicitExpander.build(
            u=U, N=8, eps=0.5, beta=0.5, seed=13, certify_trials=60
        )

    def test_head_model_dictionary_on_semi_explicit(self, semi):
        """Non-striped semi-explicit expander + disk-head model = working
        dictionary with 1-I/O lookups and no striping blow-up."""
        d_graph = semi.expander
        machine = ParallelDiskHeadMachine(d_graph.degree, 32)
        d = HeadModelDictionary(
            machine,
            universe_size=U,
            capacity=8,
            graph=d_graph,
            bucket_capacity=8,
        )
        keys = random.Random(3).sample(range(U), 8)
        for i, k in enumerate(keys):
            d.insert(k, i)
        assert all(d.lookup(k).found for k in keys)
        assert all(d.lookup(k).cost.total_ios == 1 for k in keys)

    def test_striped_dictionary_on_semi_explicit(self, semi):
        """Trivially striped semi-explicit expander + ordinary PDM:
        costs factor-d space, works with the standard structures."""
        striped = TriviallyStripedExpander(semi.expander)
        machine = ParallelDiskMachine(striped.degree, 16)
        d = BasicDictionary(
            machine,
            universe_size=U,
            capacity=8,
            graph=striped,
        )
        keys = random.Random(4).sample(range(U), 8)
        for i, k in enumerate(keys):
            d.insert(k, i * 10)
        assert all(d.lookup(k).value == i * 10 for i, k in enumerate(keys))
        assert all(d.lookup(k).cost.total_ios == 1 for k in keys)
        assert all(not d.lookup(k).found
                   for k in range(50) if k not in set(keys))
