"""Tests for the external (sort-based) Theorem 6 construction."""

import random

import pytest

from repro.core.static_construction import external_assignment
from repro.core.static_dict import StaticDictionary, assign_unique_neighbors
from repro.expanders.random_graph import SeededRandomExpander
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def setup(n=250, degree=16, stripe=1200, seed=3):
    machine = ParallelDiskMachine(degree, 32, item_bits=64)
    graph = SeededRandomExpander(
        left_size=U, degree=degree, stripe_size=stripe, seed=seed
    )
    keys = random.Random(seed).sample(range(U), n)
    return machine, graph, keys


class TestExternalAssignment:
    def test_matches_in_memory_assignment(self):
        machine, graph, keys = setup()
        external, report = external_assignment(machine, graph, keys)
        in_memory = assign_unique_neighbors(graph, sorted(keys))
        assert external == in_memory.assignment
        assert report.rounds == in_memory.rounds
        assert report.overflow == in_memory.overflow

    def test_round_sizes_match(self):
        machine, graph, keys = setup(n=300)
        _, report = external_assignment(machine, graph, keys)
        in_memory = assign_unique_neighbors(graph, sorted(keys))
        assert report.round_sizes == in_memory.round_sizes

    def test_cost_is_constant_multiple_of_sort(self):
        """Theorem 6: construction cost O(sort(nd))."""
        machine, graph, keys = setup(n=400)
        _, report = external_assignment(machine, graph, keys)
        assert report.sort_nd_bound > 0
        assert report.ios_per_sort_bound <= 16  # small constant multiple

    def test_cost_scales_with_n(self):
        costs = []
        for n in (100, 400):
            machine, graph, keys = setup(n=n)
            _, report = external_assignment(machine, graph, keys)
            costs.append(report.total_ios)
        assert costs[1] > costs[0]
        # Near-linear growth (the recursion's geometric series): 4x the keys
        # should cost well under 10x the I/O.
        assert costs[1] < 10 * costs[0]

    def test_all_io_through_the_machine(self):
        machine, graph, keys = setup(n=150)
        snap = machine.stats.snapshot()
        external_assignment(machine, graph, keys)
        assert machine.stats.since(snap).read_ios > 0
        assert machine.stats.since(snap).write_ios > 0


class TestBuildViaExtsort:
    @pytest.mark.parametrize("case", ["a", "b"])
    def test_extsort_build_correct(self, case):
        rng = random.Random(5)
        items = {rng.randrange(U): rng.randrange(1 << 24) for _ in range(200)}
        disks = 16 * (2 if case == "a" else 1)
        machine = ParallelDiskMachine(disks, 32)
        d = StaticDictionary.build(
            machine,
            items,
            universe_size=U,
            sigma=24,
            case=case,
            degree=16,
            seed=5,
            construction="extsort",
        )
        assert d.external_report is not None
        assert all(d.lookup(k).value == v for k, v in items.items())

    def test_extsort_and_fast_agree(self):
        rng = random.Random(6)
        items = {rng.randrange(U): rng.randrange(100) for _ in range(150)}
        m1 = ParallelDiskMachine(16, 32)
        m2 = ParallelDiskMachine(16, 32)
        d1 = StaticDictionary.build(
            m1, items, universe_size=U, sigma=8, case="b", degree=16,
            seed=6, construction="extsort",
        )
        d2 = StaticDictionary.build(
            m2, items, universe_size=U, sigma=8, case="b", degree=16,
            seed=6, construction="fast",
        )
        assert d1.assignment == d2.assignment

    def test_unknown_construction_rejected(self):
        machine = ParallelDiskMachine(16, 32)
        with pytest.raises(ValueError):
            StaticDictionary.build(
                machine, {1: 1}, universe_size=U, sigma=8, case="b",
                degree=16, construction="magic",
            )
