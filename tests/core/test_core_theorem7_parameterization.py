"""Theorem 7's exact parameterization: d > 6(1 + 1/eps), ratio = 6 eps'."""

import random

import pytest

from repro.core.dynamic_dict import DynamicDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


class TestFromEpsilon:
    @pytest.mark.parametrize("epsilon", [1.0, 0.5, 0.25])
    def test_delivers_one_plus_eps(self, epsilon):
        degree_floor = int(6 * (1 + 1 / epsilon)) + 1
        machine = ParallelDiskMachine(2 * degree_floor, 32)
        d = DynamicDictionary.from_epsilon(
            machine,
            universe_size=U,
            capacity=300,
            sigma=32,
            epsilon=epsilon,
            seed=3,
        )
        assert d.degree > 6 * (1 + 1 / epsilon)
        rng = random.Random(3)
        ref = {}
        while len(ref) < 300:
            k = rng.randrange(U)
            v = rng.randrange(1 << 32)
            d.insert(k, v)
            ref[k] = v
        hits = [d.lookup(k).cost.total_ios for k in ref]
        assert sum(hits) / len(hits) <= 1 + epsilon
        assert d.stats.avg_insert_ios <= 2 + epsilon
        assert all(d.lookup(k).value == v for k, v in list(ref.items())[:40])

    def test_insufficient_disks_rejected(self):
        machine = ParallelDiskMachine(8, 32)
        with pytest.raises(ValueError):
            DynamicDictionary.from_epsilon(
                machine, universe_size=U, capacity=10, sigma=8, epsilon=0.5
            )

    def test_epsilon_validation(self):
        machine = ParallelDiskMachine(64, 32)
        with pytest.raises(ValueError):
            DynamicDictionary.from_epsilon(
                machine, universe_size=U, capacity=10, sigma=8, epsilon=0
            )

    def test_smaller_epsilon_needs_bigger_degree(self):
        m_loose = ParallelDiskMachine(2 * 14, 32)
        loose = DynamicDictionary.from_epsilon(
            m_loose, universe_size=U, capacity=10, sigma=8, epsilon=1.0
        )
        m_tight = ParallelDiskMachine(2 * 31, 32)
        tight = DynamicDictionary.from_epsilon(
            m_tight, universe_size=U, capacity=10, sigma=8, epsilon=0.25
        )
        assert tight.degree > loose.degree

    def test_ratio_within_theorem_range(self):
        machine = ParallelDiskMachine(2 * 19, 32)
        d = DynamicDictionary.from_epsilon(
            machine, universe_size=U, capacity=50, sigma=8, epsilon=0.5
        )
        # 6 eps' < 1/(1 + 1/eps) = eps/(1+eps)
        assert d.ratio < 0.5 / 1.5
