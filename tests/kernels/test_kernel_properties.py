"""Property suite: every kernel backend equals the scalar path, element
for element.

The batch kernels (:mod:`repro.kernels`) are only allowed to change the
clock, never an answer — so each op is pinned here against the *scalar*
function it replaces (``splitmix64``/``derive``, the seeded expanders'
neighbor formulas, ``PolynomialHashFamily.__call__``, the batch planner's
``dict.fromkeys`` dedup) under Hypothesis-generated inputs, for every
available backend.  The differential suite
(``test_kernel_differential.py``) covers the dictionaries end to end;
this file covers the ops in isolation, where shrinking is sharpest.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits.mix import derive, splitmix64
from repro.bits.stream import MixStream, bulk_derive
from repro.expanders.random_graph import (
    SeededFlatExpander,
    SeededRandomExpander,
)
from repro.hashing.families import PolynomialHashFamily
from repro.kernels import create_kernel

_MASK64 = (1 << 64) - 1

BACKENDS = [create_kernel("python")]
try:
    BACKENDS.append(create_kernel("numpy"))
except ImportError:  # pragma: no cover - numpy is present in CI
    pass


def pytest_generate_tests(metafunc):
    if "kernel" in metafunc.fixturenames:
        metafunc.parametrize(
            "kernel", BACKENDS, ids=[k.name for k in BACKENDS]
        )


u64 = st.integers(min_value=0, max_value=_MASK64)
small = st.integers(min_value=0, max_value=1 << 20)
#: left vertices of the 2^62-vertex test expanders
vertex = st.integers(min_value=0, max_value=(1 << 62) - 1)


# -- bulk mixing --------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(start=u64, count=st.integers(min_value=0, max_value=200))
def test_splitmix_fill_matches_scalar(kernel, start, count):
    out = kernel.splitmix_fill(start, count)
    assert isinstance(out, array) and out.typecode == "Q"
    assert list(out) == [
        splitmix64((start + i) & _MASK64) for i in range(count)
    ]


@settings(max_examples=60, deadline=None)
@given(
    seed=u64,
    pairs=st.lists(st.tuples(u64, u64), max_size=50),
)
def test_derive_pairs_matches_derive(kernel, seed, pairs):
    assert kernel.derive_pairs(seed, pairs) == [
        derive(seed, a, b) for a, b in pairs
    ]


@settings(max_examples=60, deadline=None)
@given(
    seed=u64,
    rows=st.lists(st.lists(u64, max_size=4), max_size=30),
)
def test_bulk_derive_matches_derive(seed, rows):
    assert bulk_derive(seed, rows) == [derive(seed, *row) for row in rows]


@settings(max_examples=60, deadline=None)
@given(
    seed=u64,
    tag=u64,
    count=st.integers(min_value=0, max_value=100),
)
def test_mixstream_fill_matches_next64(seed, tag, count):
    filled = MixStream(seed, tag)
    stepped = MixStream(seed, tag)
    assert list(filled.fill(count)) == [
        stepped.next64() for _ in range(count)
    ]
    # The counter advanced identically: the streams stay in lockstep.
    assert filled.next64() == stepped.next64()


# -- expander neighborhoods ---------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    seed=small,
    degree=st.integers(min_value=1, max_value=8),
    stripe_size=st.integers(min_value=1, max_value=1 << 16),
    keys=st.lists(vertex, max_size=40),
)
def test_stripe_local_indices_matches_expander(
    kernel, seed, degree, stripe_size, keys
):
    graph = SeededRandomExpander(
        left_size=1 << 62,
        degree=degree,
        stripe_size=stripe_size,
        seed=seed,
    )
    out = kernel.stripe_local_indices(
        graph._base, degree, stripe_size, keys
    )
    assert isinstance(out, array) and out.typecode == "I"
    expected = []
    for x in keys:
        expected.extend(j for _, j in graph.striped_neighbors(x))
    assert list(out) == expected


@settings(max_examples=60, deadline=None)
@given(
    seed=small,
    degree=st.integers(min_value=1, max_value=8),
    right_size=st.integers(min_value=1, max_value=1 << 40),
    keys=st.lists(vertex, max_size=40),
)
def test_flat_neighbors_matches_expander(
    kernel, seed, degree, right_size, keys
):
    graph = SeededFlatExpander(
        left_size=1 << 62,
        right_size=right_size,
        degree=degree,
        seed=seed,
    )
    out = kernel.flat_neighbors(graph._base, degree, right_size, keys)
    assert isinstance(out, array) and out.typecode == "Q"
    expected = []
    for x in keys:
        expected.extend(graph.neighbors(x))
    assert list(out) == expected


# -- hash families ------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=small,
    universe=st.sampled_from(
        # spans both kernel regimes: p < 2^32 (vector lanes) and the
        # p > 2^32 exact-fallback path
        [1 << 10, 1 << 20, 1 << 31, (1 << 34) + 7]
    ),
    range_size=st.integers(min_value=1, max_value=1 << 16),
    independence=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_poly_hash_matches_call(
    kernel, seed, universe, range_size, independence, data
):
    fam = PolynomialHashFamily(
        universe_size=universe,
        range_size=range_size,
        independence=independence,
        seed=seed,
    )
    keys = data.draw(
        st.lists(st.integers(min_value=0, max_value=universe - 1),
                 max_size=40)
    )
    assert fam.hash_batch(keys, kernel=kernel) == [fam(x) for x in keys]
    assert kernel.poly_hash(
        fam.coeffs, fam.p, fam.range_size, keys
    ) == [fam(x) for x in keys]


# -- probe planning -----------------------------------------------------------


@st.composite
def probe_plans(draw):
    stripes = draw(st.integers(min_value=1, max_value=8))
    nkeys = draw(st.integers(min_value=0, max_value=30))
    bases = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=stripes, max_size=stripes,
        )
    )
    locals_flat = array("I", draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 12),
            min_size=nkeys * stripes, max_size=nkeys * stripes,
        )
    ))
    disk_offset = draw(st.integers(min_value=0, max_value=64))
    return locals_flat, stripes, bases, disk_offset


@settings(max_examples=80, deadline=None)
@given(plan=probe_plans())
def test_plan_unique_probe_matches_scalar_dedup(kernel, plan):
    locals_flat, stripes, bases, disk_offset = plan
    unique, max_per_disk, inverse = kernel.plan_unique_probe(
        locals_flat, stripes, bases, disk_offset
    )

    # The scalar path's address stream, in flat order.
    addrs = []
    for k in range(len(locals_flat) // stripes):
        for i in range(stripes):
            addrs.append(
                (disk_offset + i,
                 bases[i] + locals_flat[k * stripes + i])
            )

    assert unique == list(dict.fromkeys(addrs))
    per_disk: dict = {}
    for disk, _ in unique:
        per_disk[disk] = per_disk.get(disk, 0) + 1
    assert max_per_disk == max(per_disk.values(), default=0)
    # The inverse maps every flat position back to its own address.
    inv = list(inverse)
    assert len(inv) == len(addrs)
    assert [unique[i] for i in inv] == addrs


# -- batch key matching -------------------------------------------------------


@st.composite
def match_cases(draw):
    """A store of key columns plus queries with distinct candidate
    columns each — the striped-layout contract of ``match_candidates``."""
    width = draw(st.integers(min_value=1, max_value=6))
    ncols = draw(st.integers(min_value=1, max_value=10))
    key_pool = st.integers(min_value=0, max_value=(1 << 64) - 2)
    payloads = [
        [
            (draw(key_pool), draw(st.integers(0, 3)), None)
            for _ in range(draw(st.integers(min_value=0, max_value=width)))
        ]
        for _ in range(ncols)
    ]
    degree = draw(st.integers(min_value=1, max_value=min(4, ncols)))
    queries = draw(
        st.lists(key_pool, max_size=8, unique=True)
    )
    candidates = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=ncols - 1),
                min_size=degree, max_size=degree, unique=True,
            )
        )
        for _ in queries
    ]
    return width, payloads, queries, candidates


@settings(max_examples=80, deadline=None)
@given(case=match_cases())
def test_match_candidates_matches_brute_force(kernel, case):
    width, payloads, queries, candidates = case
    store = kernel.new_column_store(width)
    rows = [kernel.store_column(store, p) for p in payloads]
    inverse = [ci for cols in candidates for ci in cols]

    expected = []
    for qi, (key, cols) in enumerate(zip(queries, candidates)):
        for ci in cols:
            for slot, item in enumerate(payloads[ci]):
                if item[0] == key:
                    expected.append((qi, ci, slot))

    got = kernel.match_candidates(store, rows, inverse, queries)
    assert got == expected


def test_store_rows_are_stable_across_growth(kernel):
    """Row handles stay valid after the store grows past its initial
    allocation (the numpy matrix doubles; handles must not move)."""
    store = kernel.new_column_store(2)
    payloads = [[(k, 0, None)] for k in range(600)]
    rows = [kernel.store_column(store, p) for p in payloads]
    queries = [17, 421]
    matches = kernel.match_candidates(
        store, rows, [rows[17], rows[421]], queries
    )
    assert matches == [(0, 17, 0), (1, 421, 0)]


def test_empty_payload_columns_match_nothing(kernel):
    store = kernel.new_column_store(3)
    rows = [
        kernel.store_column(store, None),
        kernel.store_column(store, []),
        kernel.store_column(store, [(5, 1, None)]),
    ]
    assert kernel.match_candidates(store, rows, [0, 1, 2], [5]) == [
        (0, 2, 0)
    ]


@pytest.mark.skipif(len(BACKENDS) < 2, reason="numpy backend unavailable")
@settings(max_examples=40, deadline=None)
@given(plan=probe_plans())
def test_backends_agree_on_plan(plan):
    ref, vec = BACKENDS[0], BACKENDS[-1]
    a = ref.plan_unique_probe(*plan)
    b = vec.plan_unique_probe(*plan)
    assert a[0] == b[0]
    assert a[1] == b[1]
    assert list(a[2]) == list(b[2])
