"""Differential suite: kernel backends change the clock, never the run.

Three copies of the same dictionary — ``kernel="off"`` (the scalar
batch path), the pure-Python kernel, and (when importable) the numpy
kernel — replay identical workloads on identical machines.  Everything
observable must agree: per-key batch outcomes, the charged
:class:`~repro.pdm.iostats.IOStats`, the per-batch ``OpCost``, and the
round-packing witnesses recorded on the batch spans.  The comparison
runs healthy, under a ``kill_disks`` fault plan, with a memory budget
tiny enough to freeze the neighborhood memo and the key-column cache,
and across mutation (the column cache must never serve stale rows).
"""

from __future__ import annotations

import pytest

from repro.core.basic_dict import BasicDictionary
from repro.core.interface import DegradedLookupError, LookupResult
from repro.faults.plan import FaultPlan
from repro.kernels import create_kernel
from repro.pdm.faults import attach_faults
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.spans import attach_spans
from repro.workloads.access import zipf_accesses

U = 1 << 16
D = 8
B = 16
CAPACITY = 256
N_ITEMS = 96

KERNELS = ["off", "python"]
try:
    create_kernel("numpy")
    KERNELS.append("numpy")
except ImportError:  # pragma: no cover - numpy is present in CI
    pass


def _build(kernel, *, memory_words=None, num_disks=D):
    machine = ParallelDiskMachine(num_disks, B, memory_words=memory_words)
    d = BasicDictionary(
        machine,
        universe_size=U,
        capacity=CAPACITY,
        degree=num_disks,
        seed=11,
        kernel=kernel,
    )
    items = {(13 + 101 * i) % U: f"v{i}" for i in range(N_ITEMS)}
    for k, v in sorted(items.items()):
        d.upsert(k, v)
    return machine, d, items


def _probes(items, extra_misses=20):
    present = sorted(items)
    stream = zipf_accesses(present, 48, s=1.2, seed=3)
    misses = [(k + 1) % U for k in present[:extra_misses]]
    return stream + misses + present[:8]


def _outcome_fingerprint(outcomes):
    """Per-key outcomes as comparable values (results and typed errors)."""
    fp = {}
    for key, res in outcomes.items():
        if isinstance(res, LookupResult):
            fp[key] = ("ok", res.found, res.value)
        elif isinstance(res, DegradedLookupError):
            fp[key] = ("degraded", res.membership)
        else:
            fp[key] = ("error", type(res).__name__)
    return fp


def _stats_fingerprint(machine):
    s = machine.stats
    return (s.read_ios, s.write_ios, s.blocks_read, s.blocks_written)


def _run_replay(kernel, *, faults=None, memory_words=None, batches=3):
    """One full replay under a backend; returns every observable."""
    machine, d, items = _build(kernel, memory_words=memory_words)
    recorder = attach_spans(machine)
    if faults is not None:
        attach_faults(
            machine,
            FaultPlan.kill_disks(faults, num_disks=machine.num_disks).events,
        )
    observed = []
    probes = _probes(items)
    for i in range(batches):
        outcomes, cost = d.batch_lookup(probes)
        observed.append(_outcome_fingerprint(outcomes))
        observed.append((cost.read_ios, cost.write_ios))
        if i == 0:  # mutate between batches: caches must not go stale
            victims = sorted(items)[:10]
            mutations = []
            for k in victims:
                try:  # deletes degrade (typed) when a bucket is unreadable
                    d.delete(k)
                    mutations.append(("del", k, "ok"))
                except Exception as exc:
                    mutations.append(("del", k, type(exc).__name__))
            for k in victims[:5]:
                try:
                    d.upsert(k, f"new{k}")
                    mutations.append(("up", k, "ok"))
                except Exception as exc:
                    mutations.append(("up", k, type(exc).__name__))
            observed.append(mutations)
    observed.append(_stats_fingerprint(machine))
    # Round-packing witnesses from the batch spans: the constructive
    # proof that vectorized planning charged the scalar schedule.
    witnesses = [
        {
            key: root.attrs[key]
            for key in (
                "rounds_batched",
                "rounds_sequential",
                "rounds_saved",
                "blocks_deduplicated",
            )
            if key in root.attrs
        }
        for root in recorder.roots
        if root.name == "basic_dict.batch_lookup"
    ]
    observed.append(witnesses)
    return observed


@pytest.mark.parametrize("kernel", KERNELS[1:])
class TestKernelMatchesScalar:
    def test_healthy_replay(self, kernel):
        assert _run_replay(kernel) == _run_replay("off")

    def test_under_kill_disks(self, kernel):
        faults = [0, 3]
        assert _run_replay(kernel, faults=faults) == _run_replay(
            "off", faults=faults
        )

    def test_memo_and_cache_frozen_under_tiny_memory(self, kernel):
        # A budget too small for the neighborhood memo and the key-column
        # cache: both freeze, and the frozen paths must stay identical.
        words = 512
        assert _run_replay(kernel, memory_words=words) == _run_replay(
            "off", memory_words=words
        )

    def test_plan_matches_machine_charge(self, kernel):
        """``plan_unique_probe`` + ``rounds_for_counts`` equals the
        machine's own ``batch_rounds`` on the same address stream."""
        machine, d, items = _build(kernel)
        kern = create_kernel(kernel)
        buckets = d.buckets
        keys = sorted(items)[:40]
        flat = d._neighborhoods.batch_local_indices(keys, kernel=kern)
        unique, max_per_disk, inverse = buckets.probe_plan(flat, kern)
        assert machine.rounds_for_counts(
            len(unique), max_per_disk
        ) == machine.batch_rounds(unique)
        assert [unique[i] for i in inverse] == [
            a
            for key in keys
            for a in buckets.block_addrs(d._neighborhoods.striped(key))
        ]


def test_backends_disagreeing_would_be_caught():
    """The harness is sensitive: perturbing one observable fails."""
    a = _run_replay("off")
    b = _run_replay("off")
    assert a == b
    b[-1][0]["rounds_batched"] += 1
    assert a != b
