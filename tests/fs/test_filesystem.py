"""Tests for the deterministic file system."""

import random

import pytest

from repro.fs import DeterministicFileSystem
from repro.fs.filesystem import FileNotFound


@pytest.fixture
def fs():
    return DeterministicFileSystem(
        max_name_bytes=12, max_blocks_per_file=64, expected_blocks=256,
        seed=1,
    )


class TestLifecycle:
    def test_create_stat(self, fs):
        fs.create("a.txt")
        assert fs.exists("a.txt")
        assert fs.stat("a.txt").num_blocks == 0

    def test_create_idempotent(self, fs):
        fs.create("a.txt")
        fs.write_block("a.txt", 0, "data")
        fs.create("a.txt")  # must not wipe
        assert fs.stat("a.txt").num_blocks == 1

    def test_missing_file_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.stat("ghost")
        with pytest.raises(FileNotFound):
            fs.read_block("ghost", 0)
        with pytest.raises(FileNotFound):
            fs.write_block("ghost", 0, "x")

    def test_delete(self, fs):
        fs.create("a")
        fs.write_block("a", 0, "x")
        fs.write_block("a", 1, "y")
        fs.delete("a")
        assert not fs.exists("a")
        with pytest.raises(FileNotFound):
            fs.read_block("a", 0)

    def test_list_names(self, fs):
        for name in ("a", "bb", "ccc"):
            fs.create(name)
        assert set(fs.list_names()) == {"a", "bb", "ccc"}


class TestReadWrite:
    def test_write_read_roundtrip(self, fs):
        fs.create("f")
        fs.write_block("f", 0, b"hello")
        fs.write_block("f", 1, b"world")
        assert fs.read_block("f", 0)[0] == b"hello"
        assert fs.read_block("f", 1)[0] == b"world"

    def test_read_block_is_one_io(self, fs):
        fs.create("f")
        fs.write_block("f", 0, "x")
        _, cost = fs.read_block("f", 0)
        assert cost.total_ios == 1  # the paper's headline

    def test_sparse_write_extends_length(self, fs):
        fs.create("f")
        fs.write_block("f", 10, "far")
        assert fs.stat("f").num_blocks == 11
        with pytest.raises(IndexError):
            fs.read_block("f", 5)  # a hole

    def test_append(self, fs):
        fs.create("log")
        for i in range(5):
            block, _ = fs.append_block("log", f"entry{i}")
            assert block == i
        data, _ = fs.read_file("log")
        assert data == [f"entry{i}" for i in range(5)]

    def test_append_limit(self):
        fs = DeterministicFileSystem(
            max_blocks_per_file=2, expected_blocks=64, seed=1
        )
        fs.create("f")
        fs.append_block("f", 1)
        fs.append_block("f", 2)
        with pytest.raises(ValueError):
            fs.append_block("f", 3)

    def test_overwrite_block(self, fs):
        fs.create("f")
        fs.write_block("f", 0, "old")
        fs.write_block("f", 0, "new")
        assert fs.read_block("f", 0)[0] == "new"
        assert fs.stat("f").num_blocks == 1

    def test_truncate(self, fs):
        fs.create("f")
        for i in range(6):
            fs.append_block("f", i)
        fs.truncate("f", 2)
        assert fs.stat("f").num_blocks == 2
        with pytest.raises(IndexError):
            fs.read_block("f", 2)
        assert fs.read_block("f", 1)[0] == 1

    def test_block_out_of_range(self, fs):
        fs.create("f")
        with pytest.raises(ValueError):
            fs.write_block("f", 64, "x")


class TestAtScale:
    def test_many_files_random_access(self):
        fs = DeterministicFileSystem(
            max_name_bytes=8, max_blocks_per_file=32,
            expected_blocks=4096, seed=2,
        )
        rng = random.Random(0)
        contents = {}
        for fid in range(120):
            name = f"f{fid}"
            fs.create(name)
            blocks = rng.randrange(1, 12)
            for b in range(blocks):
                payload = (fid, b, rng.randrange(1000))
                fs.write_block(name, b, payload)
                contents[(name, b)] = payload
        # Random reads, all 1 I/O (until rebuild doubles the disks; then
        # still a constant — assert <= 2 for the parallel dual probe).
        for (name, b), payload in rng.sample(list(contents.items()), 300):
            data, cost = fs.read_block(name, b)
            assert data == payload
            assert cost.total_ios <= 2
        assert fs.total_blocks() == len(contents)

    def test_grows_past_initial_capacity(self):
        fs = DeterministicFileSystem(expected_blocks=64, seed=3)
        fs.create("big")
        for i in range(300):
            fs.write_block("big", i % 64, ("blk", i))
        assert fs.stat("big").num_blocks == 64

    def test_deterministic_across_runs(self):
        def run():
            fs = DeterministicFileSystem(expected_blocks=128, seed=4)
            fs.create("x")
            for i in range(50):
                fs.write_block("x", i % 16, i)
            stats = fs.io_stats()
            return stats.read_ios, stats.write_ios

        assert run() == run()
