"""Durability tests for the per-disk block log (`repro.fs.blockfile`).

The regression surface this file pins down:

* torn writes — a crash that truncates the log mid-frame must surface as
  a typed :class:`BlockCorruption` on the damaged block's read, never
  silently resurrect the older frame or leak a raw ``OSError``;
* fsync-before-acknowledge ordering — a failed durability barrier must
  leave the index un-updated, so acknowledged reads only ever serve
  frames that reached the medium;
* every OS-level failure is wrapped into :class:`DiskFailure`.
"""

import os

import pytest

from repro.fs.blockfile import (
    CRC_SIZE,
    HEADER_SIZE,
    MAGIC,
    BlockLogFile,
    decode_frame,
    encode_frame,
)
from repro.pdm.errors import BlockCorruption, DiskFailure, IOFault


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "disk-000.blk")


def _fill(log, items):
    log.append_many(
        (index, payload, bits, seal) for index, payload, bits, seal in items
    )


class TestRoundTrip:
    def test_append_read(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(3, ["a", "b"], 16, 12345)
            assert log.read_block(3) == (["a", "b"], 16, 12345)
            assert log.read_block(4) is None

    def test_unsealed_checksum_is_none(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(0, [1], 8, None)
            payload, bits, seal = log.read_block(0)
            assert (payload, bits, seal) == ([1], 8, None)

    def test_newest_frame_shadows(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(7, ["old"], 8, None)
            log.append_block(7, ["new"], 8, None)
            assert log.read_block(7)[0] == ["new"]
            assert log.block_indices == [7]

    def test_reopen_rebuilds_index(self, log_path):
        with BlockLogFile(log_path) as log:
            _fill(log, [(i, [i * 11], 8, i) for i in range(5)])
            log.append_block(2, ["latest"], 8, None)
        with BlockLogFile(log_path) as log:
            assert log.block_indices == [0, 1, 2, 3, 4]
            assert log.read_block(2) == (["latest"], 8, None)
            assert log.read_block(4) == ([44], 8, 4)

    def test_append_after_reopen_extends(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(0, ["first"], 8, None)
        with BlockLogFile(log_path) as log:
            log.append_block(1, ["second"], 8, None)
            assert log.read_block(0)[0] == ["first"]
            assert log.read_block(1)[0] == ["second"]

    def test_reset_truncates(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(0, ["x"], 8, None)
            log.reset()
            assert log.block_indices == []
            assert log.read_block(0) is None
        assert os.path.getsize(log_path) == 0


class TestTornWrites:
    """Crash-mid-write modeled as truncating the log, then reopening."""

    def _write_two_versions(self, log_path):
        """Block 5 twice (second frame last in the file), plus block 1."""
        with BlockLogFile(log_path) as log:
            log.append_block(1, ["keep"], 8, 99)
            log.append_block(5, ["v1"], 8, None)
            log.append_block(5, ["v2-to-tear"], 8, None)
            extent = log.frame_extent(5)
        return extent

    def test_truncate_mid_frame_detected(self, log_path):
        offset, length = self._write_two_versions(log_path)
        # Tear through the middle of the final frame: header survives.
        os.truncate(log_path, offset + HEADER_SIZE + 2)
        with BlockLogFile(log_path) as log:
            with pytest.raises(BlockCorruption):
                log.read_block(5)
            # Undamaged blocks are still served.
            assert log.read_block(1) == (["keep"], 8, 99)

    def test_torn_frame_does_not_resurrect_older(self, log_path):
        """The damaged block must NOT silently fall back to its stale v1."""
        offset, _ = self._write_two_versions(log_path)
        os.truncate(log_path, offset + HEADER_SIZE + 2)
        with BlockLogFile(log_path) as log:
            with pytest.raises(BlockCorruption):
                log.frame_extent(5)

    def test_torn_header_ends_scan(self, log_path):
        """Header itself cut: nothing identifies the frame, so the scan
        stops and the previous acknowledged state stays authoritative."""
        offset, _ = self._write_two_versions(log_path)
        os.truncate(log_path, offset + 3)
        with BlockLogFile(log_path) as log:
            # The torn v2 frame was never identifiable; v1 (acknowledged
            # and intact) is the newest surviving frame.
            assert log.read_block(5)[0] == ["v1"]
            assert log.read_block(1)[0] == ["keep"]

    def test_crc_mismatch_detected(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(2, ["payload"], 8, None)
            offset, length = log.frame_extent(2)
        with open(log_path, "r+b") as handle:
            handle.seek(offset + HEADER_SIZE + 1)
            byte = handle.read(1)
            handle.seek(offset + HEADER_SIZE + 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with BlockLogFile(log_path) as log:
            with pytest.raises(BlockCorruption):
                log.read_block(2)

    def test_bad_magic_mid_log_is_unrecoverable(self, log_path):
        with BlockLogFile(log_path) as log:
            log.append_block(0, ["x"], 8, None)
        with open(log_path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"JUNK")
        with pytest.raises(BlockCorruption):
            BlockLogFile(log_path)


class TestTypedErrors:
    """No raw OSError ever escapes; everything is DiskFailure/IOFault."""

    def test_open_failure_is_disk_failure(self, tmp_path):
        with pytest.raises(DiskFailure):
            BlockLogFile(str(tmp_path))  # a directory is not a log

    def test_closed_log_raises_disk_failure(self, log_path):
        log = BlockLogFile(log_path)
        log.append_block(0, ["x"], 8, None)
        log.close()
        log.close()  # idempotent
        with pytest.raises(DiskFailure):
            log.read_block(0)
        with pytest.raises(DiskFailure):
            log.append_block(0, ["x"], 8, None)
        with pytest.raises(DiskFailure):
            log.sync()

    def test_all_typed_errors_are_iofaults(self, log_path):
        try:
            BlockLogFile(log_path + "/not-a-dir/x")
        except DiskFailure as exc:
            assert isinstance(exc, IOFault)
        else:  # pragma: no cover - the open must fail
            pytest.fail("expected DiskFailure")

    def test_short_pwrite_fails_without_acknowledge(self, log_path, monkeypatch):
        with BlockLogFile(log_path) as log:
            log.append_block(0, ["good"], 8, None)
            real_pwrite = os.pwrite
            monkeypatch.setattr(
                os, "pwrite", lambda fd, data, off: real_pwrite(
                    fd, data[: len(data) // 2], off
                )
            )
            with pytest.raises(DiskFailure):
                log.append_block(0, ["torn"], 8, None)
            monkeypatch.undo()
            # The half-written frame was never indexed: the previous
            # version of the block stays authoritative.
            assert log.read_block(0)[0] == ["good"]


class TestFsyncOrdering:
    def test_fsync_runs_before_acknowledge(self, log_path, monkeypatch):
        """A failed durability barrier must leave the index unchanged —
        the write is not acknowledged, so reads keep serving the previous
        frame."""
        with BlockLogFile(log_path, fsync=True) as log:
            log.append_block(4, ["durable"], 8, None)

            def broken_fsync(fd):
                raise OSError("simulated medium failure")

            monkeypatch.setattr(os, "fsync", broken_fsync)
            with pytest.raises(DiskFailure):
                log.append_block(4, ["lost"], 8, None)
            monkeypatch.undo()
            assert log.read_block(4)[0] == ["durable"]

    def test_fsync_true_appends_are_durable(self, log_path):
        with BlockLogFile(log_path, fsync=True) as log:
            _fill(log, [(i, [i], 8, None) for i in range(8)])
        with BlockLogFile(log_path) as log:
            assert log.block_indices == list(range(8))


class TestFrameCodec:
    def test_round_trip(self):
        frame = encode_frame(9, {"k": [1, 2]}, 24, 777)
        assert decode_frame(frame) == ({"k": [1, 2]}, 24, 777)

    def test_short_data_raises(self):
        frame = encode_frame(0, ["x"], 8, None)
        with pytest.raises(BlockCorruption):
            decode_frame(frame[: HEADER_SIZE - 4])
        with pytest.raises(BlockCorruption):
            decode_frame(frame[:-CRC_SIZE])

    def test_bad_magic_raises(self):
        frame = encode_frame(0, ["x"], 8, None)
        with pytest.raises(BlockCorruption):
            decode_frame(b"XXXX" + frame[len(MAGIC):])

    def test_unpicklable_payload_region_raises(self):
        frame = bytearray(encode_frame(0, ["x"], 8, None))
        # Scramble the payload but re-stamp a valid CRC: only the
        # unpickle step can catch this one.
        import zlib

        frame[HEADER_SIZE] ^= 0xFF
        body = bytes(frame[:-CRC_SIZE])
        frame[-CRC_SIZE:] = zlib.crc32(body).to_bytes(4, "little")
        with pytest.raises(BlockCorruption):
            decode_frame(bytes(frame))
