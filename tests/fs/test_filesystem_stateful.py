"""Model-based testing of the file system against plain Python dicts."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.fs import DeterministicFileSystem
from repro.fs.filesystem import FileNotFound

NAMES = ["a", "b", "log.txt", "mail"]
MAX_BLOCKS = 8


class FileSystemMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.fs = DeterministicFileSystem(
            max_name_bytes=8,
            max_blocks_per_file=MAX_BLOCKS,
            expected_blocks=256,
            seed=5,
        )
        self.model = {}  # name -> {block: data}, length implied

    @rule(name=st.sampled_from(NAMES))
    def create(self, name):
        self.fs.create(name)
        if name not in self.model:
            self.model[name] = {}

    @rule(name=st.sampled_from(NAMES), block=st.integers(0, MAX_BLOCKS - 1),
          data=st.integers(0, 100))
    def write(self, name, block, data):
        if name in self.model:
            self.fs.write_block(name, block, data)
            self.model[name][block] = data
        else:
            with pytest.raises(FileNotFound):
                self.fs.write_block(name, block, data)

    @rule(name=st.sampled_from(NAMES), block=st.integers(0, MAX_BLOCKS - 1))
    def read(self, name, block):
        if name not in self.model:
            with pytest.raises(FileNotFound):
                self.fs.read_block(name, block)
        elif block in self.model[name]:
            data, cost = self.fs.read_block(name, block)
            assert data == self.model[name][block]
            assert cost.total_ios <= 2  # 1, or 2 mid-rebuild
        else:
            length = (
                max(self.model[name]) + 1 if self.model[name] else 0
            )
            if block >= length:
                with pytest.raises(IndexError):
                    self.fs.read_block(name, block)
            # A hole below the length also raises IndexError.
            else:
                with pytest.raises(IndexError):
                    self.fs.read_block(name, block)

    @rule(name=st.sampled_from(NAMES))
    def delete(self, name):
        if name in self.model:
            self.fs.delete(name)
            del self.model[name]
        else:
            with pytest.raises(FileNotFound):
                self.fs.delete(name)

    @invariant()
    def names_agree(self):
        assert set(self.fs.list_names()) == set(self.model)

    @invariant()
    def lengths_agree(self):
        for name, blocks in self.model.items():
            expected = max(blocks) + 1 if blocks else 0
            assert self.fs.stat(name).num_blocks == expected


def test_filesystem_stateful():
    run_state_machine_as_test(
        FileSystemMachine,
        settings=settings(
            max_examples=15, stateful_step_count=30, deadline=None
        ),
    )
