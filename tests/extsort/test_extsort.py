"""Tests for external record arrays and the external mergesort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extsort.analysis import merge_passes, scan_ios, sort_ios_bound
from repro.extsort.array import ExternalRecordArray
from repro.extsort.mergesort import external_merge_sort
from repro.pdm.machine import ParallelDiskMachine


@pytest.fixture
def array(machine):
    return ExternalRecordArray(machine, record_bits=128, name="t")


class TestExternalRecordArray:
    def test_empty(self, array):
        assert len(array) == 0
        assert array.read_all() == []

    def test_append_and_scan_order(self, array):
        for i in range(100):
            array.append(i)
        assert array.read_all() == list(range(100))

    def test_extend_matches_appends(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        b = ExternalRecordArray(machine, record_bits=128)
        data = list(range(57))
        for x in data:
            a.append(x)
        b.extend(data)
        assert a.read_all() == b.read_all() == data

    def test_buffered_tail_visible_without_flush(self, array):
        array.append("x")  # stays in the output buffer
        assert array.read_all() == ["x"]
        assert array.blocks_on_disk == 0

    def test_flush_spills_partial_block(self, array):
        array.append("x")
        array.flush()
        assert array.blocks_on_disk == 1

    def test_scan_io_cost_matches_formula(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        n = 1000
        a.extend(range(n))
        a.flush()
        snap = machine.stats.snapshot()
        list(a.scan())
        measured = machine.stats.since(snap).read_ios
        assert measured == scan_ios(n, a.records_per_block, machine.D)

    def test_records_striped_across_disks(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        a.extend(range(machine.D * a.records_per_block))
        a.flush()
        disks_used = {addr[0] for addr in a._block_addrs}
        assert disks_used == set(range(machine.D))

    def test_record_too_wide_rejected(self, machine):
        with pytest.raises(ValueError):
            ExternalRecordArray(machine, record_bits=machine.block_bits + 1)

    def test_buffer_charges_internal_memory(self, machine):
        before = machine.memory.used_words
        a = ExternalRecordArray(machine, record_bits=128)
        assert machine.memory.used_words == before + a.records_per_block
        a.release_buffer()
        assert machine.memory.used_words == before


class TestMergeSort:
    def test_sorts(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        rng = random.Random(3)
        data = [rng.randrange(10**9) for _ in range(2500)]
        a.extend(data)
        out, report = external_merge_sort(machine, a)
        assert out.read_all() == sorted(data)
        assert report.records == 2500

    def test_sort_with_key(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        data = [(i % 7, i) for i in range(300)]
        a.extend(data)
        out, _ = external_merge_sort(machine, a, key=lambda r: r[0])
        assert [r[0] for r in out.read_all()] == sorted(i % 7 for i in range(300))

    def test_sort_is_stable_per_heapq_merge(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        data = [(0, i) for i in range(100)]
        a.extend(data)
        out, _ = external_merge_sort(machine, a, key=lambda r: r[0])
        assert out.read_all() == data  # equal keys keep order

    def test_empty_input(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        out, report = external_merge_sort(machine, a)
        assert out.read_all() == []
        assert report.merge_passes == 0

    def test_single_run_needs_no_merge(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        a.extend([3, 1, 2])
        out, report = external_merge_sort(machine, a)
        assert report.runs_formed == 1
        assert report.merge_passes == 0
        assert out.read_all() == [1, 2, 3]

    def test_io_within_analysis_bound(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        rng = random.Random(0)
        n = 5000
        a.extend(rng.randrange(10**6) for _ in range(n))
        mem = 4 * machine.D * a.records_per_block
        _, report = external_merge_sort(machine, a, memory_records=mem)
        bound = sort_ios_bound(n, a.records_per_block, machine.D, mem)
        assert report.cost.total_ios <= bound

    def test_memory_floor_enforced(self, machine):
        a = ExternalRecordArray(machine, record_bits=128)
        a.extend(range(10))
        with pytest.raises(ValueError):
            external_merge_sort(machine, a, memory_records=1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=400))
    def test_matches_sorted_property(self, data):
        machine = ParallelDiskMachine(4, 8, item_bits=64)
        a = ExternalRecordArray(machine, record_bits=64)
        a.extend(data)
        out, _ = external_merge_sort(machine, a)
        assert out.read_all() == sorted(data)


class TestAnalysisFormulas:
    def test_scan_ios(self):
        assert scan_ios(0, 8, 4) == 0
        assert scan_ios(1, 8, 4) == 1
        assert scan_ios(8 * 4, 8, 4) == 1
        assert scan_ios(8 * 4 + 1, 8, 4) == 2

    def test_scan_rejects_bad_args(self):
        with pytest.raises(ValueError):
            scan_ios(10, 0, 4)

    def test_merge_passes(self):
        assert merge_passes(100, 200, 4) == 0  # fits in memory
        assert merge_passes(800, 100, 8) == 1  # 8 runs, fan-in 8
        assert merge_passes(6400, 100, 8) == 2  # 64 runs

    def test_sort_bound_grows_with_n(self):
        small = sort_ios_bound(1000, 8, 4, 256)
        large = sort_ios_bound(100_000, 8, 4, 256)
        assert large > small
