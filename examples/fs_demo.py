#!/usr/bin/env python
"""The deterministic file system (repro.fs) in action.

Section 1.2 realised as an adoptable component: file names go through an
injective codec straight into the dictionary universe (no inode
translation), every (name, block) pair is one key, and random access to
any position of any file is one parallel I/O — worst case, not expected
case.

Run:  python examples/fs_demo.py
"""

import random

from repro.fs import DeterministicFileSystem


def main() -> None:
    fs = DeterministicFileSystem(
        max_name_bytes=16,
        max_blocks_per_file=256,
        expected_blocks=2048,
        seed=2006,
    )

    # A small mail spool: one file per user, one block per message.
    rng = random.Random(0)
    users = [f"user{i}.mbox" for i in range(40)]
    for name in users:
        fs.create(name)
        for m in range(rng.randrange(1, 20)):
            fs.append_block(name, f"message {m} for {name}")

    print(f"files: {len(list(fs.list_names()))}, blocks: {fs.total_blocks()}")

    # The headline: random access to any message of any mailbox, 1 I/O.
    costs = []
    for _ in range(500):
        name = users[rng.randrange(len(users))]
        length = fs.stat(name).num_blocks
        block = rng.randrange(length)
        data, cost = fs.read_block(name, block)
        assert data == f"message {block} for {name}"
        costs.append(cost.total_ios)
    print(
        f"500 random message reads: avg {sum(costs) / len(costs):.2f} I/Os, "
        f"worst {max(costs)} (paper: 1, vs a B-tree's ~3)"
    )

    # Name lookups are dictionary probes too — "the name can be easily
    # hashed as well", deterministically here.
    stat = fs.stat("user7.mbox")
    print(f"stat({stat.name}): {stat.num_blocks} blocks")

    # Mutation with worst-case constants.
    fs.write_block("user7.mbox", 0, "edited message")
    fs.truncate("user7.mbox", 3)
    fs.delete("user39.mbox")
    print(
        f"after edit/truncate/delete: files="
        f"{len(list(fs.list_names()))}, blocks={fs.total_blocks()}"
    )
    stats = fs.io_stats()
    print(
        f"total parallel I/Os: {stats.total_ios} "
        f"(reads {stats.read_ios}, writes {stats.write_ios})"
    )


if __name__ == "__main__":
    main()
