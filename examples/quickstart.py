#!/usr/bin/env python
"""Quickstart: a deterministic dictionary on a simulated disk array.

Builds the paper's full-bandwidth dynamic dictionary (Section 4.3), stores a
thousand records, and prints the parallel-I/O costs the SPAA 2006 paper
promises: 1 I/O for unsuccessful searches, 1 + eps on average for successful
ones, 2 + eps for updates — deterministically, no hashing involved.

Run:  python examples/quickstart.py
"""

import random

from repro import ParallelDiskDictionary

UNIVERSE = 1 << 24  # 16M possible keys
N = 1000


def main() -> None:
    # A dictionary over `UNIVERSE` with capacity N, carrying 64-bit records.
    # The facade sizes the disk array at D = 2 * ceil(log2 u) per group --
    # the paper's "moderately large number of disks".
    d = ParallelDiskDictionary(
        universe_size=UNIVERSE,
        capacity=N,
        mode="full-bandwidth",
        sigma=64,
        seed=2006,
    )
    print(f"machine: {d.num_disks} disks, degree d = {d.degree}")

    rng = random.Random(42)
    reference = {}
    insert_ios = []
    while len(reference) < N:
        key = rng.randrange(UNIVERSE)
        value = rng.randrange(1 << 64)
        cost = d.insert(key, value)
        insert_ios.append(cost.total_ios)
        reference[key] = value

    hit_ios = []
    for key, value in reference.items():
        result = d.lookup(key)
        assert result.found and result.value == value
        hit_ios.append(result.cost.total_ios)

    miss_ios = []
    while len(miss_ios) < N:
        probe = rng.randrange(UNIVERSE)
        if probe in reference:
            continue
        result = d.lookup(probe)
        assert not result.found
        miss_ios.append(result.cost.total_ios)

    print(f"inserted {N} records")
    print(f"  avg insert I/Os     : {sum(insert_ios) / N:.3f}   (paper: 2 + eps)")
    print(f"  worst insert I/Os   : {max(insert_ios)}       (paper: O(log n))")
    print(f"  avg hit lookup I/Os : {sum(hit_ios) / N:.3f}   (paper: 1 + eps)")
    print(f"  worst hit I/Os      : {max(hit_ios)}")
    print(f"  miss lookup I/Os    : {sum(miss_ios) / N / 1:.3f}   (paper: exactly 1)")

    # Everything above is deterministic: run the script twice, byte-identical.
    stats = d.io_stats()
    print(f"total parallel I/Os performed: {stats.total_ios}")


if __name__ == "__main__":
    main()
