#!/usr/bin/env python
"""Deterministic load balancing (Section 3, Lemma 3), visualised in text.

The greedy d-choice scheme over a fixed expander places kn items into v
buckets with maximum load at most

    kn / ((1 - delta) v)  +  log_{(1 - eps) d / k} v

— average plus an additive logarithm, for EVERY input, with no randomness at
placement time.  This demo compares three allocation strategies on the same
bucket array:

* 1-choice (each item to a fixed pseudo-random bucket),
* the paper's greedy d-choice over an expander,
* and the Lemma 3 bound,

then shows the load histogram.

Run:  python examples/load_balancing_demo.py
"""

import random
from collections import Counter

from repro.core import DChoiceLoadBalancer, lemma3_bound
from repro.expanders import SeededRandomExpander

UNIVERSE = 1 << 20
D = 16
STRIPE = 512
N = 20_000


def one_choice_max_load(xs, v, seed):
    rng_free_hash = SeededRandomExpander(
        left_size=UNIVERSE, degree=1, stripe_size=v, seed=seed
    )
    loads = Counter(rng_free_hash.neighbors(x)[0] for x in xs)
    return max(loads.values())


def main() -> None:
    graph = SeededRandomExpander(
        left_size=UNIVERSE, degree=D, stripe_size=STRIPE, seed=9
    )
    xs = random.Random(0).sample(range(UNIVERSE), N)

    balancer = DChoiceLoadBalancer(graph, k=1)
    report = balancer.place_all(xs)
    bound = lemma3_bound(
        n=N, v=graph.right_size, k=1, d=D, eps=1 / 12, delta=0.5
    )
    naive = one_choice_max_load(xs, graph.right_size, seed=77)

    print(f"{N} items into v = {graph.right_size} buckets (d = {D})")
    print(f"  average load          : {report.avg_load:.2f}")
    print(f"  1-choice max load     : {naive}")
    print(f"  d-choice max load     : {report.max_load}")
    print(f"  Lemma 3 bound         : {bound:.2f}")
    assert report.max_load <= bound

    print("\nload histogram (d-choice):")
    hist = balancer.load_histogram()
    peak = max(hist.values())
    for load in sorted(hist):
        bar = "#" * max(1, round(40 * hist[load] / peak))
        print(f"  load {load:3d}: {hist[load]:6d} {bar}")

    print(
        "\nThe heavy-loaded-case shape of Berenbrink et al. [3], made "
        "deterministic:\nall buckets sit within a few units of the average."
    )


if __name__ == "__main__":
    main()
