#!/usr/bin/env python
"""Webmail server scenario (Section 1.2): skewed random access, real-time
guarantees, and why determinism matters.

Web servers "retrieve small quantities of information at a time, typically
fitting within a block, but from a very large data set, in a highly random
fashion (depending on the desires of an arbitrary set of users)".  Crucially
the paper argues the file system "often needs to offer a real-time
guarantee... which essentially prohibits randomized solutions, as well as
amortized bounds".

This example drives a Zipf-skewed request mix (reads + mailbox updates)
through the deterministic Section 4.3 dictionary and through cuckoo hashing,
then compares not the averages (both are fine) but the *tail*: the worst
single operation each user ever experiences.

Run:  python examples/webmail_server.py
"""

import random

from repro.core import DynamicDictionary
from repro.hashing import CuckooDictionary
from repro.pdm import ParallelDiskMachine
from repro.workloads import uniform_keys, zipf_accesses

UNIVERSE = 1 << 22
MAILBOXES = 1200
REQUESTS = 4000
SIGMA = 96  # a mailbox summary record


def percentile(values, q):
    values = sorted(values)
    return values[min(len(values) - 1, int(q * len(values)))]


def run(dictionary, inserts, requests, *, is_dynamic):
    op_costs = []
    stored = {}
    for key in inserts:
        value = key % (1 << SIGMA) if is_dynamic else ("mail", key)
        op_costs.append(dictionary.insert(key, value).total_ios)
        stored[key] = value
    rng = random.Random(5)
    for key in requests:
        if rng.random() < 0.8:  # read mailbox
            result = dictionary.lookup(key)
            assert result.found
            op_costs.append(result.cost.total_ios)
        else:  # new message: update the record
            value = (
                rng.randrange(1 << SIGMA)
                if is_dynamic
                else ("mail", rng.randrange(1 << 30))
            )
            op_costs.append(dictionary.insert(key, value).total_ios)
    return op_costs


def main() -> None:
    mailboxes = uniform_keys(UNIVERSE, MAILBOXES, seed=1)
    requests = zipf_accesses(mailboxes, REQUESTS, s=1.2, seed=2)

    det = DynamicDictionary(
        ParallelDiskMachine(48, 32),
        universe_size=UNIVERSE,
        capacity=MAILBOXES,
        sigma=SIGMA,
        degree=24,
        seed=3,
    )
    det_costs = run(det, mailboxes, requests, is_dynamic=True)

    cuckoo = CuckooDictionary(
        ParallelDiskMachine(48, 32),
        universe_size=UNIVERSE,
        capacity=MAILBOXES,
        load_slack=2.1,  # a realistic memory budget
        seed=3,
    )
    cuckoo_costs = run(cuckoo, mailboxes, requests, is_dynamic=False)

    print(f"{REQUESTS} Zipf-skewed requests over {MAILBOXES} mailboxes\n")
    header = f"{'':24}{'avg':>8}{'p99':>8}{'worst':>8}"
    print(header)
    for name, costs in (
        ("deterministic S4.3", det_costs),
        ("cuckoo hashing [13]", cuckoo_costs),
    ):
        print(
            f"{name:24}{sum(costs) / len(costs):8.3f}"
            f"{percentile(costs, 0.99):8d}{max(costs):8d}"
        )
    print(
        "\nAverages are comparable — the deterministic structure wins on the"
        "\ntail, which is exactly the real-time-guarantee argument of the"
        "\npaper: no eviction walks, no rehashes, no amortization."
    )


if __name__ == "__main__":
    main()
