#!/usr/bin/env python
"""Section 5: semi-explicit expanders via the telescope product.

The dictionaries assume an optimal striped expander "for free"; the best
truly explicit constructions have degree 2^((log log u)^O(1)) [Ta-Shma].
Section 5 trades O(N^beta) words of internal memory for degree polylog(u)
when u = poly(N): telescope slightly-unbalanced base expanders (Theorem 9)
through Lemma 10/11 and stripe the result trivially (factor-d space).

This demo builds one, prints the per-stage resources, certifies the
composed expansion by sampling, and shows the striping blow-up.

Run:  python examples/expander_construction.py
"""

from repro.expanders import (
    SemiExplicitExpander,
    TriviallyStripedExpander,
    verify_expansion_sampled,
)
from repro.pdm.memory import InternalMemory


def main() -> None:
    u, n_target, eps = 1 << 20, 8, 0.5
    memory = InternalMemory()
    semi = SemiExplicitExpander.build(
        u=u, N=n_target, eps=eps, beta=0.5, seed=11, memory=memory,
        certify_trials=150,
    )

    print(f"semi-explicit (N={n_target}, eps={eps})-expander over u = 2^20")
    print(f"  stages          : {len(semi.stages)}")
    for i, stage in enumerate(semi.stages):
        print(
            f"    stage {i}: [{stage.left_size}] -> [{stage.right_size}], "
            f"degree {stage.degree}, eps' = {stage.eps:.3f}, "
            f"advice {stage.advice_words} words, certified={stage.certified}"
        )
    print(f"  composed degree : {semi.degree}  (polylog-scale, not 2^...)")
    print(f"  right part      : {semi.right_size}  (O(N d))")
    print(f"  composed eps    : {semi.composed_eps:.3f}")
    print(f"  internal memory : {semi.memory_words} words  (O(N^beta) regime)")

    report = verify_expansion_sampled(
        semi.expander, n_target, semi.composed_eps, trials=60, seed=5
    )
    print(
        f"  sampled check   : expander={report.is_expander}, "
        f"worst ratio {report.worst_ratio:.3f}"
    )

    striped = TriviallyStripedExpander(semi.expander)
    print(
        f"\ntrivial striping for the PDM: right part {semi.right_size} -> "
        f"{striped.right_size} (factor d = {striped.space_blowup}), or use "
        f"the parallel disk head model and skip the blow-up."
    )


if __name__ == "__main__":
    main()
