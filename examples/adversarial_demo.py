#!/usr/bin/env python
"""Why determinism: an adversary against hashing vs against the expander.

Section 1.1: hashing dictionaries "may use n/B^{O(1)} I/Os for a single
operation in the worst case"; the deterministic structures "give very good
guarantees on the worst case performance of any operation".

Both attacks, side by side:

* against a hash table, we feed keys that collide under its (known) hash
  function — probe chains grow with every colliding superblock;
* against the deterministic dictionary, we mount the strongest analogous
  attack: greedily choose keys whose expander neighborhoods overlap the
  most.  Lemma 3's bound quantifies over every subset of the universe, so
  the attack achieves... nothing.

Run:  python examples/adversarial_demo.py
"""

import random

from repro.core import BasicDictionary, lemma3_bound
from repro.hashing import StripedHashTable
from repro.pdm import ParallelDiskMachine
from repro.workloads import adversarial_keys_for_hash

U = 1 << 18


def attack_hashing() -> None:
    print("=== attack 1: engineered collisions vs striped hashing ===")
    machine = ParallelDiskMachine(4, 4)
    table = StripedHashTable(machine, universe_size=U, capacity=3000, seed=3)
    superblock = table.table.capacity_items
    bad = adversarial_keys_for_hash(table.hash, U, superblock * 5)
    worst = 0
    for i, key in enumerate(bad):
        cost = table.insert(key, None).total_ios
        worst = max(worst, cost)
        if (i + 1) % superblock == 0:
            lookup = table.lookup(key).cost.total_ios
            print(
                f"  {i + 1:4d} colliding keys: lookup of the last one = "
                f"{lookup} I/Os, worst insert so far = {worst}"
            )
    print("  cost grows linearly in colliders / BD — the hashing worst case\n")


def attack_deterministic() -> None:
    print("=== attack 2: max-overlap key selection vs the expander ===")
    degree = 12
    machine = ParallelDiskMachine(degree, 32)
    d = BasicDictionary(
        machine, universe_size=U, capacity=800, degree=degree,
        stripe_size=48, seed=4,
    )
    # Greedy adversary: always pick the candidate adding the FEWEST new
    # buckets (maximal overlap with what is already loaded).
    rng = random.Random(4)
    candidates = rng.sample(range(U), 3000)
    covered = set()
    chosen = []
    while len(chosen) < 500:
        best = min(
            candidates[:300],
            key=lambda k: len(set(d.graph.neighbors(k)) - covered),
        )
        chosen.append(best)
        covered.update(d.graph.neighbors(best))
        candidates.remove(best)
    worst_insert = max(d.insert(k, None).total_ios for k in chosen)
    worst_lookup = max(d.lookup(k).cost.total_ios for k in chosen)
    bound = lemma3_bound(
        n=500, v=d.num_buckets, k=1, d=degree, eps=1 / 12, delta=0.5
    )
    print(f"  500 adversarially-overlapping keys inserted")
    print(f"  worst insert : {worst_insert} I/Os   (guarantee: 2)")
    print(f"  worst lookup : {worst_lookup} I/Os   (guarantee: 1)")
    print(f"  max load     : {d.current_max_load()}  (Lemma 3 bound "
          f"{bound:.1f})")
    print(
        "  the bound holds for EVERY subset of the universe — there is\n"
        "  nothing for an adversary to learn or exploit."
    )


def main() -> None:
    attack_hashing()
    attack_deterministic()


if __name__ == "__main__":
    main()
