#!/usr/bin/env python
"""A blob store: fat records via pointer indirection (Section 1.1).

"One can always use the dictionary to retrieve a pointer to satellite
information of size BD, which can then be retrieved in an extra I/O."

This example builds a small document store on that principle: a
deterministic §4.1 dictionary maps document ids to payload pointers, and a
payload area of striped superblocks holds the documents themselves — each
up to a full ``B x D`` items, fetched in exactly one extra parallel I/O.
Updates rewrite the document in place (the pointer never changes — stable
references, easy caching), and deletions recycle payload superblocks.

Run:  python examples/blob_store.py
"""

import random

from repro.core import BasicDictionary, PointerStore
from repro.pdm import ParallelDiskMachine

UNIVERSE = 1 << 24
DISKS, BLOCK = 16, 32


def make_document(doc_id: int, words: int) -> list:
    rng = random.Random(doc_id)
    vocab = ["disk", "model", "parallel", "expander", "deterministic",
             "dictionary", "lookup", "block", "stripe", "bucket"]
    return [vocab[rng.randrange(len(vocab))] for _ in range(words)]


def main() -> None:
    index = BasicDictionary(
        ParallelDiskMachine(DISKS, BLOCK),
        universe_size=UNIVERSE,
        capacity=256,
        degree=DISKS,
        seed=11,
    )
    store = PointerStore(
        index, ParallelDiskMachine(DISKS, BLOCK), capacity=256
    )
    print(
        f"blob store: payload superblocks of "
        f"{store.payload_capacity_items} items ({DISKS} disks x {BLOCK})"
    )

    # Ingest documents of wildly varying size.
    rng = random.Random(0)
    docs = {}
    for doc_id in rng.sample(range(UNIVERSE), 200):
        words = rng.randrange(1, store.payload_capacity_items)
        doc = make_document(doc_id, words)
        store.insert(doc_id, doc)
        docs[doc_id] = doc

    # Random reads: index probe + payload fetch = 2 parallel I/Os, always.
    costs = []
    for doc_id in rng.sample(list(docs), 100):
        result = store.lookup(doc_id)
        assert result.value == docs[doc_id]
        costs.append(result.cost.total_ios)
    print(f"100 random document reads: {min(costs)}..{max(costs)} I/Os each")

    # In-place update: the pointer (and hence any cached reference) stays.
    victim = next(iter(docs))
    pointer_before = store.lookup_pointer(victim).value
    store.insert(victim, ["rewritten"])
    assert store.lookup_pointer(victim).value == pointer_before
    print("document rewritten in place: pointer unchanged "
          f"(superblock {pointer_before})")

    # Delete and reuse.
    freed = store.lookup_pointer(victim).value
    store.delete(victim)
    new_id = max(docs) + 1 if max(docs) + 1 < UNIVERSE else 0
    store.insert(new_id, ["recycled"])
    print(
        f"deleted doc {victim}; new doc {new_id} reuses superblock "
        f"{store.lookup_pointer(new_id).value} (freed: {freed})"
    )


if __name__ == "__main__":
    main()
