#!/usr/bin/env python
"""The paper's motivating application (Section 1.2): a file system as a
dictionary.

"Let keys consist of a file name and a block number, and associate them with
the contents of the given block number of the given file."  Random access to
any position of any file is then one dictionary lookup — versus following a
B-tree "down a tree with branching factor B" where "in most settings it
takes 3 disk accesses before the contents of the block is available".

This example stores a synthetic file population both ways on the *same*
parallel-disk geometry and reports the measured I/O per random block read —
the paper's headline "one disk read instead of 3".

Run:  python examples/filesystem_store.py
"""

from repro.btree import BTreeDictionary
from repro.core import BasicDictionary
from repro.pdm import ParallelDiskMachine
from repro.workloads import FileSystemWorkload

# Disk geometry: modest blocks so the B-tree actually has height (with
# giant blocks everything fits in a root node and there is nothing to
# compare).
DISKS = 16
BLOCK_ITEMS = 8


def main() -> None:
    fs = FileSystemWorkload(
        num_files=3000, max_blocks_per_file=64, seed=1
    )
    keys = list(fs.all_keys())
    print(
        f"file system: {fs.num_files} files, {fs.total_blocks} blocks, "
        f"universe {fs.universe_size}"
    )

    # --- the status quo: a striped B-tree ---------------------------------
    btree_machine = ParallelDiskMachine(DISKS, BLOCK_ITEMS)
    btree = BTreeDictionary(
        btree_machine,
        universe_size=fs.universe_size,
        capacity=len(keys),
    )
    for key in keys:
        btree.insert(key, f"blk{key}")

    # --- the paper's deterministic dictionary (Section 4.1) ---------------
    dict_machine = ParallelDiskMachine(DISKS, BLOCK_ITEMS)
    pdd = BasicDictionary(
        dict_machine,
        universe_size=fs.universe_size,
        capacity=len(keys),
        degree=DISKS,
        seed=7,
    )
    for key in keys:
        pdd.insert(key, f"blk{key}")

    # --- webmail-style random block reads ----------------------------------
    reads = fs.random_reads(3000, seed=2)
    btree_ios = [btree.lookup(k).cost.total_ios for k in reads]
    dict_ios = [pdd.lookup(k).cost.total_ios for k in reads]

    print(f"\nrandom block reads ({len(reads)} requests):")
    print(
        f"  B-tree     : avg {sum(btree_ios) / len(reads):.2f} I/Os "
        f"(height {btree.height()})"
    )
    print(
        f"  dictionary : avg {sum(dict_ios) / len(reads):.2f} I/Os "
        f"(one-probe: {pdd.one_probe})"
    )
    print(
        f"  speedup    : {sum(btree_ios) / max(1, sum(dict_ios)):.1f}x "
        f"fewer parallel I/Os"
    )

    # --- sequential scans: the honest caveat --------------------------------
    # For scanning large files the B-tree overhead is negligible (Section
    # 1.2: "due to caching"); with one leaf fetch per B-tree leaf the two
    # structures converge. We model caching by counting distinct leaves.
    big_file = max(range(fs.num_files), key=lambda f: fs.files[f].num_blocks)
    scan = fs.sequential_scan(big_file)
    scan_ios = [btree.lookup(k).cost.total_ios for k in scan]
    print(
        f"\nsequential scan of file {big_file} ({len(scan)} blocks): "
        f"B-tree pays {sum(scan_ios)} I/Os uncached — caching its "
        f"{btree.height() - 1} internal levels makes the overhead vanish, "
        f"which is why the paper targets *random* access only."
    )


if __name__ == "__main__":
    main()
