#!/usr/bin/env python
"""Every structure, one workload: an apples-to-apples replay.

Generates a single mixed insert/delete/lookup trace and drives all seven
dictionary implementations through it with the shared replay driver
(verifying every answer against a model), then prints the Figure-1-style
per-operation I/O summary measured on *this* trace.

Run:  python examples/replay_comparison.py
"""

from repro.btree import BTreeDictionary
from repro.core import (
    BasicDictionary,
    DynamicDictionary,
    RecursiveLoadBalancedDictionary,
)
from repro.hashing import (
    CuckooDictionary,
    DGMPDictionary,
    FolkloreDictionary,
    StripedHashTable,
)
from repro.pdm import ParallelDiskMachine
from repro.workloads import Workload, replay

U = 1 << 20
CAPACITY = 500
SIGMA = 24


def build_all():
    degree = 16
    yield "S4.1 basic (det.)", BasicDictionary(
        ParallelDiskMachine(degree, 32), universe_size=U,
        capacity=CAPACITY, degree=degree, seed=1,
    )
    yield "S4.3 dynamic (det.)", DynamicDictionary(
        ParallelDiskMachine(2 * degree, 32), universe_size=U,
        capacity=CAPACITY, sigma=SIGMA, degree=degree, seed=1,
    )
    yield "S6 recursive (det.)", RecursiveLoadBalancedDictionary(
        ParallelDiskMachine(3 * degree, 32), universe_size=U,
        capacity=CAPACITY, sigma=SIGMA, degree=degree, levels=2, seed=1,
    )
    yield "hashing striped", StripedHashTable(
        ParallelDiskMachine(degree, 32), universe_size=U,
        capacity=CAPACITY, seed=1,
    )
    yield "cuckoo [13]", CuckooDictionary(
        ParallelDiskMachine(degree, 32), universe_size=U,
        capacity=CAPACITY, seed=1,
    )
    yield "[7] DGMP", DGMPDictionary(
        ParallelDiskMachine(degree, 32), universe_size=U,
        capacity=CAPACITY, seed=1,
    )
    yield "[7]+trick", FolkloreDictionary(
        ParallelDiskMachine(degree, 32), universe_size=U,
        capacity=CAPACITY, seed=1,
    )
    yield "B-tree (baseline)", BTreeDictionary(
        ParallelDiskMachine(degree, 32), universe_size=U,
        capacity=4 * CAPACITY,
    )


def main() -> None:
    workload = Workload.generate(
        universe_size=U,
        operations=3000,
        capacity=CAPACITY,
        value_bits=SIGMA,
        seed=7,
    )
    print(f"replaying {len(workload)} operations on every structure\n")
    header = (
        f"{'structure':22}{'hit avg':>9}{'hit wc':>8}{'miss avg':>10}"
        f"{'ins avg':>9}{'ins wc':>8}{'del avg':>9}"
    )
    print(header)
    print("-" * len(header))
    for name, structure in build_all():
        summary = replay(structure, workload)
        print(
            f"{name:22}"
            f"{summary.avg('hit'):9.3f}{summary.worst('hit'):8d}"
            f"{summary.avg('miss'):10.3f}"
            f"{summary.avg('insert'):9.3f}{summary.worst('insert'):8d}"
            f"{summary.avg('delete'):9.3f}"
        )
    print(
        "\nSame trace, same verification, same machine geometry per group —"
        "\nthe deterministic rows match the randomized averages and beat"
        "\ntheir worst cases (see cuckoo's insert column).  At this small"
        "\ntrace the B-tree still fits in a root node; its height shows up"
        "\nat scale (see benchmarks/results/scaling_n.txt: 3 -> 5 I/Os)."
    )


if __name__ == "__main__":
    main()
